package packet

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// fuzzSeeds builds the corpus for the Decoder↔decodeReference
// equivalence check: well-formed frames for every layer chain the
// decoder knows, plus malformed and truncated variants that must
// produce byte-identical failure layers.
func fuzzSeeds(t testing.TB) []struct {
	name  string
	data  []byte
	first LayerType
} {
	t.Helper()
	mk := func(layers ...SerializableLayer) []byte {
		b := NewSerializeBuffer()
		if err := SerializeLayers(b, layers...); err != nil {
			t.Fatalf("seed serialize: %v", err)
		}
		return b.Bytes()
	}
	tcp := &TCP{SrcPort: 31337, DstPort: 80, Seq: 100, Ack: 200, Flags: TCPPsh | TCPAck}
	tcp.SetNetworkForChecksum(testSrcIP, testDstIP)
	tcpFrame := mk(
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolTCP},
		tcp,
		NewPayload([]byte("GET /admin HTTP/1.0\r\n\r\n")),
	)
	udpFrame := mk(
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP},
		&UDP{SrcPort: 5353, DstPort: 9999},
		NewPayload([]byte("hello")),
	)
	dnsFrame := mk(
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP},
		&UDP{SrcPort: 4444, DstPort: 53},
		&DNS{ID: 0xbeef, RecDesired: true,
			Questions: []DNSQuestion{{Name: "iot.example.com", Type: DNSTypeA, Class: DNSClassIN}}},
	)
	dnsRespFrame := mk(
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP},
		&UDP{SrcPort: 53, DstPort: 4444},
		&DNS{ID: 0xbeef, Response: true,
			Questions: []DNSQuestion{{Name: "iot.example.com", Type: DNSTypeA, Class: DNSClassIN}},
			Answers:   []DNSResourceRecord{{Name: "iot.example.com", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, Data: []byte{10, 0, 0, 42}}}},
	)
	arpFrame := mk(
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: BroadcastMAC, EtherType: EtherTypeARP},
		&ARP{Operation: ARPRequest, SenderMAC: testSrcMAC, SenderIP: testSrcIP, TargetIP: testDstIP},
	)
	unknownEther := mk(&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherType(0x88cc)})
	unknownEther = append(unknownEther, []byte{0xde, 0xad, 0xbe, 0xef}...)

	// Malformed variants.
	badIHL := append([]byte(nil), tcpFrame...)
	badIHL[14] = 0x4f // IHL=15 (60-byte header) but frame is shorter
	badProto := append([]byte(nil), udpFrame...)
	badProto[23] = 0xfd // unknown IP protocol → payload fallback
	dnsGarbage := append(append([]byte(nil), dnsFrame[:42]...), 0x01, 0x02, 0x03)

	seeds := []struct {
		name  string
		data  []byte
		first LayerType
	}{
		{"tcp", tcpFrame, LayerTypeEthernet},
		{"udp", udpFrame, LayerTypeEthernet},
		{"dns-query", dnsFrame, LayerTypeEthernet},
		{"dns-response", dnsRespFrame, LayerTypeEthernet},
		{"arp", arpFrame, LayerTypeEthernet},
		{"unknown-ethertype", unknownEther, LayerTypeEthernet},
		{"bad-ihl", badIHL, LayerTypeEthernet},
		{"bad-ip-proto", badProto, LayerTypeEthernet},
		{"dns-garbage", dnsGarbage, LayerTypeEthernet},
		{"empty", nil, LayerTypeEthernet},
		{"one-byte", []byte{0x42}, LayerTypeEthernet},
		{"ip-first", tcpFrame[14:], LayerTypeIPv4},
		{"udp-first", dnsFrame[34:], LayerTypeUDP},
		{"dns-first", dnsRespFrame[42:], LayerTypeDNS},
		{"unknown-first", tcpFrame, LayerType(99)},
	}
	// Truncations of every well-formed frame at assorted boundaries:
	// mid-ethernet, mid-IP, mid-transport, mid-DNS.
	for _, src := range []struct {
		name string
		data []byte
	}{{"tcp", tcpFrame}, {"udp", udpFrame}, {"dns", dnsRespFrame}, {"arp", arpFrame}} {
		for _, n := range []int{1, 7, 13, 14, 20, 25, 33, 34, 38, 41, 42, 45} {
			if n >= len(src.data) {
				continue
			}
			seeds = append(seeds, struct {
				name  string
				data  []byte
				first LayerType
			}{fmt.Sprintf("%s-trunc-%d", src.name, n), src.data[:n], LayerTypeEthernet})
		}
	}
	return seeds
}

// samePacket asserts two decode results are byte-identical: same layer
// types in order, same LayerContents/LayerPayload bytes, same error
// layer, same String rendering.
func samePacket(t *testing.T, name string, got, want *Packet) {
	t.Helper()
	gl, wl := got.Layers(), want.Layers()
	if len(gl) != len(wl) {
		t.Fatalf("%s: %d layers, reference has %d (got %v, want %v)", name, len(gl), len(wl), got, want)
	}
	for i := range gl {
		if gl[i].LayerType() != wl[i].LayerType() {
			t.Fatalf("%s: layer %d type %v, reference %v", name, i, gl[i].LayerType(), wl[i].LayerType())
		}
		if !bytes.Equal(gl[i].LayerContents(), wl[i].LayerContents()) {
			t.Fatalf("%s: layer %d (%v) contents differ", name, i, gl[i].LayerType())
		}
		if !bytes.Equal(gl[i].LayerPayload(), wl[i].LayerPayload()) {
			t.Fatalf("%s: layer %d (%v) payload differs", name, i, gl[i].LayerType())
		}
	}
	ge, we := got.ErrorLayer(), want.ErrorLayer()
	if (ge == nil) != (we == nil) {
		t.Fatalf("%s: error layer %v, reference %v", name, ge, we)
	}
	if ge != nil && ge.Error().Error() != we.Error().Error() {
		t.Fatalf("%s: error %q, reference %q", name, ge.Error(), we.Error())
	}
	if got.String() != want.String() {
		t.Fatalf("%s: String %q, reference %q", name, got, want)
	}
}

// TestDecoderMatchesReference: the reusable Decoder (and the eager
// Decode wrapper built on it) must produce byte-identical layers to the
// pre-optimization decode loop on every corpus frame — including the
// malformed and truncated ones.
func TestDecoderMatchesReference(t *testing.T) {
	d := NewDecoder()
	for _, seed := range fuzzSeeds(t) {
		want := decodeReference(seed.data, seed.first)
		samePacket(t, seed.name+"/eager", Decode(seed.data, seed.first), want)
		// The same Decoder instance reused across all seeds — stale
		// state from a previous frame must never leak through.
		samePacket(t, seed.name+"/reused", d.Decode(seed.data, seed.first), want)
	}
}

// TestDecoderLazyAccessors exercises the lazy DNS tail through every
// accessor path rather than a materializing Layers() walk.
func TestDecoderLazyAccessors(t *testing.T) {
	seeds := fuzzSeeds(t)
	for _, seed := range seeds {
		want := decodeReference(seed.data, seed.first)
		d := GetDecoder()
		p := d.Decode(seed.data, seed.first)
		// Accessor-only interrogation, as the flow table and IDS do.
		if (p.TCP() == nil) != (want.TCP() == nil) {
			t.Fatalf("%s: TCP presence mismatch", seed.name)
		}
		if (p.UDP() == nil) != (want.UDP() == nil) {
			t.Fatalf("%s: UDP presence mismatch", seed.name)
		}
		if (p.DNS() == nil) != (want.DNS() == nil) {
			t.Fatalf("%s: DNS presence mismatch", seed.name)
		}
		if !bytes.Equal(p.ApplicationPayload(), want.ApplicationPayload()) {
			t.Fatalf("%s: ApplicationPayload mismatch", seed.name)
		}
		if (p.ErrorLayer() == nil) != (want.ErrorLayer() == nil) {
			t.Fatalf("%s: ErrorLayer presence mismatch", seed.name)
		}
		PutDecoder(d)
	}
}

// TestDecoderLazyDNSIsLazy pins the optimization itself: decoding a DNS
// frame must not parse the DNS message until a DNS-tail accessor runs.
func TestDecoderLazyDNSIsLazy(t *testing.T) {
	b := NewSerializeBuffer()
	if err := SerializeLayers(b,
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolUDP},
		&UDP{SrcPort: 4444, DstPort: 53},
		&DNS{ID: 1, Questions: []DNSQuestion{{Name: "x.example", Type: DNSTypeA, Class: DNSClassIN}}},
	); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder()
	p := d.Decode(b.Bytes(), LayerTypeEthernet)
	if p.lazyRest == nil {
		t.Fatal("DNS tail was parsed eagerly")
	}
	// Header accessors must not trigger the DNS parse.
	if p.UDP() == nil || p.IPv4() == nil {
		t.Fatal("header layers missing")
	}
	if p.lazyRest == nil {
		t.Fatal("UDP/IPv4 accessors materialized the DNS tail")
	}
	if p.DNS() == nil {
		t.Fatal("DNS accessor failed")
	}
	if p.lazyRest != nil {
		t.Fatal("DNS accessor did not consume the lazy tail")
	}
}

// TestDecodeRandomizedEquivalence hurls random mutations of valid
// frames (bit flips, truncations, extensions) at both decoders.
func TestDecodeRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0xdec0de))
	base := fuzzSeeds(t)
	d := NewDecoder()
	for i := 0; i < 2000; i++ {
		seed := base[rng.Intn(len(base))]
		data := append([]byte(nil), seed.data...)
		switch rng.Intn(3) {
		case 0: // flip a byte
			if len(data) > 0 {
				data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
			}
		case 1: // truncate
			if len(data) > 0 {
				data = data[:rng.Intn(len(data))]
			}
		case 2: // extend with noise
			extra := make([]byte, 1+rng.Intn(16))
			rng.Read(extra)
			data = append(data, extra...)
		}
		want := decodeReference(data, seed.first)
		samePacket(t, fmt.Sprintf("rand-%d(%s)", i, seed.name), d.Decode(data, seed.first), want)
	}
}

// BenchmarkPacketDecodeReused is the pooled-decoder hot path the
// switch data plane runs per frame.
func BenchmarkPacketDecodeReused(b *testing.B) {
	tcp := &TCP{SrcPort: 31337, DstPort: 80, Flags: TCPSyn}
	tcp.SetNetworkForChecksum(testSrcIP, testDstIP)
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf,
		&Ethernet{SrcMAC: testSrcMAC, DstMAC: testDstMAC, EtherType: EtherTypeIPv4},
		&IPv4{SrcIP: testSrcIP, DstIP: testDstIP, Protocol: IPProtocolTCP},
		tcp,
		NewPayload([]byte("GET / HTTP/1.0\r\n\r\n")),
	); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	d := NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.Decode(raw, LayerTypeEthernet)
		if p.TCP() == nil {
			b.Fatal("no tcp")
		}
	}
}
