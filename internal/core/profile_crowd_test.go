package core

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/profile"
	"iotsec/internal/resilience"
	"iotsec/internal/sigrepo"
)

// crowdCamPlatform builds a minimal platform managing one camera, with
// the profile plane in the given mode.
func crowdCamPlatform(t *testing.T, name, ip string, opts ProfileOptions) (*Platform, *ProfilePlane, *device.Camera) {
	t.Helper()
	d := policy.NewDomain()
	d.AddDevice(name, policy.ContextNormal, policy.ContextSuspicious)
	p, err := New(Options{Policy: policy.NewFSM(d)})
	if err != nil {
		t.Fatal(err)
	}
	plane := p.EnableProfiles(opts)
	cam := device.NewCamera(name, packet.MustParseIPv4(ip))
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	return p, plane, cam
}

// countProfileSigs counts cleared profile-payload signatures for a SKU.
func countProfileSigs(repo *sigrepo.Repository, sku string) int {
	n := 0
	for _, sig := range repo.Fetch(sku) {
		if profile.IsEncoded(sig.Rule) {
			n++
		}
	}
	return n
}

// TestProfileCrowdRoundTrip is the lifecycle test: deployment A learns
// a SKU profile and publishes it through the crowd repository;
// deployment B — same SKU, no training window of its own — fetches it
// over its supervised sigrepo session, compiles it, and pushes
// enforcement onto its own switch.
func TestProfileCrowdRoundTrip(t *testing.T) {
	dumpJournalOnFailure(t)
	repo := sigrepo.NewRepository("round-trip-salt")
	trustIdentity(repo, "gwA")
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Deployment A: learn and publish.
	pa, planeA, camA := crowdCamPlatform(t, "crtcam", "10.0.5.10", ProfileOptions{})
	sku := camA.Device.Profile.SKU
	linkA, err := pa.ConnectSigrepo(addr, "gwA")
	if err != nil {
		t.Fatal(err)
	}
	defer linkA.Close()

	clientA := newClient(t, pa, "10.0.5.200")
	got := udpSink(t, clientA.Stack, 9000, "checkin")
	planeA.StartLearning()
	if err := camA.Device.Stack().SendUDP(clientA.Stack.IP(), 9000, 33000, []byte("checkin")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deployment A training traffic", func() bool { return got.Load() >= 1 })
	profs := planeA.FinishLearning(context.Background())
	if len(profs) != 1 {
		t.Fatalf("deployment A distilled %d profiles", len(profs))
	}
	waitFor(t, "profile cleared in the repository", func() bool {
		return countProfileSigs(repo, sku) == 1
	})

	// Deployment B: enforce mode, steering live, zero local learning.
	pb, planeB, camB := crowdCamPlatform(t, "crtsub", "10.0.6.10", ProfileOptions{Enforce: true})
	s := controller.NewSteering(nil)
	saddr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	agent, err := netsim.ConnectAgent(pb.Switch, saddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	pb.UseSteering(s)
	waitFor(t, "deployment B switch", func() bool { return strings.Contains(s.String(), "1 switches") })

	linkB, err := pb.ConnectSigrepo(addr, "gwB")
	if err != nil {
		t.Fatal(err)
	}
	defer linkB.Close()

	// The backfilled crowd profile installs, compiles, and lands as
	// deny-by-default rules on B's switch.
	waitFor(t, "crowd profile installed on B", func() bool {
		_, ok := planeB.Engine().Profile(sku)
		return ok
	})
	waitFor(t, "B device enforced", func() bool {
		names := planeB.Engine().EnforcedDevices()
		return len(names) == 1 && names[0] == "crtsub"
	})
	waitFor(t, "deny floor on B's switch", func() bool {
		n := 0
		for _, e := range pb.Switch.Table().Entries() {
			if e.Priority == profile.PriorityDeny {
				n++
			}
		}
		return n >= 2
	})

	// The crowd profile still authorizes the SKU's habit — with the
	// deployment-internal endpoint scrubbed to "any" on the way
	// through the repository (topology privacy), and pinned to B's own
	// device identity at compile time.
	crowd, _ := planeB.Engine().Profile(sku)
	if !crowd.Allows("udp", 33000, 9000, packet.MustParseIPv4("203.0.113.77")) {
		t.Fatalf("crowd profile lost the learned service or kept a pinned internal remote: %+v", crowd.Services)
	}
	// And B's engine checks its own device against it: a frame from
	// camB outside the allowlist is a violation.
	if crowd.Allows("udp", 1, 2323, packet.MustParseIPv4("203.0.113.77")) {
		t.Fatal("crowd profile is not deny-by-default")
	}
	_ = camB
}

// TestProfilePublishSurvivesLinkLoss is the chaos case: the sigrepo
// session dies before the training window closes, the profile publish
// queues in the PR 4 durable outbox, and on reconnect it converges to
// exactly one cleared signature in the repository — no loss, no dupes.
func TestProfilePublishSurvivesLinkLoss(t *testing.T) {
	dumpJournalOnFailure(t)
	repo := sigrepo.NewRepository("chaos-salt")
	trustIdentity(repo, "gw-chaos")
	trustIdentity(repo, "seed-pub")
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, plane, cam := crowdCamPlatform(t, "chcam", "10.0.7.10", ProfileOptions{})
	sku := cam.Device.Profile.SKU
	plan := resilience.NewFaultPlan(33)
	link, err := p.ConnectSigrepoOpts(addr, "gw-chaos", sigrepo.ManagedOptions{
		Backoff: resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 9},
		Dial: func(a string) (net.Conn, error) {
			c, err := net.DialTimeout("tcp", a, time.Second)
			if err != nil {
				return nil, err
			}
			return resilience.WrapConn(c, plan), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	client := newClient(t, p, "10.0.7.200")
	got := udpSink(t, client.Stack, 9000, "checkin")
	plane.StartLearning()
	if err := cam.Device.Stack().SendUDP(client.Stack.IP(), 9000, 33000, []byte("checkin")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "training traffic", func() bool { return got.Load() >= 1 })

	// Kill the link mid-session; a push from another contributor
	// forces traffic over the dying conn so the session collapses.
	plan.SetKillRate(1)
	if _, err := repo.Publish(context.Background(), "seed-pub", sku, clearedRule(77), "d"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "link degraded", func() bool { return link.Managed().State() == sigrepo.LinkDegraded })

	// The window closes while the repository is unreachable: the
	// publish must land in the durable outbox, not on the floor.
	profs := plane.FinishLearning(context.Background())
	if len(profs) != 1 {
		t.Fatalf("distilled %d profiles", len(profs))
	}
	if countProfileSigs(repo, sku) != 0 {
		t.Fatal("profile reached the repository over a dead link?")
	}

	// Heal the link: the outbox drains and the profile clears exactly
	// once.
	plan.SetKillRate(0)
	waitFor(t, "outbox delivery after reconnect", func() bool {
		return countProfileSigs(repo, sku) >= 1
	})
	// Convergence means zero dupes: give replay/retry paths a moment
	// to misbehave, then assert exactly one.
	time.Sleep(100 * time.Millisecond)
	if n := countProfileSigs(repo, sku); n != 1 {
		t.Fatalf("profile signatures in repo = %d, want exactly 1 (zero dupes)", n)
	}
}
