package policy

import (
	"errors"
	"fmt"
	"strings"
)

// Recipe is the §3.1 IFTTT strawman: "IF <trigger> THEN <action>".
// Recipes capture cross-device interactions but — as the paper
// argues — carry no security context, assume independence, and are
// tedious to reason about. We implement them to measure exactly those
// failures (Table 2 / experiment T2).
type Recipe struct {
	Name string
	// TriggerDevice and TriggerState ("attr=value") name the
	// condition; TriggerDevice may be "env" for environment triggers.
	TriggerDevice string
	TriggerState  string
	// ActionDevice receives ActionCommand when the trigger fires.
	ActionDevice  string
	ActionCommand string
}

// ErrBadRecipe reports a parse failure.
var ErrBadRecipe = errors.New("policy: malformed recipe")

// ParseRecipe parses "IF device.attr=value THEN device.COMMAND".
func ParseRecipe(name, text string) (Recipe, error) {
	r := Recipe{Name: name}
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "IF ")
	if !ok {
		return r, fmt.Errorf("%w: missing IF in %q", ErrBadRecipe, text)
	}
	cond, action, ok := strings.Cut(rest, " THEN ")
	if !ok {
		return r, fmt.Errorf("%w: missing THEN in %q", ErrBadRecipe, text)
	}
	devAttr, value, ok := strings.Cut(strings.TrimSpace(cond), "=")
	if !ok {
		return r, fmt.Errorf("%w: trigger %q", ErrBadRecipe, cond)
	}
	dev, attr, ok := strings.Cut(devAttr, ".")
	if !ok {
		return r, fmt.Errorf("%w: trigger device %q", ErrBadRecipe, devAttr)
	}
	r.TriggerDevice = strings.TrimSpace(dev)
	r.TriggerState = strings.TrimSpace(attr) + "=" + strings.TrimSpace(value)
	adev, cmd, ok := strings.Cut(strings.TrimSpace(action), ".")
	if !ok {
		return r, fmt.Errorf("%w: action %q", ErrBadRecipe, action)
	}
	r.ActionDevice = strings.TrimSpace(adev)
	r.ActionCommand = strings.ToUpper(strings.TrimSpace(cmd))
	return r, nil
}

// String renders the canonical text form.
func (r Recipe) String() string {
	return fmt.Sprintf("IF %s.%s THEN %s.%s", r.TriggerDevice, r.TriggerState, r.ActionDevice, r.ActionCommand)
}

// opposites maps contradictory command pairs.
var opposites = map[string]string{
	"ON": "OFF", "OFF": "ON",
	"OPEN": "CLOSE", "CLOSE": "OPEN",
	"LOCK": "UNLOCK", "UNLOCK": "LOCK",
}

// RecipeConflict is the §3.1 failure mode: two recipes active in the
// same world state commanding one device to do contradictory things
// (the smoke-alarm vs Sighthound ambiguity).
type RecipeConflict struct {
	RecipeA, RecipeB string
	Device           string
	Commands         [2]string
	// SameTrigger is true when both recipes fire on the identical
	// trigger; false means their triggers are merely independent (so
	// both can hold simultaneously).
	SameTrigger bool
}

// FindRecipeConflicts reports all contradictory pairs. Because
// recipes carry no coordination or priority, ANY two recipes with
// compatible triggers and opposite commands on one device conflict —
// triggers on different devices/attributes can always co-occur.
func FindRecipeConflicts(recipes []Recipe) []RecipeConflict {
	var out []RecipeConflict
	for i := 0; i < len(recipes); i++ {
		for j := i + 1; j < len(recipes); j++ {
			a, b := recipes[i], recipes[j]
			if a.ActionDevice != b.ActionDevice {
				continue
			}
			if opposites[a.ActionCommand] != b.ActionCommand {
				continue
			}
			sameTrigger := a.TriggerDevice == b.TriggerDevice && a.TriggerState == b.TriggerState
			compatible := sameTrigger || !triggersExclusive(a, b)
			if !compatible {
				continue
			}
			out = append(out, RecipeConflict{
				RecipeA: a.Name, RecipeB: b.Name,
				Device:      a.ActionDevice,
				Commands:    [2]string{a.ActionCommand, b.ActionCommand},
				SameTrigger: sameTrigger,
			})
		}
	}
	return out
}

// triggersExclusive reports whether two triggers can never hold at
// once: same device+attribute with different values.
func triggersExclusive(a, b Recipe) bool {
	if a.TriggerDevice != b.TriggerDevice {
		return false
	}
	attrA, valA, _ := strings.Cut(a.TriggerState, "=")
	attrB, valB, _ := strings.Cut(b.TriggerState, "=")
	return attrA == attrB && valA != valB
}

// ToRule converts a recipe into an FSM rule — the paper's upgrade
// path: the action becomes a context-gated allow with everything else
// for that command blocked, making the implicit recipe explicit and
// conflict-checkable. The trigger maps to an environment condition
// "dev_attr=value".
func (r Recipe) ToRule(priority int) Rule {
	envVar := r.TriggerDevice + "_" + strings.SplitN(r.TriggerState, "=", 2)[0]
	val := strings.SplitN(r.TriggerState, "=", 2)[1]
	return Rule{
		Name:       "recipe:" + r.Name,
		Conditions: []Condition{EnvIs(envVar, val)},
		Device:     r.ActionDevice,
		Posture: Posture{
			Modules: []ModuleSpec{{
				Kind:   "context-gate",
				Config: map[string]string{"allow": r.ActionCommand},
			}},
		},
		Priority: priority,
	}
}
