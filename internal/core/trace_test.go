package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/journal"
	"iotsec/internal/learn"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// tracePlatform builds a one-device deployment whose policy isolates
// the wemo plug the moment it turns suspicious, with a real southbound
// steering application attached to the uplink switch.
func tracePlatform(t *testing.T) (*Platform, *controller.Steering) {
	t.Helper()
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine-wemo-suspicious",
		Conditions: []policy.Condition{policy.DeviceIs("wemo", policy.ContextSuspicious)},
		Device:     "wemo",
		Posture:    policy.Posture{Isolate: true},
		Priority:   100,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewCamera("wemo", packet.MustParseIPv4("10.0.0.31")).Device
	if _, err := p.AddDevice(plug); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)

	s := controller.NewSteering(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	agent, err := netsim.ConnectAgent(p.Switch, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	p.UseSteering(s)

	// Wait for the southbound handshake so quarantine FLOW_MODs have a
	// switch to land on.
	deadline := time.Now().Add(3 * time.Second)
	for !strings.Contains(s.String(), "1 switches") {
		if time.Now().After(deadline) {
			t.Fatalf("switch never registered: %s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p, s
}

// TestAnomalyTraceClosesFigure2Loop is the acceptance check for the
// forensic journal: a single injected anomaly must yield one trace ID
// whose journal timeline contains, in causal order, the anomaly, the
// FSM posture transition, at least one FLOW_MOD, and the µmbox
// reconfiguration — and the FLOW_MOD application on the far side of
// the OpenFlow wire must carry the same trace ID.
func TestAnomalyTraceClosesFigure2Loop(t *testing.T) {
	p, _ := tracePlatform(t)

	p.ReportAnomaly(ids.Anomaly{
		Device: "wemo",
		Kind:   ids.AnomalyRate,
		Detail: "synthetic: 40 msg/s against baseline 2.1",
		Score:  0.93,
		When:   time.Now(),
	})

	// The anomaly record carries the chain's trace ID. journal.Default
	// is process-shared, so take the newest matching record.
	anoms := journal.Default.Snapshot(journal.Filter{Device: "wemo", Type: journal.TypeAnomaly})
	if len(anoms) == 0 {
		t.Fatal("no anomaly journaled")
	}
	traceID := anoms[len(anoms)-1].TraceID
	if traceID == 0 {
		t.Fatal("anomaly journaled without a trace ID")
	}

	timeline := journal.Reconstruct(journal.Default.Snapshot(journal.Filter{TraceID: traceID, Limit: 0}), traceID)
	var anomalySeq, postureSeq, flowSeq, reconfigSeq uint64
	flowMods := 0
	for _, e := range timeline.Events {
		switch e.Type {
		case journal.TypeAnomaly:
			anomalySeq = e.Seq
		case journal.TypePosture:
			postureSeq = e.Seq
		case journal.TypeFlowMod:
			flowMods++
			if flowSeq == 0 {
				flowSeq = e.Seq
			}
		case journal.TypeMboxReconfig:
			reconfigSeq = e.Seq
		}
	}
	if anomalySeq == 0 || postureSeq == 0 || flowSeq == 0 || reconfigSeq == 0 {
		t.Fatalf("incomplete chain (anomaly=%d posture=%d flow=%d reconfig=%d):\n%s",
			anomalySeq, postureSeq, flowSeq, reconfigSeq, timeline.Render())
	}
	if !(anomalySeq < postureSeq && postureSeq < flowSeq && flowSeq < reconfigSeq) {
		t.Fatalf("causal order violated (anomaly=%d posture=%d flow=%d reconfig=%d):\n%s",
			anomalySeq, postureSeq, flowSeq, reconfigSeq, timeline.Render())
	}
	if flowMods < 2 {
		t.Errorf("quarantine emitted %d FLOW_MODs, want >= 2 (src+dst drop)", flowMods)
	}
	if !timeline.Complete() {
		t.Errorf("timeline not complete:\n%s", timeline.Render())
	}

	// The switch agent journals the application asynchronously with the
	// trace ID it decoded off the wire.
	deadline := time.Now().Add(3 * time.Second)
	for {
		applied := journal.Default.Snapshot(journal.Filter{TraceID: traceID, Type: journal.TypeFlowApplied})
		if len(applied) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("FLOW_MOD application never journaled with trace %d:\n%s",
				traceID, timeline.Render())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The forensic chain adapter sees the loop as closed.
	chain := learn.FromTimeline(timeline)
	if !chain.Complete {
		t.Errorf("forensic chain not complete: %s", chain)
	}
	if len(chain.Observed) == 0 || len(chain.Applied) == 0 {
		t.Errorf("forensic chain missing steps: %+v", chain)
	}
}

// TestTraceQueryableOverDebugJournal drives the same chain and then
// retrieves it exactly the way mboxctl trace does: GET /debug/journal
// with a trace filter.
func TestTraceQueryableOverDebugJournal(t *testing.T) {
	p, _ := tracePlatform(t)
	p.ReportAnomaly(ids.Anomaly{Device: "wemo", Kind: ids.AnomalyNewPeer, Detail: "synthetic: peer 203.0.113.9", Score: 0.8})

	anoms := journal.Default.Snapshot(journal.Filter{Device: "wemo", Type: journal.TypeAnomaly})
	traceID := anoms[len(anoms)-1].TraceID

	srv := httptest.NewServer(journal.Default.Handler())
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("%s?trace=%d&limit=0", srv.URL, traceID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap journal.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Events) < 4 {
		t.Fatalf("trace query returned %d events, want >= 4", len(snap.Events))
	}
	timeline := journal.Reconstruct(snap.Events, traceID)
	if !timeline.Complete() {
		t.Errorf("HTTP-reconstructed timeline incomplete:\n%s", timeline.Render())
	}
	for _, e := range snap.Events {
		if e.TraceID != traceID {
			t.Errorf("event %d leaked from trace %d into query for %d", e.Seq, e.TraceID, traceID)
		}
	}
}

// TestReleaseFollowsIsolation verifies the far edge of the loop: when
// the device calms back down, the release chain carries its own trace
// through FLOW_MOD deletion.
func TestReleaseFollowsIsolation(t *testing.T) {
	p, s := tracePlatform(t)
	p.ReportAnomaly(ids.Anomaly{Device: "wemo", Kind: ids.AnomalyRate, Detail: "synthetic burst", Score: 0.9})

	// Calm the device: context back to normal triggers Release.
	p.Global.View.SetDeviceContext(context.Background(), "wemo", policy.ContextNormal, "operator cleared")
	_ = s
	events := journal.Default.Snapshot(journal.Filter{Device: "wemo", Type: journal.TypeFlowMod})
	var sawRelease bool
	for _, e := range events {
		if strings.Contains(e.Detail, "delete-by-cookie") {
			sawRelease = true
		}
	}
	if !sawRelease {
		t.Errorf("no quarantine release FLOW_MOD journaled; flow-mod events: %+v", events)
	}
}

// TestUseSteeringAfterIsolationEnforcesQuarantine is the regression
// test for a standing-quarantine hole: when a posture isolated a
// device before any steering app was attached, the isolation mirror
// used to advance anyway, so attaching steering later never emitted
// the quarantine FLOW_MODs. Now the mirror only tracks rules actually
// sent, and UseSteering re-applies standing isolation postures.
func TestUseSteeringAfterIsolationEnforcesQuarantine(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine-wemo-suspicious",
		Conditions: []policy.Condition{policy.DeviceIs("wemo", policy.ContextSuspicious)},
		Device:     "wemo",
		Posture:    policy.Posture{Isolate: true},
		Priority:   100,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewCamera("wemo", packet.MustParseIPv4("10.0.0.32")).Device
	if _, err := p.AddDevice(plug); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)

	// Device turns suspicious while NO steering app is attached: the
	// posture isolates, but no quarantine rules can exist yet.
	p.ReportAnomaly(ids.Anomaly{Device: "wemo", Kind: ids.AnomalyRate, Detail: "synthetic burst", Score: 0.95})
	m, _ := p.Device("wemo")
	if !m.CurrentPosture.Isolate {
		t.Fatal("posture did not isolate")
	}

	// Steering arrives after the fact, with a live switch behind it.
	s := controller.NewSteering(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	agent, err := netsim.ConnectAgent(p.Switch, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	deadline := time.Now().Add(3 * time.Second)
	for !strings.Contains(s.String(), "1 switches") {
		if time.Now().After(deadline) {
			t.Fatalf("switch never registered: %s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	p.UseSteering(s)
	if !s.Isolated("wemo") {
		t.Fatal("UseSteering did not re-apply the standing quarantine")
	}
	// The drop rules land on the switch (agent application is async).
	deadline = time.Now().Add(3 * time.Second)
	for {
		n := 0
		for _, e := range p.Switch.Table().Entries() {
			if e.Priority == 400 {
				n++
			}
		}
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quarantine rules never reached the switch (have %d)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Calming the device down releases the late-applied quarantine.
	p.Global.View.SetDeviceContext(context.Background(), "wemo", policy.ContextNormal, "operator cleared")
	if s.Isolated("wemo") {
		t.Error("release after late attach did not clear the quarantine")
	}
}
