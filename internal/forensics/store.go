package forensics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"iotsec/internal/journal"
)

// Store is the durable incident log: incidents are appended as NDJSON
// lines to segment files (incidents-NNNNN.ndjson) under one
// directory. Segments rotate at SegmentBytes; when the directory
// exceeds MaxBytes the oldest segments are deleted, newest history
// wins — the same bounded-retention stance as the journal ring, but
// sized for incidents (rare) rather than events (constant). A line
// re-appending an incident ID supersedes earlier lines, so reopening
// a store replays the segments and keeps the latest record per ID.
type Store struct {
	dir string
	opt StoreOptions

	mu          sync.Mutex
	active      *os.File
	activeIdx   int
	activeBytes int64
	segBytes    map[int]int64 // segment index → size on disk
	incidents   map[string]*storedIncident
	appends     uint64
	droppedSegs uint64
	droppedIncs uint64
	closed      bool
}

// storedIncident pairs an incident with the segment holding its
// latest line, so segment eviction knows which records it takes.
type storedIncident struct {
	inc *Incident
	seg int
}

// StoreOptions bounds the store.
type StoreOptions struct {
	// SegmentBytes rotates the active segment once it exceeds this
	// (default 1 MiB).
	SegmentBytes int64
	// MaxBytes caps total on-disk size; oldest segments are deleted to
	// stay under it (default 16 MiB). The active segment is never
	// deleted.
	MaxBytes int64
}

// OpenStore opens (creating if needed) the incident store in dir,
// replaying existing segments into the in-memory index and resuming
// rotation where the previous process stopped.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 1 << 20
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("forensics: store dir: %w", err)
	}
	s := &Store{
		dir:       dir,
		opt:       opt,
		segBytes:  make(map[int]int64),
		incidents: make(map[string]*storedIncident),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	// Resume appending to the newest segment, or start the first.
	idx := 0
	for i := range s.segBytes {
		if i > idx {
			idx = i
		}
	}
	if err := s.openSegment(idx); err != nil {
		return nil, err
	}
	return s, nil
}

// segPath names segment files so lexical order is numeric order.
func (s *Store) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("incidents-%05d.ndjson", idx))
}

// replay scans existing segments oldest-first; later lines supersede
// earlier ones per incident ID. A corrupt line (torn final write from
// a crash) is skipped rather than failing the open.
func (s *Store) replay() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("forensics: store scan: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "incidents-%d.ndjson", &idx); n == 1 {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		f, err := os.Open(s.segPath(idx))
		if err != nil {
			return fmt.Errorf("forensics: store segment: %w", err)
		}
		info, _ := f.Stat()
		if info != nil {
			s.segBytes[idx] = info.Size()
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var inc Incident
			if json.Unmarshal(line, &inc) != nil || inc.ID == "" {
				continue // torn/corrupt line: keep what parses
			}
			cp := inc
			s.incidents[inc.ID] = &storedIncident{inc: &cp, seg: idx}
		}
		f.Close()
	}
	return nil
}

// openSegment opens the segment file for appending (creating it) and
// records its current size as the rotation watermark. A segment whose
// last line was torn by a crash (no trailing newline) is healed with
// one, so the next append starts a fresh line instead of concatenating
// onto — and thereby corrupting — the torn record.
func (s *Store) openSegment(idx int) error {
	path := s.segPath(idx)
	if tail, err := os.ReadFile(path); err == nil && len(tail) > 0 && tail[len(tail)-1] != '\n' {
		if err := os.WriteFile(path, append(tail, '\n'), 0o644); err != nil {
			return fmt.Errorf("forensics: store heal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("forensics: store open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("forensics: store stat: %w", err)
	}
	s.active = f
	s.activeIdx = idx
	s.activeBytes = info.Size()
	s.segBytes[idx] = info.Size()
	return nil
}

// Put durably appends (or supersedes) one incident record.
func (s *Store) Put(inc *Incident) error {
	line, err := json.Marshal(inc)
	if err != nil {
		return fmt.Errorf("forensics: store marshal: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("forensics: store closed")
	}
	if s.activeBytes > 0 && s.activeBytes+int64(len(line)) > s.opt.SegmentBytes {
		s.active.Close()
		if err := s.openSegment(s.activeIdx + 1); err != nil {
			return err
		}
	}
	n, err := s.active.Write(line)
	s.activeBytes += int64(n)
	s.segBytes[s.activeIdx] = s.activeBytes
	if err != nil {
		return fmt.Errorf("forensics: store append: %w", err)
	}
	s.appends++
	cp := *inc
	cp.Events = append([]journal.Event(nil), inc.Events...)
	s.incidents[inc.ID] = &storedIncident{inc: &cp, seg: s.activeIdx}
	s.enforceCapLocked()
	return nil
}

// enforceCapLocked deletes oldest segments while total size exceeds
// MaxBytes, evicting incidents whose latest record they held.
func (s *Store) enforceCapLocked() {
	for {
		var total int64
		oldest := s.activeIdx
		for idx, b := range s.segBytes {
			total += b
			if idx < oldest {
				oldest = idx
			}
		}
		if total <= s.opt.MaxBytes || oldest == s.activeIdx {
			return
		}
		os.Remove(s.segPath(oldest))
		delete(s.segBytes, oldest)
		s.droppedSegs++
		for id, st := range s.incidents {
			if st.seg == oldest {
				delete(s.incidents, id)
				s.droppedIncs++
			}
		}
	}
}

// Get returns the stored incident by ID.
func (s *Store) Get(id string) (*Incident, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.incidents[id]
	if !ok {
		return nil, false
	}
	return st.inc, true
}

// Digests lists every stored incident's summary (unordered; callers
// sort via queries).
func (s *Store) Digests() []Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Digest, 0, len(s.incidents))
	for _, st := range s.incidents {
		out = append(out, st.inc.Digest())
	}
	return out
}

// StoreStats is the store's accounting snapshot.
type StoreStats struct {
	Dir              string `json:"dir"`
	Segments         int    `json:"segments"`
	Bytes            int64  `json:"bytes"`
	Incidents        int    `json:"incidents"`
	Appends          uint64 `json:"appends_total"`
	DroppedSegments  uint64 `json:"dropped_segments_total"`
	DroppedIncidents uint64 `json:"dropped_incidents_total"`
}

// Stats snapshots the accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, b := range s.segBytes {
		total += b
	}
	return StoreStats{
		Dir:              s.dir,
		Segments:         len(s.segBytes),
		Bytes:            total,
		Incidents:        len(s.incidents),
		Appends:          s.appends,
		DroppedSegments:  s.droppedSegs,
		DroppedIncidents: s.droppedIncs,
	}
}

// Close closes the active segment. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.active.Close()
}
