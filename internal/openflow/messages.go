package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"iotsec/internal/packet"
)

// Protocol constants.
const (
	// Version is the wire protocol version this library speaks.
	Version uint8 = 1
	// headerLen is the fixed message header size: version(1) type(1)
	// reserved(2) length(4) xid(4).
	headerLen = 12
	// maxMessageLen bounds a single framed message.
	maxMessageLen = 1 << 20
)

// Errors returned by the codec.
var (
	ErrBadVersion  = errors.New("openflow: unsupported protocol version")
	ErrBadMessage  = errors.New("openflow: malformed message")
	ErrMessageSize = errors.New("openflow: message exceeds maximum size")
)

// MessageType discriminates wire messages.
type MessageType uint8

// Message types.
const (
	TypeHello MessageType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypePacketIn
	TypePacketOut
	TypeFlowMod
	TypeFlowRemoved
	TypeStatsRequest
	TypeStatsReply
	TypeBarrierRequest
	TypeBarrierReply
	TypeError
)

var messageTypeNames = map[MessageType]string{
	TypeHello:           "HELLO",
	TypeEchoRequest:     "ECHO_REQUEST",
	TypeEchoReply:       "ECHO_REPLY",
	TypeFeaturesRequest: "FEATURES_REQUEST",
	TypeFeaturesReply:   "FEATURES_REPLY",
	TypePacketIn:        "PACKET_IN",
	TypePacketOut:       "PACKET_OUT",
	TypeFlowMod:         "FLOW_MOD",
	TypeFlowRemoved:     "FLOW_REMOVED",
	TypeStatsRequest:    "STATS_REQUEST",
	TypeStatsReply:      "STATS_REPLY",
	TypeBarrierRequest:  "BARRIER_REQUEST",
	TypeBarrierReply:    "BARRIER_REPLY",
	TypeError:           "ERROR",
}

// String names the message type.
func (t MessageType) String() string {
	if s, ok := messageTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Message is a decoded southbound message.
type Message interface {
	// Type reports the wire discriminator.
	Type() MessageType
	// encodeBody appends the body bytes (everything after the header).
	encodeBody(dst []byte) []byte
	// decodeBody parses the body bytes.
	decodeBody(src []byte) error
}

// Hello opens a session.
type Hello struct{}

// Type implements Message.
func (*Hello) Type() MessageType            { return TypeHello }
func (*Hello) encodeBody(dst []byte) []byte { return dst }
func (*Hello) decodeBody([]byte) error      { return nil }

// Echo carries an opaque payload for liveness checks; the reply mirrors
// the request payload.
type Echo struct {
	Reply   bool
	Payload []byte
}

// Type implements Message.
func (e *Echo) Type() MessageType {
	if e.Reply {
		return TypeEchoReply
	}
	return TypeEchoRequest
}

func (e *Echo) encodeBody(dst []byte) []byte { return append(dst, e.Payload...) }
func (e *Echo) decodeBody(src []byte) error {
	e.Payload = append([]byte(nil), src...)
	return nil
}

// FeaturesRequest asks the switch to describe itself.
type FeaturesRequest struct{}

// Type implements Message.
func (*FeaturesRequest) Type() MessageType            { return TypeFeaturesRequest }
func (*FeaturesRequest) encodeBody(dst []byte) []byte { return dst }
func (*FeaturesRequest) decodeBody([]byte) error      { return nil }

// FeaturesReply describes a switch: its datapath ID and port numbers.
type FeaturesReply struct {
	DatapathID uint64
	Ports      []uint16
}

// Type implements Message.
func (*FeaturesReply) Type() MessageType { return TypeFeaturesReply }

func (f *FeaturesReply) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, f.DatapathID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Ports)))
	for _, p := range f.Ports {
		dst = binary.BigEndian.AppendUint16(dst, p)
	}
	return dst
}

func (f *FeaturesReply) decodeBody(src []byte) error {
	if len(src) < 10 {
		return fmt.Errorf("%w: short features reply", ErrBadMessage)
	}
	f.DatapathID = binary.BigEndian.Uint64(src[0:8])
	n := int(binary.BigEndian.Uint16(src[8:10]))
	if len(src) < 10+2*n {
		return fmt.Errorf("%w: features reply ports truncated", ErrBadMessage)
	}
	f.Ports = make([]uint16, n)
	for i := 0; i < n; i++ {
		f.Ports[i] = binary.BigEndian.Uint16(src[10+2*i : 12+2*i])
	}
	return nil
}

// PacketIn punts a packet that missed the flow table (or hit a
// ToController action) up to the controller.
type PacketIn struct {
	DatapathID uint64
	InPort     uint16
	// Reason distinguishes table-miss (0) from explicit action (1).
	Reason uint8
	Data   []byte
}

// Type implements Message.
func (*PacketIn) Type() MessageType { return TypePacketIn }

func (p *PacketIn) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, p.DatapathID)
	dst = binary.BigEndian.AppendUint16(dst, p.InPort)
	dst = append(dst, p.Reason)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Data)))
	return append(dst, p.Data...)
}

func (p *PacketIn) decodeBody(src []byte) error {
	if len(src) < 15 {
		return fmt.Errorf("%w: short packet-in", ErrBadMessage)
	}
	p.DatapathID = binary.BigEndian.Uint64(src[0:8])
	p.InPort = binary.BigEndian.Uint16(src[8:10])
	p.Reason = src[10]
	n := int(binary.BigEndian.Uint32(src[11:15]))
	if len(src) < 15+n {
		return fmt.Errorf("%w: packet-in data truncated", ErrBadMessage)
	}
	p.Data = append([]byte(nil), src[15:15+n]...)
	return nil
}

// PacketOut injects a packet into the switch's pipeline with an
// explicit action list.
type PacketOut struct {
	InPort  uint16
	Actions []Action
	Data    []byte
}

// Type implements Message.
func (*PacketOut) Type() MessageType { return TypePacketOut }

func (p *PacketOut) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, p.InPort)
	dst = encodeActions(dst, p.Actions)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Data)))
	return append(dst, p.Data...)
}

func (p *PacketOut) decodeBody(src []byte) error {
	if len(src) < 2 {
		return fmt.Errorf("%w: short packet-out", ErrBadMessage)
	}
	p.InPort = binary.BigEndian.Uint16(src[0:2])
	actions, rest, err := decodeActions(src[2:])
	if err != nil {
		return err
	}
	p.Actions = actions
	if len(rest) < 4 {
		return fmt.Errorf("%w: packet-out length truncated", ErrBadMessage)
	}
	n := int(binary.BigEndian.Uint32(rest[0:4]))
	if len(rest) < 4+n {
		return fmt.Errorf("%w: packet-out data truncated", ErrBadMessage)
	}
	p.Data = append([]byte(nil), rest[4:4+n]...)
	return nil
}

// FlowModCommand discriminates FLOW_MOD operations.
type FlowModCommand uint8

// Flow-mod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowDelete
	FlowDeleteByCookie
)

// String names the command for logs and journal entries.
func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "add"
	case FlowDelete:
		return "delete"
	case FlowDeleteByCookie:
		return "delete-by-cookie"
	default:
		return fmt.Sprintf("command(%d)", uint8(c))
	}
}

// FlowMod installs or removes flow entries on a switch.
type FlowMod struct {
	Command     FlowModCommand
	Match       Match
	Priority    uint16
	Actions     []Action
	IdleTimeout time.Duration
	HardTimeout time.Duration
	Cookie      uint64
	// TraceID carries the causal-chain ID of the control decision that
	// produced this message across the southbound wire, so switch-side
	// application can be journaled against the same trace as the
	// posture transition that triggered it (0 = untraced).
	TraceID uint64
}

// Type implements Message.
func (*FlowMod) Type() MessageType { return TypeFlowMod }

func (f *FlowMod) encodeBody(dst []byte) []byte {
	dst = append(dst, uint8(f.Command))
	dst = encodeMatch(dst, f.Match)
	dst = binary.BigEndian.AppendUint16(dst, f.Priority)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.IdleTimeout/time.Millisecond))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.HardTimeout/time.Millisecond))
	dst = binary.BigEndian.AppendUint64(dst, f.Cookie)
	dst = binary.BigEndian.AppendUint64(dst, f.TraceID)
	return encodeActions(dst, f.Actions)
}

func (f *FlowMod) decodeBody(src []byte) error {
	if len(src) < 1 {
		return fmt.Errorf("%w: short flow-mod", ErrBadMessage)
	}
	f.Command = FlowModCommand(src[0])
	m, rest, err := decodeMatch(src[1:])
	if err != nil {
		return err
	}
	f.Match = m
	// Fixed fields are priority(2) idle(4) hard(4) cookie(8) followed
	// by TraceID(8) on the current wire. Peers that predate TraceID
	// encode only the first 18 bytes, so the decoder accepts both
	// layouts for mixed-version deployments: try the current offset
	// first and fall back to the legacy body with TraceID = 0. The two
	// layouts never collide because an encoded action list is exactly
	// 2+9n bytes with no trailer, so at most one offset consumes the
	// body completely.
	if len(rest) < 18 {
		return fmt.Errorf("%w: flow-mod fields truncated", ErrBadMessage)
	}
	f.Priority = binary.BigEndian.Uint16(rest[0:2])
	f.IdleTimeout = time.Duration(binary.BigEndian.Uint32(rest[2:6])) * time.Millisecond
	f.HardTimeout = time.Duration(binary.BigEndian.Uint32(rest[6:10])) * time.Millisecond
	f.Cookie = binary.BigEndian.Uint64(rest[10:18])
	if len(rest) >= 26 {
		if actions, tail, err := decodeActions(rest[26:]); err == nil && len(tail) == 0 {
			f.TraceID = binary.BigEndian.Uint64(rest[18:26])
			f.Actions = actions
			return nil
		}
	}
	actions, tail, err := decodeActions(rest[18:])
	if err != nil {
		return err
	}
	if len(tail) != 0 {
		return fmt.Errorf("%w: flow-mod trailing bytes", ErrBadMessage)
	}
	f.TraceID = 0
	f.Actions = actions
	return nil
}

// FlowRemoved notifies the controller that an entry expired.
type FlowRemoved struct {
	DatapathID uint64
	Match      Match
	Priority   uint16
	Cookie     uint64
	Packets    uint64
	Bytes      uint64
}

// Type implements Message.
func (*FlowRemoved) Type() MessageType { return TypeFlowRemoved }

func (f *FlowRemoved) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, f.DatapathID)
	dst = encodeMatch(dst, f.Match)
	dst = binary.BigEndian.AppendUint16(dst, f.Priority)
	dst = binary.BigEndian.AppendUint64(dst, f.Cookie)
	dst = binary.BigEndian.AppendUint64(dst, f.Packets)
	return binary.BigEndian.AppendUint64(dst, f.Bytes)
}

func (f *FlowRemoved) decodeBody(src []byte) error {
	if len(src) < 8 {
		return fmt.Errorf("%w: short flow-removed", ErrBadMessage)
	}
	f.DatapathID = binary.BigEndian.Uint64(src[0:8])
	m, rest, err := decodeMatch(src[8:])
	if err != nil {
		return err
	}
	f.Match = m
	if len(rest) < 26 {
		return fmt.Errorf("%w: flow-removed fields truncated", ErrBadMessage)
	}
	f.Priority = binary.BigEndian.Uint16(rest[0:2])
	f.Cookie = binary.BigEndian.Uint64(rest[2:10])
	f.Packets = binary.BigEndian.Uint64(rest[10:18])
	f.Bytes = binary.BigEndian.Uint64(rest[18:26])
	return nil
}

// StatsRequest asks for the switch's aggregate counters.
type StatsRequest struct{}

// Type implements Message.
func (*StatsRequest) Type() MessageType            { return TypeStatsRequest }
func (*StatsRequest) encodeBody(dst []byte) []byte { return dst }
func (*StatsRequest) decodeBody([]byte) error      { return nil }

// StatsReply carries aggregate switch counters.
type StatsReply struct {
	DatapathID uint64
	FlowCount  uint32
	PacketsIn  uint64
	PacketsOut uint64
	TableMiss  uint64
}

// Type implements Message.
func (*StatsReply) Type() MessageType { return TypeStatsReply }

func (s *StatsReply) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, s.DatapathID)
	dst = binary.BigEndian.AppendUint32(dst, s.FlowCount)
	dst = binary.BigEndian.AppendUint64(dst, s.PacketsIn)
	dst = binary.BigEndian.AppendUint64(dst, s.PacketsOut)
	return binary.BigEndian.AppendUint64(dst, s.TableMiss)
}

func (s *StatsReply) decodeBody(src []byte) error {
	if len(src) < 36 {
		return fmt.Errorf("%w: short stats reply", ErrBadMessage)
	}
	s.DatapathID = binary.BigEndian.Uint64(src[0:8])
	s.FlowCount = binary.BigEndian.Uint32(src[8:12])
	s.PacketsIn = binary.BigEndian.Uint64(src[12:20])
	s.PacketsOut = binary.BigEndian.Uint64(src[20:28])
	s.TableMiss = binary.BigEndian.Uint64(src[28:36])
	return nil
}

// BarrierRequest asks the switch to finish processing all preceding
// messages before replying; the controller uses it to order updates.
type BarrierRequest struct{}

// Type implements Message.
func (*BarrierRequest) Type() MessageType            { return TypeBarrierRequest }
func (*BarrierRequest) encodeBody(dst []byte) []byte { return dst }
func (*BarrierRequest) decodeBody([]byte) error      { return nil }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{}

// Type implements Message.
func (*BarrierReply) Type() MessageType            { return TypeBarrierReply }
func (*BarrierReply) encodeBody(dst []byte) []byte { return dst }
func (*BarrierReply) decodeBody([]byte) error      { return nil }

// ErrorMsg reports a protocol or processing failure to the peer.
type ErrorMsg struct {
	Code uint16
	Text string
}

// Type implements Message.
func (*ErrorMsg) Type() MessageType { return TypeError }

func (e *ErrorMsg) encodeBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, e.Code)
	return append(dst, e.Text...)
}

func (e *ErrorMsg) decodeBody(src []byte) error {
	if len(src) < 2 {
		return fmt.Errorf("%w: short error message", ErrBadMessage)
	}
	e.Code = binary.BigEndian.Uint16(src[0:2])
	e.Text = string(src[2:])
	return nil
}

// --- field codecs ---

const matchEncodedLen = 4 + 2 + 6 + 6 + 2 + 4 + 4 + 1 + 1 + 1 + 2 + 2

func encodeMatch(dst []byte, m Match) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Wildcards)
	dst = binary.BigEndian.AppendUint16(dst, m.InPort)
	dst = append(dst, m.EthSrc[:]...)
	dst = append(dst, m.EthDst[:]...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(m.EtherType))
	dst = append(dst, m.SrcIP[:]...)
	dst = append(dst, m.DstIP[:]...)
	dst = append(dst, m.SrcMask, m.DstMask, uint8(m.Proto))
	dst = binary.BigEndian.AppendUint16(dst, m.TpSrc)
	return binary.BigEndian.AppendUint16(dst, m.TpDst)
}

func decodeMatch(src []byte) (Match, []byte, error) {
	var m Match
	if len(src) < matchEncodedLen {
		return m, nil, fmt.Errorf("%w: match truncated", ErrBadMessage)
	}
	m.Wildcards = binary.BigEndian.Uint32(src[0:4])
	m.InPort = binary.BigEndian.Uint16(src[4:6])
	copy(m.EthSrc[:], src[6:12])
	copy(m.EthDst[:], src[12:18])
	m.EtherType = packet.EtherType(binary.BigEndian.Uint16(src[18:20]))
	copy(m.SrcIP[:], src[20:24])
	copy(m.DstIP[:], src[24:28])
	m.SrcMask = src[28]
	m.DstMask = src[29]
	m.Proto = packet.IPProtocol(src[30])
	m.TpSrc = binary.BigEndian.Uint16(src[31:33])
	m.TpDst = binary.BigEndian.Uint16(src[33:35])
	return m, src[matchEncodedLen:], nil
}

func encodeActions(dst []byte, actions []Action) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(actions)))
	for _, a := range actions {
		dst = append(dst, uint8(a.Type))
		dst = binary.BigEndian.AppendUint16(dst, a.Port)
		dst = append(dst, a.MAC[:]...)
	}
	return dst
}

func decodeActions(src []byte) ([]Action, []byte, error) {
	if len(src) < 2 {
		return nil, nil, fmt.Errorf("%w: actions truncated", ErrBadMessage)
	}
	n := int(binary.BigEndian.Uint16(src[0:2]))
	src = src[2:]
	const actionLen = 1 + 2 + 6
	if len(src) < n*actionLen {
		return nil, nil, fmt.Errorf("%w: action list truncated", ErrBadMessage)
	}
	actions := make([]Action, n)
	for i := 0; i < n; i++ {
		off := i * actionLen
		actions[i].Type = ActionType(src[off])
		actions[i].Port = binary.BigEndian.Uint16(src[off+1 : off+3])
		copy(actions[i].MAC[:], src[off+3:off+9])
	}
	return actions, src[n*actionLen:], nil
}

// newMessage allocates an empty message of the given type.
func newMessage(t MessageType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeEchoRequest:
		return &Echo{}, nil
	case TypeEchoReply:
		return &Echo{Reply: true}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, t)
	}
}

// Encode frames the message with the given transaction ID.
func Encode(m Message, xid uint32) ([]byte, error) {
	body := m.encodeBody(make([]byte, 0, 64))
	total := headerLen + len(body)
	if total > maxMessageLen {
		return nil, ErrMessageSize
	}
	out := make([]byte, headerLen, total)
	out[0] = Version
	out[1] = uint8(m.Type())
	binary.BigEndian.PutUint32(out[4:8], uint32(total))
	binary.BigEndian.PutUint32(out[8:12], xid)
	return append(out, body...), nil
}
