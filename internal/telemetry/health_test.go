package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHealthReadyGating: only critical components gate readiness, and
// Degraded never does.
func TestHealthReadyGating(t *testing.T) {
	h := NewHealthRegistry()
	state := HealthHealthy
	h.Register("crit", true, func() (HealthState, string) { return state, "r" })
	h.Register("aux", false, func() (HealthState, string) { return HealthDown, "aux broken" })

	ready, comps := h.Ready()
	if !ready {
		t.Fatalf("non-critical Down must not gate readiness: %+v", comps)
	}
	state = HealthDegraded
	if ready, _ := h.Ready(); !ready {
		t.Fatal("critical Degraded must not gate readiness")
	}
	state = HealthDown
	if ready, _ := h.Ready(); ready {
		t.Fatal("critical Down must gate readiness")
	}
}

// TestHealthSinceTracksTransitions: Since moves only when the state
// changes between polls.
func TestHealthSinceTracksTransitions(t *testing.T) {
	h := NewHealthRegistry()
	now := time.Unix(100, 0)
	h.now = func() time.Time { return now }
	state := HealthHealthy
	h.Register("c", true, func() (HealthState, string) { return state, "" })

	first := h.Snapshot()[0].Since
	now = now.Add(time.Minute)
	if got := h.Snapshot()[0].Since; !got.Equal(first) {
		t.Fatalf("Since moved without a transition: %v -> %v", first, got)
	}
	state = HealthDegraded
	now = now.Add(time.Minute)
	if got := h.Snapshot()[0].Since; !got.Equal(now) {
		t.Fatalf("Since = %v after transition, want %v", got, now)
	}
}

// TestReadinessHandlerJSONRoundTrip: the 503 body decodes back into
// HealthJSON with states intact (mboxctl health depends on this).
func TestReadinessHandlerJSONRoundTrip(t *testing.T) {
	h := NewHealthRegistry()
	h.Register("southbound", true, func() (HealthState, string) {
		return HealthDown, "reconnect budget exhausted"
	})
	rr := httptest.NewRecorder()
	h.ReadinessHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	var body HealthJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding /readyz body: %v", err)
	}
	if body.Ready || len(body.Components) != 1 {
		t.Fatalf("body = %+v", body)
	}
	c := body.Components[0]
	if c.Component != "southbound" || c.State != HealthDown || !strings.Contains(c.Reason, "exhausted") {
		t.Fatalf("component round-trip mangled: %+v", c)
	}
}

// TestHealthCollectorGauges: registering a reporter on a registry
// exposes the component gauges at scrape time.
func TestHealthCollectorGauges(t *testing.T) {
	reg := NewRegistry()
	reg.Health().Register("mbox-cluster", false, func() (HealthState, string) {
		return HealthDegraded, "at capacity"
	})
	var health, critical *float64
	for _, m := range reg.Snapshot(0).Metrics {
		for _, s := range m.Samples {
			for _, l := range s.Labels {
				if l.Key == "component" && l.Value == "mbox-cluster" {
					v := s.Value
					switch m.Name {
					case "iotsec_component_health":
						health = &v
					case "iotsec_component_critical":
						critical = &v
					}
				}
			}
		}
	}
	if health == nil || *health != 1 {
		t.Fatalf("iotsec_component_health = %v, want 1 (degraded)", health)
	}
	if critical == nil || *critical != 0 {
		t.Fatalf("iotsec_component_critical = %v, want 0", critical)
	}
}

// TestRegisterBuildInfo: the collector emits exactly one constant
// sample with the component label, and re-registration is idempotent.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	bi := RegisterBuildInfo(reg, "testd")
	if bi.GoVersion == "" || bi.Version == "" {
		t.Fatalf("build info incomplete: %+v", bi)
	}
	RegisterBuildInfo(reg, "testd") // same id: replaces, no duplicate family
	found := 0
	for _, m := range reg.Snapshot(0).Metrics {
		if m.Name != "iotsec_build_info" {
			continue
		}
		for _, s := range m.Samples {
			if s.Value != 1 {
				t.Fatalf("build_info value = %g, want 1", s.Value)
			}
			found++
		}
	}
	if found != 1 {
		t.Fatalf("build_info samples = %d, want 1", found)
	}
}
