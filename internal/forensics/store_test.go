package forensics

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iotsec/internal/journal"
)

// testIncident builds a sealed incident with n chain events.
func testIncident(trace uint64, device string, n int) *Incident {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	inc := &Incident{
		ID:       IncidentID(trace),
		TraceID:  trace,
		Kind:     KindAnomaly,
		Device:   device,
		Severity: journal.Warn,
		OpenedAt: base,
		ClosedAt: base.Add(time.Duration(n) * time.Millisecond),
	}
	for i := 0; i < n; i++ {
		inc.Events = append(inc.Events, journal.Event{
			Seq:      trace*100 + uint64(i+1),
			TraceID:  trace,
			Wall:     base.Add(time.Duration(i) * time.Millisecond),
			Type:     journal.TypeAnomaly,
			Severity: journal.Warn,
			Device:   device,
			Detail:   "chain event",
		})
	}
	return inc
}

// TestStorePutGetReopen: incidents written before a restart are served
// after reopening the same directory, and rotation resumes on the
// segment the previous process was appending to.
func TestStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Put(testIncident(i, "cam", 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for i := uint64(1); i <= 3; i++ {
		inc, ok := re.Get(IncidentID(i))
		if !ok {
			t.Fatalf("incident %d lost across reopen", i)
		}
		if len(inc.Events) != 4 {
			t.Fatalf("incident %d has %d events after reopen, want 4", i, len(inc.Events))
		}
	}
	st := re.Stats()
	if st.Incidents != 3 {
		t.Fatalf("Stats.Incidents = %d, want 3", st.Incidents)
	}
	if st.Segments != 1 {
		t.Fatalf("Stats.Segments = %d, want 1 (no rotation yet)", st.Segments)
	}
	// Rotation resumes: the reopened store appends to the same segment
	// rather than starting a fresh one.
	if err := re.Put(testIncident(4, "cam", 1)); err != nil {
		t.Fatal(err)
	}
	if got := re.Stats().Segments; got != 1 {
		t.Fatalf("append after reopen created segment count %d, want 1", got)
	}
}

// TestStoreRotationAndCap: segments rotate at SegmentBytes and the
// oldest are deleted once the directory exceeds MaxBytes — newest
// history wins, loss is counted, the active segment survives.
func TestStoreRotationAndCap(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{SegmentBytes: 2 << 10, MaxBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 64
	for i := uint64(1); i <= n; i++ {
		if err := s.Put(testIncident(i, "cam", 4)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 8<<10+2<<10 { // one segment of slack while rotating
		t.Fatalf("store grew to %d bytes, cap is %d", st.Bytes, 8<<10)
	}
	if st.DroppedSegments == 0 || st.DroppedIncidents == 0 {
		t.Fatalf("expected eviction under cap, got %d segs / %d incidents dropped", st.DroppedSegments, st.DroppedIncidents)
	}
	// Newest must survive, oldest must be gone.
	if _, ok := s.Get(IncidentID(n)); !ok {
		t.Fatal("newest incident evicted — oldest-first eviction violated")
	}
	if _, ok := s.Get(IncidentID(1)); ok {
		t.Fatal("oldest incident survived a cap eviction that dropped segments")
	}
	if st.Incidents+int(st.DroppedIncidents) != n {
		t.Fatalf("retained %d + dropped %d != put %d", st.Incidents, st.DroppedIncidents, n)
	}
}

// TestStoreSupersede: re-putting an incident ID keeps only the latest
// record, across reopen too.
func TestStoreSupersede(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testIncident(7, "cam", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testIncident(7, "cam", 5)); err != nil {
		t.Fatal(err)
	}
	if inc, _ := s.Get(IncidentID(7)); len(inc.Events) != 5 {
		t.Fatalf("live store kept %d events, want the superseding 5", len(inc.Events))
	}
	if got := len(s.Digests()); got != 1 {
		t.Fatalf("Digests lists %d records for one ID, want 1", got)
	}
	s.Close()

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	inc, ok := re.Get(IncidentID(7))
	if !ok || len(inc.Events) != 5 {
		t.Fatalf("reopen kept %v/%d events, want the superseding 5", ok, len(inc.Events))
	}
}

// TestStoreCorruptLineTolerated: a torn final write (crash mid-append)
// must not fail the reopen or lose the parseable records around it.
func TestStoreCorruptLineTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testIncident(1, "cam", 3)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the segment: a half-written JSON line at the end.
	seg := filepath.Join(dir, "incidents-00000.ndjson")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"inc-torn","trace_id":99,"kind":"anom`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer re.Close()
	if _, ok := re.Get(IncidentID(1)); !ok {
		t.Fatal("intact record lost to a neighboring torn line")
	}
	if got := len(re.Digests()); got != 1 {
		t.Fatalf("Digests = %d records, want only the intact one", got)
	}
	// Appending after the torn line must start a fresh line — incident
	// 2 has to survive yet another reopen, not be concatenated onto the
	// torn record and lost with it.
	if err := re.Put(testIncident(2, "cam", 1)); err != nil {
		t.Fatal(err)
	}
	re.Close()
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Fatal("segment does not end in a newline after post-corruption append")
	}
	re2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if _, ok := re2.Get(IncidentID(2)); !ok {
		t.Fatal("record appended after a torn line was corrupted by it")
	}
}
