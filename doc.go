// Package iotsec is a full reproduction of "Handling a trillion
// (unfixable) flaws on a billion devices: Rethinking network security
// for the Internet-of-Things" (Yu, Sekar, Seshan, Agarwal, Xu —
// HotNets 2015): the IoTSec software-defined IoT security platform,
// built from scratch on a simulated network fabric, emulated
// vulnerable devices, and a physical-environment simulator.
//
// The implementation lives under internal/; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the reproduction of every
// table and figure. The runnable entry points are the binaries under
// cmd/ and the programs under examples/.
package iotsec
