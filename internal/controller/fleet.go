package controller

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/telemetry"
)

// Rollup section names shared by every shard-level producer (local
// controllers, the core platform's self-report) and the fleet
// aggregator. Keeping them constants means a shard and its aggregator
// can never drift on naming.
const (
	// Counters (monotonic deltas).
	RollupEvents      = "events_total"
	RollupEscalations = "escalations_total"
	RollupViolations  = "violations_total"
	// Histograms (bucket deltas).
	RollupMTTR = "mttr_e2e_seconds"
	// TopK summaries (cumulative snapshots).
	RollupTopProducers = "top_producers"
	RollupTopViolators = "top_violators"
	RollupTopMTTR      = "top_mttr_contributors"
	// Gauges (instantaneous).
	RollupDevices = "devices"
	RollupHealthy = "healthy"
	// Per-SKU device gauges use this prefix: "devices_sku:<sku>".
	RollupSKUPrefix = "devices_sku:"
)

// FleetTopKCapacity is the per-dimension cardinality budget: a shard
// never exports more than this many per-device series per dimension,
// and the fleet view never carries more than this many after merging —
// regardless of fleet size.
const FleetTopKCapacity = 16

// ShardStats is the bounded-cardinality telemetry one local
// controller (or any shard-like reporting source) accumulates and
// exports up the hierarchy as rollup deltas. The write paths are a
// counter add plus a TopK offer (one uncontended per-shard mutex);
// per-device dimensions are capped at FleetTopKCapacity keys via
// space-saving summaries, so shard telemetry stays O(1) in device
// count.
type ShardStats struct {
	source string

	events      telemetry.Counter
	escalations telemetry.Counter
	violations  telemetry.Counter
	e2e         *telemetry.Histogram

	topProducers *telemetry.TopK
	topViolators *telemetry.TopK
	topMTTR      *telemetry.TopK

	devices   atomic.Int64
	unhealthy atomic.Bool

	skuMu      sync.Mutex
	skuDevices map[string]float64

	builder *telemetry.RollupBuilder
}

// NewShardStats builds stats for one reporting source. bounds are the
// MTTR histogram bounds (nil = telemetry.LatencyBuckets); every shard
// reporting to one aggregator must use the same bounds or its
// histogram merges will be rejected.
func NewShardStats(source string, bounds []float64) *ShardStats {
	s := &ShardStats{
		source:       source,
		e2e:          telemetry.NewStandaloneHistogram(bounds),
		topProducers: telemetry.NewStandaloneTopK(FleetTopKCapacity),
		topViolators: telemetry.NewStandaloneTopK(FleetTopKCapacity),
		topMTTR:      telemetry.NewStandaloneTopK(FleetTopKCapacity),
		skuDevices:   make(map[string]float64),
	}
	s.builder = telemetry.NewRollupBuilder(source).
		AddCounter(RollupEvents, &s.events).
		AddCounter(RollupEscalations, &s.escalations).
		AddCounter(RollupViolations, &s.violations).
		AddHistogram(RollupMTTR, s.e2e).
		AddTopK(RollupTopProducers, s.topProducers).
		AddTopK(RollupTopViolators, s.topViolators).
		AddTopK(RollupTopMTTR, s.topMTTR).
		AddGauge(RollupDevices, func() float64 { return float64(s.devices.Load()) }).
		AddGauge(RollupHealthy, func() float64 {
			if s.unhealthy.Load() {
				return 0
			}
			return 1
		})
	return s
}

// Source reports the shard name.
func (s *ShardStats) Source() string { return s.source }

// RecordEvent counts one handled event from a device (hot path: one
// atomic add + one per-shard TopK offer).
func (s *ShardStats) RecordEvent(device string) {
	s.events.Inc()
	s.topProducers.Inc(device)
}

// RecordEscalation counts an event that escalated to the global
// controller.
func (s *ShardStats) RecordEscalation() { s.escalations.Inc() }

// RecordViolation counts a policy/profile violation attributed to a
// device.
func (s *ShardStats) RecordViolation(device string) {
	s.violations.Inc()
	s.topViolators.Inc(device)
}

// ObserveE2E records one detect→enforce latency and credits the
// device as an MTTR contributor (weight = microseconds, so slow
// devices float to the top regardless of event volume).
func (s *ShardStats) ObserveE2E(device string, seconds float64) {
	s.e2e.Observe(seconds)
	if us := uint64(seconds * 1e6); us > 0 {
		s.topMTTR.Offer(device, us)
	}
}

// E2E exposes the live MTTR histogram (for direct-vs-merged
// validation and local quantile checks).
func (s *ShardStats) E2E() *telemetry.Histogram { return s.e2e }

// SetDevices records the shard's device count.
func (s *ShardStats) SetDevices(n int) { s.devices.Store(int64(n)) }

// SetSKUDevices records the shard's per-SKU device counts (replaces
// the previous map).
func (s *ShardStats) SetSKUDevices(counts map[string]int) {
	s.skuMu.Lock()
	s.skuDevices = make(map[string]float64, len(counts))
	for sku, n := range counts {
		s.skuDevices[sku] = float64(n)
	}
	s.skuMu.Unlock()
}

// SetHealthy flips the shard's health gauge.
func (s *ShardStats) SetHealthy(ok bool) { s.unhealthy.Store(!ok) }

// Rollup exports the delta since the previous Rollup (single-consumer;
// the rollup plane's pusher goroutine is that consumer).
func (s *ShardStats) Rollup(now time.Time) telemetry.Rollup {
	r := s.builder.Take(now)
	s.skuMu.Lock()
	for sku, n := range s.skuDevices {
		if r.Gauges == nil {
			r.Gauges = make(map[string]float64, len(s.skuDevices))
		}
		r.Gauges[RollupSKUPrefix+sku] = n
	}
	s.skuMu.Unlock()
	return r
}

// --- fleet aggregation ---

// shardAgg is the aggregator's per-source state.
type shardAgg struct {
	lastSeq    uint64
	lastSeen   time.Time
	lastWindow float64
	lastEvents uint64 // events delta in the last applied rollup

	// Failover surfacing: set by the supervisor when the shard's local
	// controller died and its partition was re-homed. Explicit state —
	// a failed-over shard is more than STALE.
	failedOver  bool
	rehomedTo   string
	recoveredAt time.Time

	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]telemetry.HistogramRollup
	topk     map[string]telemetry.TopKRollup
}

// FleetAggregator merges shard rollups into the fleet view (§5.1's
// global controller role for telemetry): cumulative counters and
// histograms per shard, mergeable across shards at read time, with
// staleness tracking — a shard that stops reporting is *surfaced* as
// stale (and excluded from instantaneous rates) rather than silently
// dropped from cumulative aggregates.
type FleetAggregator struct {
	staleAfter time.Duration
	now        func() time.Time

	mu     sync.Mutex
	shards map[string]*shardAgg

	// Incident plane (fleet_incidents.go), attached on first use.
	incOnce sync.Once
	inc     *fleetIncidents

	reports     atomic.Uint64
	dupReports  atomic.Uint64
	mergeErrors atomic.Uint64
}

// DefaultStaleAfter marks a shard stale when it hasn't reported for
// this long (rollup planes default to pushing every 1s–5s).
const DefaultStaleAfter = 15 * time.Second

// NewFleetAggregator builds an empty aggregator. staleAfter <= 0 uses
// DefaultStaleAfter.
func NewFleetAggregator(staleAfter time.Duration) *FleetAggregator {
	if staleAfter <= 0 {
		staleAfter = DefaultStaleAfter
	}
	return &FleetAggregator{
		staleAfter: staleAfter,
		now:        time.Now,
		shards:     make(map[string]*shardAgg),
	}
}

// SetClock overrides the staleness clock (tests).
func (f *FleetAggregator) SetClock(now func() time.Time) { f.now = now }

// Report merges one shard rollup. Rollups must arrive per-source in
// sequence order; a rollup whose Seq is not greater than the last
// applied one from the same source is dropped (idempotent re-push). A
// histogram bounds mismatch errors and skips that histogram without
// corrupting the merged state.
func (f *FleetAggregator) Report(r telemetry.Rollup) error {
	if r.Source == "" {
		return fmt.Errorf("controller: fleet rollup without a source")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := f.shards[r.Source]
	if sh == nil {
		sh = &shardAgg{
			counters: make(map[string]uint64),
			gauges:   make(map[string]float64),
			hists:    make(map[string]telemetry.HistogramRollup),
			topk:     make(map[string]telemetry.TopKRollup),
		}
		f.shards[r.Source] = sh
	}
	if r.Seq <= sh.lastSeq {
		f.dupReports.Add(1)
		return nil
	}
	f.reports.Add(1)
	sh.lastSeq = r.Seq
	sh.lastSeen = f.now()
	sh.lastWindow = r.WindowSeconds
	sh.lastEvents = r.Counters[RollupEvents]

	for name, d := range r.Counters {
		sh.counters[name] += d
	}
	for name, v := range r.Gauges {
		sh.gauges[name] = v
	}
	for name, t := range r.TopK {
		sh.topk[name] = t
	}
	var firstErr error
	for name, hr := range r.Histograms {
		cur := sh.hists[name]
		if err := cur.Merge(hr); err != nil {
			f.mergeErrors.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("controller: fleet rollup from %s: %s: %w", r.Source, name, err)
			}
			continue
		}
		sh.hists[name] = cur
	}
	return firstErr
}

// SetShardFailover marks a shard as failed over and re-homed: the
// supervisor calls it at recovery-complete so /debug/fleet and mboxctl
// fleet show FAILED-OVER / RE-HOMED-TO state explicitly instead of
// letting the shard quietly go STALE. Creates the shard row if it never
// reported (a controller can die before its first rollup); lastSeen is
// deliberately NOT touched — staleness keeps tracking real reporting.
func (f *FleetAggregator) SetShardFailover(source, rehomedTo string, at time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sh := f.shards[source]
	if sh == nil {
		sh = &shardAgg{
			counters: make(map[string]uint64),
			gauges:   make(map[string]float64),
			hists:    make(map[string]telemetry.HistogramRollup),
			topk:     make(map[string]telemetry.TopKRollup),
		}
		f.shards[source] = sh
	}
	sh.failedOver = true
	sh.rehomedTo = rehomedTo
	sh.recoveredAt = at
}

// QuantilesJSON summarizes one latency distribution.
type QuantilesJSON struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P95   float64 `json:"p95_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func quantilesOf(h telemetry.HistogramRollup) QuantilesJSON {
	return QuantilesJSON{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// ShardSummary is one shard's row in the fleet view.
type ShardSummary struct {
	Source       string             `json:"source"`
	LastSeq      uint64             `json:"last_seq"`
	AgeSeconds   float64            `json:"age_seconds"`
	Stale        bool               `json:"stale"`
	Healthy      bool               `json:"healthy"`
	FailedOver   bool               `json:"failed_over,omitempty"`
	RehomedTo    string             `json:"rehomed_to,omitempty"`
	RecoveredAt  *time.Time         `json:"recovered_at,omitempty"`
	Devices      float64            `json:"devices"`
	SKUDevices   map[string]float64 `json:"sku_devices,omitempty"`
	Events       uint64             `json:"events_total"`
	Escalations  uint64             `json:"escalations_total"`
	Violations   uint64             `json:"violations_total"`
	EventsPerSec float64            `json:"events_per_sec"`
	MTTR         QuantilesJSON      `json:"mttr"`
}

// FleetSummary is the merged fleet-wide row.
type FleetSummary struct {
	Shards           int `json:"shards"`
	StaleShards      int `json:"stale_shards"`
	FailedOverShards int `json:"failed_over_shards"`
	Devices      float64               `json:"devices"`
	SKUDevices   map[string]float64    `json:"sku_devices,omitempty"`
	Events       uint64                `json:"events_total"`
	Escalations  uint64                `json:"escalations_total"`
	Violations   uint64                `json:"violations_total"`
	EventsPerSec float64               `json:"events_per_sec"`
	MTTR         QuantilesJSON         `json:"mttr"`
	TopProducers []telemetry.TopKEntry `json:"top_producers,omitempty"`
	TopViolators []telemetry.TopKEntry `json:"top_violators,omitempty"`
	TopMTTR      []telemetry.TopKEntry `json:"top_mttr_contributors,omitempty"`
}

// FleetView is the merged picture served at /debug/fleet.
type FleetView struct {
	TakenAt           time.Time      `json:"taken_at"`
	StaleAfterSeconds float64        `json:"stale_after_seconds"`
	Fleet             FleetSummary   `json:"fleet"`
	Shards            []ShardSummary `json:"shards"`
}

// View merges the current shard state. Stale shards stay in every
// cumulative aggregate (their history happened) and in device counts;
// they are only excluded from the instantaneous events/sec rate, and
// are counted in Fleet.StaleShards so monitoring can alarm on them.
func (f *FleetAggregator) View() FleetView {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	out := FleetView{
		TakenAt:           now,
		StaleAfterSeconds: f.staleAfter.Seconds(),
	}
	var mergedMTTR telemetry.HistogramRollup
	skuTotals := make(map[string]float64)
	var producers, violators, contributors []telemetry.TopKRollup

	names := make([]string, 0, len(f.shards))
	for name := range f.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sh := f.shards[name]
		age := now.Sub(sh.lastSeen)
		sum := ShardSummary{
			Source:      name,
			LastSeq:     sh.lastSeq,
			AgeSeconds:  age.Seconds(),
			Stale:       age > f.staleAfter,
			Healthy:     sh.gauges[RollupHealthy] != 0,
			Devices:     sh.gauges[RollupDevices],
			Events:      sh.counters[RollupEvents],
			Escalations: sh.counters[RollupEscalations],
			Violations:  sh.counters[RollupViolations],
			MTTR:        quantilesOf(sh.hists[RollupMTTR]),
		}
		if sh.failedOver {
			sum.FailedOver = true
			sum.RehomedTo = sh.rehomedTo
			t := sh.recoveredAt
			sum.RecoveredAt = &t
			out.Fleet.FailedOverShards++
		}
		if sh.lastWindow > 0 && !sum.Stale {
			sum.EventsPerSec = float64(sh.lastEvents) / sh.lastWindow
		}
		for g, v := range sh.gauges {
			if sku, ok := strings.CutPrefix(g, RollupSKUPrefix); ok {
				if sum.SKUDevices == nil {
					sum.SKUDevices = make(map[string]float64)
				}
				sum.SKUDevices[sku] = v
				skuTotals[sku] += v
			}
		}
		out.Shards = append(out.Shards, sum)

		out.Fleet.Devices += sum.Devices
		out.Fleet.Events += sum.Events
		out.Fleet.Escalations += sum.Escalations
		out.Fleet.Violations += sum.Violations
		out.Fleet.EventsPerSec += sum.EventsPerSec
		if sum.Stale {
			out.Fleet.StaleShards++
		}
		if h, ok := sh.hists[RollupMTTR]; ok {
			// Bounds were vetted at Report time; a residual mismatch here
			// would have been counted there.
			_ = mergedMTTR.Merge(h)
		}
		if t, ok := sh.topk[RollupTopProducers]; ok {
			producers = append(producers, t)
		}
		if t, ok := sh.topk[RollupTopViolators]; ok {
			violators = append(violators, t)
		}
		if t, ok := sh.topk[RollupTopMTTR]; ok {
			contributors = append(contributors, t)
		}
	}
	out.Fleet.Shards = len(out.Shards)
	if len(skuTotals) > 0 {
		out.Fleet.SKUDevices = skuTotals
	}
	out.Fleet.MTTR = quantilesOf(mergedMTTR)
	out.Fleet.TopProducers = MergeTopKEntries(producers)
	out.Fleet.TopViolators = MergeTopKEntries(violators)
	out.Fleet.TopMTTR = MergeTopKEntries(contributors)
	return out
}

// MergeTopKEntries merges shard TopK snapshots under the fleet
// cardinality budget, dropping empty results to nil for compact JSON.
func MergeTopKEntries(ins []telemetry.TopKRollup) []telemetry.TopKEntry {
	if len(ins) == 0 {
		return nil
	}
	m := telemetry.MergeTopK(FleetTopKCapacity, ins...)
	if len(m.Entries) == 0 {
		return nil
	}
	return m.Entries
}

// MergedMTTR returns the fleet-wide merged MTTR histogram rollup
// (harness and tests re-derive quantiles from it).
func (f *FleetAggregator) MergedMTTR() telemetry.HistogramRollup {
	f.mu.Lock()
	defer f.mu.Unlock()
	var merged telemetry.HistogramRollup
	for _, sh := range f.shards {
		if h, ok := sh.hists[RollupMTTR]; ok {
			_ = merged.Merge(h)
		}
	}
	return merged
}

// Stats reports aggregator-level accounting.
func (f *FleetAggregator) Stats() (reports, dups, mergeErrors uint64) {
	return f.reports.Load(), f.dupReports.Load(), f.mergeErrors.Load()
}

// Handler serves the fleet view as JSON (mount at /debug/fleet).
func (f *FleetAggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.View())
	})
}

// ExportTelemetry registers a scrape-time collector exposing the
// merged fleet series (iotsec_fleet_*) on reg (Default when nil).
// Re-registering under the same id replaces the previous collector.
func (f *FleetAggregator) ExportTelemetry(reg *telemetry.Registry, id string) {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.RegisterCollector("fleet-aggregator:"+id, func(emit func(string, telemetry.Kind, string, telemetry.Labels, float64)) {
		v := f.View()
		emit("iotsec_fleet_shards", telemetry.KindGauge,
			"Shards known to the fleet aggregator.", nil, float64(v.Fleet.Shards))
		emit("iotsec_fleet_stale_shards", telemetry.KindGauge,
			"Shards past the staleness deadline (still in cumulative aggregates).", nil, float64(v.Fleet.StaleShards))
		emit("iotsec_fleet_failed_over_shards", telemetry.KindGauge,
			"Shards whose local controller failed over (partition re-homed).", nil, float64(v.Fleet.FailedOverShards))
		emit("iotsec_fleet_devices", telemetry.KindGauge,
			"Devices across all reporting shards.", nil, v.Fleet.Devices)
		emit("iotsec_fleet_events_total", telemetry.KindCounter,
			"Device events handled fleet-wide (merged shard rollups).", nil, float64(v.Fleet.Events))
		emit("iotsec_fleet_escalations_total", telemetry.KindCounter,
			"Events escalated to the global controller fleet-wide.", nil, float64(v.Fleet.Escalations))
		emit("iotsec_fleet_events_per_sec", telemetry.KindGauge,
			"Fleet event rate summed over fresh shards' last rollup windows.", nil, v.Fleet.EventsPerSec)
		reports, dups, mergeErrs := f.Stats()
		emit("iotsec_fleet_reports_total", telemetry.KindCounter,
			"Shard rollups applied by the aggregator.", nil, float64(reports))
		emit("iotsec_fleet_report_dups_total", telemetry.KindCounter,
			"Out-of-sequence shard rollups dropped (idempotent re-push).", nil, float64(dups))
		emit("iotsec_fleet_merge_errors_total", telemetry.KindCounter,
			"Histogram sections rejected on bounds mismatch.", nil, float64(mergeErrs))
		for _, sh := range v.Shards {
			labels := telemetry.Labels{{Key: "shard", Value: sh.Source}}
			emit("iotsec_fleet_mttr_p99_seconds", telemetry.KindGauge,
				"Per-shard detect→enforce p99 from merged rollups.", labels, sh.MTTR.P99)
		}
		emit("iotsec_fleet_mttr_p99_seconds", telemetry.KindGauge,
			"Per-shard detect→enforce p99 from merged rollups.",
			telemetry.Labels{{Key: "shard", Value: "fleet"}}, v.Fleet.MTTR.P99)
	})
}

// --- hierarchy integration ---

// fleetStatsSet is the atomically published shard-stats map; a nil
// pointer means fleet telemetry is detached and the event hot path
// pays one atomic load + branch.
type fleetStatsSet struct {
	byGroup map[int]*ShardStats
}

// EnableFleetStats attaches per-partition ShardStats to the
// hierarchy's local controllers (idempotent: a second call returns the
// existing set). Returns the stats keyed by partition group so
// enforcement layers can feed detect→enforce observations into the
// owning shard.
func (h *Hierarchy) EnableFleetStats() map[int]*ShardStats {
	if set := h.fleetStats.Load(); set != nil {
		return set.byGroup
	}
	byGroup := make(map[int]*ShardStats, len(h.locals))
	for g := range h.locals {
		s := NewShardStats(fmt.Sprintf("shard-%03d", g), nil)
		s.SetDevices(len(h.partitioning.Groups[g]))
		byGroup[g] = s
	}
	set := &fleetStatsSet{byGroup: byGroup}
	if !h.fleetStats.CompareAndSwap(nil, set) {
		return h.fleetStats.Load().byGroup
	}
	return byGroup
}

// FleetStats returns the attached shard stats (nil when detached).
func (h *Hierarchy) FleetStats() map[int]*ShardStats {
	if set := h.fleetStats.Load(); set != nil {
		return set.byGroup
	}
	return nil
}

// recordShardEvent feeds the owning shard's stats if attached.
func (h *Hierarchy) recordShardEvent(group int, device string, escalated bool) {
	set := h.fleetStats.Load()
	if set == nil {
		return
	}
	s := set.byGroup[group]
	if s == nil {
		return
	}
	s.RecordEvent(device)
	if escalated {
		s.RecordEscalation()
	}
}

// FleetRollupPlane periodically pushes every shard's rollup delta up
// to a fleet aggregator — the hierarchical transport of the telemetry
// plane. One pusher goroutine serves all shards (rollup extraction is
// a snapshot fold, far off the event hot path).
type FleetRollupPlane struct {
	agg      *FleetAggregator
	stats    []*ShardStats
	interval time.Duration

	// incidents, when attached, has its digests pushed with every
	// rollup flush (the incident side-channel of the shard report).
	incidents atomic.Pointer[incidentFeed]

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// incidentFeed pairs an incident source with its reporting name.
type incidentFeed struct {
	source string
	src    IncidentSource
}

// AttachIncidents registers src as this plane's incident feed: the
// aggregator gets the live pull handle immediately, and every flush
// pushes the current digest set alongside the shard rollups.
func (p *FleetRollupPlane) AttachIncidents(source string, src IncidentSource) {
	p.incidents.Store(&incidentFeed{source: source, src: src})
	p.agg.AttachIncidentSource(source, src)
}

// StartFleetRollups enables shard stats (if not already) and starts
// pushing rollup deltas to agg every interval (default 1s). Stop
// flushes one final rollup so short-lived runs lose nothing.
func (h *Hierarchy) StartFleetRollups(agg *FleetAggregator, interval time.Duration) *FleetRollupPlane {
	if interval <= 0 {
		interval = time.Second
	}
	byGroup := h.EnableFleetStats()
	stats := make([]*ShardStats, 0, len(byGroup))
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		stats = append(stats, byGroup[g])
	}
	p := &FleetRollupPlane{
		agg:      agg,
		stats:    stats,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go p.run()
	return p
}

func (p *FleetRollupPlane) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			p.Flush()
			return
		case <-ticker.C:
			p.Flush()
		}
	}
}

// Flush pushes one rollup per shard immediately (plus the incident
// digests when a feed is attached).
func (p *FleetRollupPlane) Flush() {
	now := time.Now()
	for _, s := range p.stats {
		_ = p.agg.Report(s.Rollup(now))
	}
	if feed := p.incidents.Load(); feed != nil {
		p.agg.ReportIncidents(feed.source, feed.src.Digests())
	}
}

// Stop halts the pusher after one final flush. Idempotent.
func (p *FleetRollupPlane) Stop() {
	p.once.Do(func() {
		close(p.stop)
		<-p.done
	})
}

// Fleet returns the global controller's fleet aggregator, creating it
// on first use (default staleness deadline).
func (g *Global) Fleet() *FleetAggregator {
	g.fleetOnce.Do(func() {
		g.fleet = NewFleetAggregator(0)
	})
	return g.fleet
}
