package packet

import (
	"encoding/binary"
	"fmt"
)

// EndpointType distinguishes the address family of an Endpoint.
type EndpointType uint8

// Endpoint address families.
const (
	EndpointInvalid EndpointType = iota
	EndpointMAC
	EndpointIPv4
	EndpointPort
	EndpointIPv4Port
)

// Endpoint is a hashable source or destination address at some layer.
// Fixed-size so it is usable as a map key.
type Endpoint struct {
	Type EndpointType
	raw  [6]byte
}

// MACEndpoint wraps a MAC address.
func MACEndpoint(m MACAddress) Endpoint {
	e := Endpoint{Type: EndpointMAC}
	copy(e.raw[:], m[:])
	return e
}

// IPv4Endpoint wraps an IPv4 address.
func IPv4Endpoint(a IPv4Address) Endpoint {
	e := Endpoint{Type: EndpointIPv4}
	copy(e.raw[:4], a[:])
	return e
}

// PortEndpoint wraps a transport port.
func PortEndpoint(p uint16) Endpoint {
	e := Endpoint{Type: EndpointPort}
	binary.BigEndian.PutUint16(e.raw[:2], p)
	return e
}

// IPv4PortEndpoint wraps an (address, port) socket pair.
func IPv4PortEndpoint(a IPv4Address, p uint16) Endpoint {
	e := Endpoint{Type: EndpointIPv4Port}
	copy(e.raw[:4], a[:])
	binary.BigEndian.PutUint16(e.raw[4:6], p)
	return e
}

// IPv4Addr extracts the IPv4 address for IPv4/IPv4Port endpoints.
func (e Endpoint) IPv4Addr() (IPv4Address, bool) {
	switch e.Type {
	case EndpointIPv4, EndpointIPv4Port:
		var a IPv4Address
		copy(a[:], e.raw[:4])
		return a, true
	default:
		return IPv4Address{}, false
	}
}

// Port extracts the port for Port/IPv4Port endpoints.
func (e Endpoint) Port() (uint16, bool) {
	switch e.Type {
	case EndpointPort:
		return binary.BigEndian.Uint16(e.raw[:2]), true
	case EndpointIPv4Port:
		return binary.BigEndian.Uint16(e.raw[4:6]), true
	default:
		return 0, false
	}
}

// String renders the endpoint address.
func (e Endpoint) String() string {
	switch e.Type {
	case EndpointMAC:
		var m MACAddress
		copy(m[:], e.raw[:])
		return m.String()
	case EndpointIPv4:
		a, _ := e.IPv4Addr()
		return a.String()
	case EndpointPort:
		p, _ := e.Port()
		return fmt.Sprintf("port %d", p)
	case EndpointIPv4Port:
		a, _ := e.IPv4Addr()
		p, _ := e.Port()
		return fmt.Sprintf("%s:%d", a, p)
	default:
		return "invalid"
	}
}

// Flow is a (src, dst) endpoint pair; hashable and comparable, so
// usable as a map key for per-flow state.
type Flow struct {
	Src, Dst Endpoint
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// Canonical returns a direction-independent form of the flow: the same
// value for A→B and B→A, so bidirectional state can share one key.
func (f Flow) Canonical() Flow {
	if endpointLess(f.Dst, f.Src) {
		return f.Reverse()
	}
	return f
}

// endpointLess orders endpoints by (type, raw bytes).
func endpointLess(a, b Endpoint) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	for i := range a.raw {
		if a.raw[i] != b.raw[i] {
			return a.raw[i] < b.raw[i]
		}
	}
	return false
}

// String renders "src > dst".
func (f Flow) String() string { return f.Src.String() + " > " + f.Dst.String() }

// NetworkFlow extracts the IPv4 src/dst flow of a decoded packet.
func (p *Packet) NetworkFlow() (Flow, bool) {
	ip := p.IPv4()
	if ip == nil {
		return Flow{}, false
	}
	return Flow{Src: IPv4Endpoint(ip.SrcIP), Dst: IPv4Endpoint(ip.DstIP)}, true
}

// TransportFlow extracts the (IP, port) socket-pair flow of a decoded
// packet, covering both TCP and UDP.
func (p *Packet) TransportFlow() (Flow, bool) {
	ip := p.IPv4()
	if ip == nil {
		return Flow{}, false
	}
	if t := p.TCP(); t != nil {
		return Flow{
			Src: IPv4PortEndpoint(ip.SrcIP, t.SrcPort),
			Dst: IPv4PortEndpoint(ip.DstIP, t.DstPort),
		}, true
	}
	if u := p.UDP(); u != nil {
		return Flow{
			Src: IPv4PortEndpoint(ip.SrcIP, u.SrcPort),
			Dst: IPv4PortEndpoint(ip.DstIP, u.DstPort),
		}, true
	}
	return Flow{}, false
}
