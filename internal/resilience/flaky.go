package resilience

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedFailure is returned by FlakyConn I/O that the fault plan
// decided to kill.
var ErrInjectedFailure = errors.New("resilience: injected connection failure")

// FaultPlan is the shared, runtime-tunable control block for a set of
// flaky connections: a chaos test mutates the plan (kill probability,
// latency, one-way partitions) while the system under test keeps
// using conns wrapped over it. The random source is seeded, so a
// given plan + call sequence replays deterministically.
type FaultPlan struct {
	mu  sync.Mutex
	rng *rand.Rand

	killRate     float64
	readLatency  time.Duration
	writeLatency time.Duration
	dropReads    bool
	dropWrites   bool
}

// NewFaultPlan builds a benign plan (no faults) with a deterministic
// random source (seed 0 picks a fixed default).
func NewFaultPlan(seed int64) *FaultPlan {
	if seed == 0 {
		seed = 0xf1a7
	}
	return &FaultPlan{rng: rand.New(rand.NewSource(seed))}
}

// SetKillRate sets the per-I/O probability (in [0,1]) that the
// connection is torn down mid-operation.
func (p *FaultPlan) SetKillRate(rate float64) {
	p.mu.Lock()
	p.killRate = rate
	p.mu.Unlock()
}

// SetLatency injects a fixed delay before each read and write.
func (p *FaultPlan) SetLatency(read, write time.Duration) {
	p.mu.Lock()
	p.readLatency = read
	p.writeLatency = write
	p.mu.Unlock()
}

// PartitionReads blackholes the receive direction: reads block (no
// data arrives) until the conn is closed. Models a one-way partition
// where the peer's traffic is lost.
func (p *FaultPlan) PartitionReads(on bool) {
	p.mu.Lock()
	p.dropReads = on
	p.mu.Unlock()
}

// PartitionWrites blackholes the send direction: writes report
// success but never reach the peer.
func (p *FaultPlan) PartitionWrites(on bool) {
	p.mu.Lock()
	p.dropWrites = on
	p.mu.Unlock()
}

// sampleKill draws the kill process once.
func (p *FaultPlan) sampleKill() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killRate > 0 && p.rng.Float64() < p.killRate
}

func (p *FaultPlan) readState() (latency time.Duration, drop bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readLatency, p.dropReads
}

func (p *FaultPlan) writeState() (latency time.Duration, drop bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writeLatency, p.dropWrites
}

// FlakyConn wraps a net.Conn with the faults its plan prescribes.
type FlakyConn struct {
	net.Conn
	plan *FaultPlan

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn attaches a fault plan to a connection.
func WrapConn(c net.Conn, plan *FaultPlan) *FlakyConn {
	return &FlakyConn{Conn: c, plan: plan, closed: make(chan struct{})}
}

// delay waits d or until the conn closes.
func (c *FlakyConn) delay(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

// Read implements net.Conn with injected latency, partitions and
// kills.
func (c *FlakyConn) Read(b []byte) (int, error) {
	latency, drop := c.plan.readState()
	if drop {
		// One-way partition: nothing ever arrives. Block until close so
		// the reader experiences a silent half-dead session (the case
		// heartbeats exist to detect).
		<-c.closed
		return 0, net.ErrClosed
	}
	if err := c.delay(latency); err != nil {
		return 0, err
	}
	if c.plan.sampleKill() {
		_ = c.Close()
		return 0, ErrInjectedFailure
	}
	return c.Conn.Read(b)
}

// Write implements net.Conn with injected latency, partitions and
// kills.
func (c *FlakyConn) Write(b []byte) (int, error) {
	latency, drop := c.plan.writeState()
	if err := c.delay(latency); err != nil {
		return 0, err
	}
	if drop {
		// Blackholed direction: pretend success.
		return len(b), nil
	}
	if c.plan.sampleKill() {
		_ = c.Close()
		return 0, ErrInjectedFailure
	}
	return c.Conn.Write(b)
}

// Close implements net.Conn, waking any partition-blocked readers.
func (c *FlakyConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// FlakyListener wraps every accepted connection with the plan.
type FlakyListener struct {
	net.Listener
	plan *FaultPlan
}

// WrapListener attaches a fault plan to all future accepted conns.
func WrapListener(ln net.Listener, plan *FaultPlan) *FlakyListener {
	return &FlakyListener{Listener: ln, plan: plan}
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.plan), nil
}
