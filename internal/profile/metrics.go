package profile

import "iotsec/internal/telemetry"

// Profile-plane telemetry (satellite of ISSUE 6): how many profiles
// the deployment has learned and installed, how many devices run
// under enforcement, and how often live traffic deviates.
var (
	mLearned = telemetry.NewCounter(
		"iotsec_profile_learned_total",
		"SKU behavior profiles distilled from training windows.")
	mInstalled = telemetry.NewCounter(
		"iotsec_profile_installed_total",
		"Profile installs/updates accepted into the active set.")
	mEnforced = telemetry.NewGauge(
		"iotsec_profile_enforced",
		"Devices currently under deny-by-default profile enforcement.")
	mViolations = telemetry.NewCounter(
		"iotsec_profile_violations_total",
		"Distinct profile violations reported.")
	mRogues = telemetry.NewCounter(
		"iotsec_profile_rogue_quarantines_total",
		"Rogue (unregistered) senders detected under lockdown.")
)
