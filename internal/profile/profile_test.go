package profile

import (
	"errors"
	"strings"
	"testing"

	"iotsec/internal/packet"
)

func TestProfileValidate(t *testing.T) {
	good := &Profile{
		SKU:     "wemo-plug-fw1",
		Version: 1,
		Services: []Service{
			{Proto: "tcp", Port: 80},
			{Proto: "udp", Port: 53, Initiated: true, Remote: "8.8.8.8"},
			{Proto: "udp", Port: 5683, Initiated: true, Remote: "any"},
		},
		MaxRate: 120,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []*Profile{
		nil,
		{SKU: "  "},
		{SKU: "x", Version: -1},
		{SKU: "x", Services: []Service{{Proto: "icmp", Port: 1}}},
		{SKU: "x", Services: []Service{{Proto: "tcp", Port: 0}}},
		{SKU: "x", Services: []Service{{Proto: "tcp", Port: 80, Remote: "not-an-ip"}}},
	}
	for i, p := range cases {
		if err := p.Validate(); !errors.Is(err, ErrInvalidProfile) {
			t.Errorf("case %d: Validate() = %v, want ErrInvalidProfile", i, err)
		}
	}
}

func TestProfileMergeGeneralizesAndUnions(t *testing.T) {
	a := &Profile{SKU: "cam-fw2", Version: 1, Devices: 1, MaxRate: 50,
		Services: []Service{
			{Proto: "tcp", Port: 80},
			{Proto: "udp", Port: 123, Initiated: true, Remote: "10.0.0.5"},
		}}
	b := &Profile{SKU: "cam-fw2", Version: 1, Devices: 1, MaxRate: 80,
		Services: []Service{
			{Proto: "udp", Port: 123, Initiated: true, Remote: "10.0.0.9"},
			{Proto: "udp", Port: 5683},
		}}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Services) != 3 {
		t.Fatalf("merged services = %v, want 3 entries", a.Services)
	}
	// Conflicting remotes for one service key generalize to "any".
	var ntp *Service
	for i := range a.Services {
		if a.Services[i].Port == 123 {
			ntp = &a.Services[i]
		}
	}
	if ntp == nil || !ntp.remoteAny() {
		t.Errorf("conflicting remotes did not generalize: %+v", a.Services)
	}
	if a.MaxRate != 80 {
		t.Errorf("MaxRate = %v, want max(50,80)", a.MaxRate)
	}
	if a.Devices != 2 {
		t.Errorf("Devices = %d, want 2", a.Devices)
	}
	// Cross-SKU merges are refused.
	if err := a.Merge(&Profile{SKU: "other"}); !errors.Is(err, ErrInvalidProfile) {
		t.Errorf("cross-SKU merge: %v, want ErrInvalidProfile", err)
	}
}

func TestProfileAllows(t *testing.T) {
	cloud := packet.MustParseIPv4("192.0.2.10")
	other := packet.MustParseIPv4("192.0.2.99")
	p := &Profile{SKU: "s", Version: 1, Services: []Service{
		{Proto: "tcp", Port: 80},                                            // served
		{Proto: "udp", Port: 443, Initiated: true, Remote: cloud.String()},  // pinned
		{Proto: "udp", Port: 53, Initiated: true},                           // any remote
	}}
	tests := []struct {
		proto            string
		srcPort, dstPort uint16
		dst              packet.IPv4Address
		want             bool
	}{
		{"tcp", 80, 55000, other, true},   // reply from the served port
		{"tcp", 8080, 55000, other, false},
		{"udp", 40000, 443, cloud, true},  // pinned cloud check-in
		{"udp", 40000, 443, other, false}, // same port, wrong endpoint
		{"udp", 40000, 53, other, true},   // unpinned DNS
		{"udp", 40000, 5683, other, false},
	}
	for i, tt := range tests {
		if got := p.Allows(tt.proto, tt.srcPort, tt.dstPort, tt.dst); got != tt.want {
			t.Errorf("case %d: Allows(%s,%d,%d,%s) = %v, want %v",
				i, tt.proto, tt.srcPort, tt.dstPort, tt.dst, got, tt.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Profile{SKU: "therm-fw3", Version: 2, Devices: 3, MaxRate: 60,
		Services: []Service{
			{Proto: "udp", Port: 123, Initiated: true, Remote: "10.0.0.5"},
			{Proto: "tcp", Port: 80},
		}}
	enc, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEncoded(enc) {
		t.Fatalf("IsEncoded(%q) = false", enc)
	}
	if IsEncoded(`block tcp any any -> any 80 (msg:"x"; content:"y"; sid:1;)`) {
		t.Fatal("ids-dialect rule misdetected as profile")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.SKU != p.SKU || got.Version != p.Version || got.MaxRate != p.MaxRate || got.Devices != p.Devices {
		t.Fatalf("round trip lost fields: %+v vs %+v", got, p)
	}
	if len(got.Services) != 2 {
		t.Fatalf("round trip services = %+v", got.Services)
	}
	// Decoded services come back normalized (sorted by key).
	if !got.Services[0].Initiated && got.Services[0].Port != 123 {
		t.Errorf("services not normalized: %+v", got.Services)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, rule := range []string{
		"",
		"profile-v1 {not json",
		EncodedPrefix + `{"sku":"","version":1}`,
		`alert udp any any -> any 53 (msg:"m"; sid:2;)`,
	} {
		if _, err := Decode(rule); err == nil {
			t.Errorf("Decode(%q) accepted", rule)
		}
	}
}

func TestValidateEncodedPinsSKU(t *testing.T) {
	enc, err := Encode(&Profile{SKU: "cam-fw1", Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEncoded("cam-fw1", enc); err != nil {
		t.Fatalf("matching SKU rejected: %v", err)
	}
	err = ValidateEncoded("plug-fw9", enc)
	if err == nil || !strings.Contains(err.Error(), "published under") {
		t.Fatalf("cross-SKU publish accepted: %v", err)
	}
}
