package core

import (
	"log"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/netsim"
	"iotsec/internal/openflow"
)

// SouthboundOptions configure AttachSouthbound.
type SouthboundOptions struct {
	// Addr is the listen address for the southbound endpoint (default
	// "127.0.0.1:0" — an ephemeral local port).
	Addr string
	// HeartbeatInterval is the controller→switch ECHO probe period
	// (default openflow.DefaultHeartbeatInterval; < 0 disables).
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many unanswered probes reap a session
	// (default openflow.DefaultHeartbeatMisses).
	HeartbeatMisses int
	// Agent tunes the switch-side supervised channel (fail mode,
	// backoff schedule, degradation buffer).
	Agent netsim.AgentOptions
	// Logger receives endpoint diagnostics (nil discards).
	Logger *log.Logger
}

// Southbound bundles the live southbound channel AttachSouthbound
// assembled: the steering application (controller side) and the
// supervised switch agent riding the wire.
type Southbound struct {
	Steering *controller.Steering
	Agent    *netsim.SwitchAgent
	// Addr is the bound controller address agents dial.
	Addr string
}

// Close tears the channel down: agent first (so its disconnect is a
// deliberate stop, not an outage), then the endpoint.
func (s *Southbound) Close() {
	if s.Agent != nil {
		s.Agent.Stop()
		s.Agent.Wait()
	}
	if s.Steering != nil {
		_ = s.Steering.Close()
	}
}

// AttachSouthbound stands up the real southbound control channel for
// the platform's uplink switch: a Steering application listening on
// opts.Addr, heartbeat-probed sessions, and a supervised SwitchAgent
// that reconnects with jittered backoff and degrades per
// opts.Agent.FailMode during outages. The steering app is attached via
// UseSteering, so posture isolations flow to the wire as quarantine
// FLOW_MODs from then on.
func (p *Platform) AttachSouthbound(opts SouthboundOptions) (*Southbound, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s := controller.NewSteering(opts.Logger)
	interval := opts.HeartbeatInterval
	if interval == 0 {
		interval = openflow.DefaultHeartbeatInterval
	}
	misses := opts.HeartbeatMisses
	if misses == 0 {
		misses = openflow.DefaultHeartbeatMisses
	}
	s.SetHeartbeat(interval, misses)
	addr, err := s.Listen(opts.Addr)
	if err != nil {
		return nil, err
	}
	agent := netsim.SuperviseAgent(p.Switch, addr, opts.Agent)
	p.UseSteering(s)
	return &Southbound{Steering: s, Agent: agent, Addr: addr}, nil
}
