package packet

import "errors"

// ErrBufferTooLong guards against runaway serialization.
var ErrBufferTooLong = errors.New("packet: serialize buffer exceeds maximum packet size")

// MaxPacketSize bounds a single serialized packet (jumbo-frame scale).
const MaxPacketSize = 64 * 1024

// SerializeBuffer accumulates packet bytes with cheap prepends, so
// layers can be written innermost-first while each outer layer sees its
// full payload. The zero value is ready to use.
type SerializeBuffer struct {
	buf   []byte
	start int // index of first valid byte in buf
}

// NewSerializeBuffer returns a buffer with headroom for typical
// Ethernet/IPv4/TCP stacking.
func NewSerializeBuffer() *SerializeBuffer {
	const headroom = 128
	return &SerializeBuffer{buf: make([]byte, headroom, headroom+512), start: headroom}
}

// Bytes returns the current packet bytes. The slice is invalidated by
// the next Prepend/Append/Clear.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len reports the current number of valid bytes.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// Clear resets the buffer to empty, retaining capacity.
func (b *SerializeBuffer) Clear() {
	const headroom = 128
	if cap(b.buf) < headroom {
		b.buf = make([]byte, headroom, headroom+512)
	}
	b.buf = b.buf[:headroom]
	b.start = headroom
}

// Prepend makes room for n bytes at the front and returns the slice to
// fill in. Contents of the returned slice are zeroed.
func (b *SerializeBuffer) Prepend(n int) ([]byte, error) {
	if b.Len()+n > MaxPacketSize {
		return nil, ErrBufferTooLong
	}
	if b.start < n {
		// Grow at the front: reallocate with fresh headroom.
		grow := n - b.start + 128
		nb := make([]byte, len(b.buf)+grow)
		copy(nb[grow:], b.buf)
		b.buf = nb
		b.start += grow
	}
	b.start -= n
	s := b.buf[b.start : b.start+n]
	for i := range s {
		s[i] = 0
	}
	return s, nil
}

// Append makes room for n bytes at the back and returns the slice to
// fill in. Contents of the returned slice are zeroed.
func (b *SerializeBuffer) Append(n int) ([]byte, error) {
	if b.Len()+n > MaxPacketSize {
		return nil, ErrBufferTooLong
	}
	old := len(b.buf)
	if cap(b.buf) >= old+n {
		b.buf = b.buf[:old+n]
	} else {
		nb := make([]byte, old+n, (old+n)*2)
		copy(nb, b.buf)
		b.buf = nb
	}
	s := b.buf[old:]
	for i := range s {
		s[i] = 0
	}
	return s, nil
}

// PushBytes appends the given bytes verbatim.
func (b *SerializeBuffer) PushBytes(p []byte) error {
	s, err := b.Append(len(p))
	if err != nil {
		return err
	}
	copy(s, p)
	return nil
}

// SerializeLayers clears b and serializes the given layers so that each
// earlier layer wraps the later ones: SerializeLayers(b, eth, ip, tcp,
// payload) produces eth(ip(tcp(payload))).
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}
