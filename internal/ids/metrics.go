package ids

import "iotsec/internal/telemetry"

// Detection telemetry: signature-engine scan/match/block counters and
// anomaly triggers labeled by kind. The per-kind children are resolved
// through the vec's lock-free read path, which is a pointer load plus
// one map lookup — acceptable on the anomaly path, which already
// holds the profile mutex and formats detail strings.
var (
	mPacketsScanned = telemetry.NewCounter(
		"iotsec_ids_packets_scanned_total",
		"Packets evaluated by signature engines.")
	mRuleMatches = telemetry.NewCounter(
		"iotsec_ids_rule_matches_total",
		"Signature rule matches (alerts raised).")
	mBlocks = telemetry.NewCounter(
		"iotsec_ids_blocks_total",
		"Packets blocked by block-action rules.")
	mAnomalies = telemetry.NewCounterVec(
		"iotsec_ids_anomalies_total",
		"Behavioral anomalies detected, by kind.", "kind")
)
