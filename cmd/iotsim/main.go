// Command iotsim regenerates every table and figure of the paper plus
// the design-choice ablations, printing paper-style rows.
//
// Usage:
//
//	iotsim            # run everything
//	iotsim -exp t1    # one experiment: t1 t2 f1 f2 f3 f4 f5 a1 a2 a3 a4 a5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iotsec/internal/experiment"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (t1,t2,f1..f5,a1..a6 or all)")
	seed := flag.Int64("seed", 1, "seed for synthesized corpora")
	flag.Parse()

	runners := []struct {
		id  string
		run func() (*experiment.Table, error)
	}{
		{"t1", experiment.RunTable1},
		{"t2", func() (*experiment.Table, error) { return experiment.RunTable2(*seed), nil }},
		{"f1", experiment.RunFigure1},
		{"f2", experiment.RunFigure2},
		{"f3", experiment.RunFigure3},
		{"f4", experiment.RunFigure4},
		{"f5", experiment.RunFigure5},
		{"a1", func() (*experiment.Table, error) { return experiment.RunAblationStatePruning(), nil }},
		{"a2", func() (*experiment.Table, error) { return experiment.RunAblationHierarchy(2*time.Millisecond, *seed), nil }},
		{"a3", experiment.RunAblationMicroMbox},
		{"a4", func() (*experiment.Table, error) { return experiment.RunAblationFuzzCoverage(*seed), nil }},
		{"a5", func() (*experiment.Table, error) { return experiment.RunAblationReputation(*seed), nil }},
		{"a6", func() (*experiment.Table, error) { return experiment.RunAblationConsistency(*seed), nil }},
	}

	want := strings.ToLower(*exp)
	ran := 0
	for _, r := range runners {
		if want != "all" && want != r.id {
			continue
		}
		start := time.Now()
		tbl, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		tbl.Print(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n", strings.ToUpper(r.id), time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "iotsim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
