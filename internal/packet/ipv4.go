package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv4Address is a 32-bit IPv4 address.
type IPv4Address [4]byte

// ParseIPv4 parses dotted-quad notation; ok is false on malformed input.
func ParseIPv4(s string) (addr IPv4Address, ok bool) {
	var octet, idx, digits int
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			octet = octet*10 + int(c-'0')
			digits++
			if octet > 255 || digits > 3 {
				return IPv4Address{}, false
			}
		case c == '.':
			if digits == 0 || idx == 3 {
				return IPv4Address{}, false
			}
			addr[idx] = byte(octet)
			idx++
			octet, digits = 0, 0
		default:
			return IPv4Address{}, false
		}
	}
	if idx != 3 || digits == 0 {
		return IPv4Address{}, false
	}
	addr[3] = byte(octet)
	return addr, true
}

// MustParseIPv4 is ParseIPv4 that panics on malformed input; for
// constants in tests and examples.
func MustParseIPv4(s string) IPv4Address {
	a, ok := ParseIPv4(s)
	if !ok {
		panic("packet: bad IPv4 literal " + s)
	}
	return a
}

// String renders dotted-quad notation.
func (a IPv4Address) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsZero reports whether the address is 0.0.0.0.
func (a IPv4Address) IsZero() bool { return a == IPv4Address{} }

// IPProtocol identifies the transport protocol in an IPv4 header.
type IPProtocol uint8

// IP protocol numbers the library understands.
const (
	IPProtocolICMP IPProtocol = 1
	IPProtocolTCP  IPProtocol = 6
	IPProtocolUDP  IPProtocol = 17
)

// String names well-known protocols.
func (p IPProtocol) String() string {
	switch p {
	case IPProtocolICMP:
		return "ICMP"
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	default:
		return fmt.Sprintf("IPProtocol(%d)", uint8(p))
	}
}

const ipv4MinHeaderLen = 20

// IPv4 is an IPv4 header (options unsupported on serialize, skipped on
// decode).
type IPv4 struct {
	base
	TTL      uint8
	Protocol IPProtocol
	SrcIP    IPv4Address
	DstIP    IPv4Address
	// Length is the total length field (header+payload); filled on
	// decode and computed on serialize.
	Length uint16
	// Checksum is verified on decode and computed on serialize.
	Checksum uint16
	// ID is the identification field (diagnostics only).
	ID uint16
}

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4MinHeaderLen {
		return fmt.Errorf("ipv4 header: %w (%d bytes)", ErrTruncated, len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("ipv4 header: bad version %d", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4MinHeaderLen || len(data) < ihl {
		return fmt.Errorf("ipv4 header: bad IHL %d for %d bytes", ihl, len(data))
	}
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	end := int(ip.Length)
	if end < ihl || end > len(data) {
		end = len(data)
	}
	ip.contents = data[:ihl]
	ip.payload = data[ihl:end]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	default:
		return LayerTypePayload
	}
}

// SerializeTo implements SerializableLayer. It writes a 20-byte header
// with computed total length and checksum; TTL defaults to 64 when
// unset.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hdr, err := b.Prepend(ipv4MinHeaderLen)
	if err != nil {
		return err
	}
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	hdr[0] = 0x45 // version 4, IHL 5
	total := uint16(ipv4MinHeaderLen + payloadLen)
	binary.BigEndian.PutUint16(hdr[2:4], total)
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	hdr[8] = ttl
	hdr[9] = uint8(ip.Protocol)
	copy(hdr[12:16], ip.SrcIP[:])
	copy(hdr[16:20], ip.DstIP[:])
	cs := internetChecksum(hdr, 0)
	binary.BigEndian.PutUint16(hdr[10:12], cs)
	ip.Length = total
	ip.Checksum = cs
	return nil
}

// VerifyChecksum recomputes the header checksum over the decoded
// contents and reports whether it matches.
func (ip *IPv4) VerifyChecksum() bool {
	if len(ip.contents) < ipv4MinHeaderLen {
		return false
	}
	return internetChecksum(ip.contents, 0) == 0
}

// String summarizes the header.
func (ip *IPv4) String() string {
	return fmt.Sprintf("IPv4 %s > %s %s ttl=%d len=%d", ip.SrcIP, ip.DstIP, ip.Protocol, ip.TTL, ip.Length)
}
