package sigrepo

import (
	"math"
	"sync"
)

// ReputationSystem tracks contributor trust from the community's
// verdicts on their submissions — the paper's borrowed
// reputation/voting mechanism (WiFi-Reports, Credence) against noisy
// or adversarial crowdsourcing.
type ReputationSystem struct {
	mu    sync.Mutex
	score map[string]float64

	// InitialScore is a new contributor's trust (default 0.3 — some
	// benefit of the doubt, not full trust).
	InitialScore float64
	// Gain/Loss shape the update per confirmed/refuted submission.
	Gain, Loss float64
}

// NewReputationSystem builds the system with default parameters.
func NewReputationSystem() *ReputationSystem {
	return &ReputationSystem{
		score:        make(map[string]float64),
		InitialScore: 0.3,
		Gain:         0.1,
		Loss:         0.25,
	}
}

// Score returns a contributor's current trust in [0,1].
func (r *ReputationSystem) Score(contributor string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scoreLocked(contributor)
}

func (r *ReputationSystem) scoreLocked(contributor string) float64 {
	s, ok := r.score[contributor]
	if !ok {
		return r.InitialScore
	}
	return s
}

// RecordOutcome updates a contributor's trust after the community
// settles one of their submissions: confirmation earns trust slowly,
// refutation burns it quickly (asymmetry makes poisoning expensive).
func (r *ReputationSystem) RecordOutcome(contributor string, confirmed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.scoreLocked(contributor)
	if confirmed {
		s += r.Gain * (1 - s)
	} else {
		s -= r.Loss * s
		s -= 0.05 // flat penalty so low scores still hurt
	}
	r.score[contributor] = math.Max(0, math.Min(1, s))
}

// VoteWeight converts trust into voting power: distrusted
// contributors barely move scores.
func (r *ReputationSystem) VoteWeight(contributor string) float64 {
	s := r.Score(contributor)
	// Sub-linear so a few high-reputation accounts cannot dictate
	// outcomes alone, with a floor of 0.05 to keep newcomers audible.
	return math.Max(0.05, math.Sqrt(s))
}
