package device

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"iotsec/internal/envsim"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// EventKind classifies device events the security plane consumes.
type EventKind string

// Event kinds.
const (
	EventAuthFailure    EventKind = "auth-failure"
	EventAuthSuccess    EventKind = "auth-success"
	EventBackdoorAccess EventKind = "backdoor-access"
	EventCommand        EventKind = "command"
	EventStateChange    EventKind = "state-change"
	EventSensor         EventKind = "sensor"
)

// Event is one security-relevant occurrence on a device.
type Event struct {
	Device string
	SKU    string
	Kind   EventKind
	Detail string
	When   time.Time
}

// EventSink receives device events (the context monitor registers
// one). Must not block.
type EventSink func(Event)

// Handler executes one management command against the device. The
// request has already passed (or legitimately bypassed) auth.
type Handler func(d *Device, req Request) Response

// Device is the common chassis all emulated devices share: a network
// stack, a management service with (optionally flawed) authentication,
// a state map, environment coupling and event emission. Concrete
// device types register command handlers and environment behavior on
// top.
type Device struct {
	Name    string
	Profile Profile

	stack *netsim.Stack
	env   *envsim.Environment

	mu         sync.RWMutex
	state      map[string]string
	handlers   map[string]Handler
	publicCmds map[string]bool   // commands served without auth
	creds      map[string]string // user → pass; empty with open access
	sink       EventSink
	tick       func(envsim.Snapshot)
	// failedLogins counts consecutive auth failures per source (for
	// brute-force visibility).
	failedLogins map[packet.IPv4Address]int
}

// New creates the device chassis and its network stack.
func New(name string, profile Profile, mac packet.MACAddress, ip packet.IPv4Address) *Device {
	d := &Device{
		Name:         name,
		Profile:      profile,
		stack:        netsim.NewStack(name, mac, ip),
		state:        make(map[string]string),
		handlers:     make(map[string]Handler),
		publicCmds:   make(map[string]bool),
		creds:        make(map[string]string),
		failedLogins: make(map[packet.IPv4Address]int),
	}
	// Seed credentials from the vulnerability profile.
	if detail := profile.VulnDetail(VulnDefaultCredentials); detail != "" {
		user, pass, _ := strings.Cut(detail, ":")
		d.creds[user] = pass
	}
	if detail := profile.VulnDetail(VulnWeakPassword); detail != "" {
		user, pass, _ := strings.Cut(detail, ":")
		d.creds[user] = pass
	}
	d.Handle("STATUS", func(d *Device, _ Request) Response {
		return Response{OK: true, Data: d.StateString()}
	})
	return d
}

// Stack exposes the device's network stack.
func (d *Device) Stack() *netsim.Stack { return d.stack }

// IP returns the device's address.
func (d *Device) IP() packet.IPv4Address { return d.stack.IP() }

// MAC returns the device's hardware address.
func (d *Device) MAC() packet.MACAddress { return d.stack.MAC() }

// Attach joins the fabric and starts the management service.
func (d *Device) Attach(n *netsim.Network) (*netsim.Port, error) {
	p := d.stack.Attach(n)
	if err := d.stack.Listen(MgmtPort, d.serveStream); err != nil {
		return nil, err
	}
	return p, nil
}

// BindEnvironment couples the device to the physical world; devices
// with per-tick behavior also get stepped by the environment.
func (d *Device) BindEnvironment(env *envsim.Environment) {
	d.mu.Lock()
	d.env = env
	tick := d.tick
	d.mu.Unlock()
	if tick != nil {
		env.AddObserver(func(s envsim.Snapshot, _ map[string]float64) { tick(s) })
	}
}

// Env returns the bound environment (nil if none).
func (d *Device) Env() *envsim.Environment {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.env
}

// OnTick registers per-step environment behavior; call before
// BindEnvironment.
func (d *Device) OnTick(fn func(envsim.Snapshot)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick = fn
}

// SetEventSink wires event emission.
func (d *Device) SetEventSink(s EventSink) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sink = s
}

// Emit publishes an event.
func (d *Device) Emit(kind EventKind, detail string) {
	d.mu.RLock()
	sink := d.sink
	d.mu.RUnlock()
	if sink != nil {
		sink(Event{Device: d.Name, SKU: d.Profile.SKU, Kind: kind, Detail: detail, When: time.Now()})
	}
}

// Handle registers a command handler.
func (d *Device) Handle(cmd string, h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handlers[strings.ToUpper(cmd)] = h
}

// HandlePublic registers a handler served without authentication
// (models endpoints real firmware leaves open).
func (d *Device) HandlePublic(cmd string, h Handler) {
	d.mu.Lock()
	d.publicCmds[strings.ToUpper(cmd)] = true
	d.mu.Unlock()
	d.Handle(cmd, h)
}

// Get reads a state field.
func (d *Device) Get(key string) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.state[key]
}

// Set writes a state field, emitting a state-change event when the
// value changes.
func (d *Device) Set(key, value string) {
	d.mu.Lock()
	old := d.state[key]
	d.state[key] = value
	d.mu.Unlock()
	if old != value {
		d.Emit(EventStateChange, key+"="+value)
	}
}

// StateString renders the state map deterministically.
func (d *Device) StateString() string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	keys := make([]string, 0, len(d.state))
	for k := range d.state {
		keys = append(keys, k)
	}
	// Small maps: insertion sort keeps this dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + d.state[k]
	}
	return strings.Join(parts, ",")
}

// serveStream handles one management connection.
func (d *Device) serveStream(st *netsim.Stream) {
	st.OnMessage(func(msg []byte) {
		resp := d.dispatch(st.RemoteIP(), msg)
		_ = st.Send(resp.Encode())
	})
}

// dispatch authenticates and executes one request.
func (d *Device) dispatch(src packet.IPv4Address, raw []byte) Response {
	req, err := ParseRequest(raw)
	if err != nil {
		return Response{OK: false, Data: "bad request"}
	}

	// Backdoor: a magic token as the first argument bypasses auth
	// entirely (and betrays itself only as an event, as on real
	// devices where only the vendor knows).
	if token := d.Profile.VulnDetail(VulnBackdoor); token != "" &&
		len(req.Args) > 0 && req.Args[len(req.Args)-1] == token {
		req.Args = req.Args[:len(req.Args)-1]
		d.Emit(EventBackdoorAccess, req.Cmd)
		return d.execute(req)
	}

	d.mu.RLock()
	public := d.publicCmds[req.Cmd]
	d.mu.RUnlock()
	if public {
		return d.execute(req)
	}

	if !d.authorize(src, req) {
		d.Emit(EventAuthFailure, fmt.Sprintf("src=%s cmd=%s user=%s", src, req.Cmd, req.User))
		return Response{OK: false, Data: "unauthorized"}
	}
	return d.execute(req)
}

// authorize applies the device's (possibly broken) authentication.
func (d *Device) authorize(src packet.IPv4Address, req Request) bool {
	if d.Profile.HasVuln(VulnOpenAccess) {
		return true // no credentials at all
	}
	d.mu.RLock()
	pass, userKnown := d.creds[req.User]
	d.mu.RUnlock()
	if userKnown && pass == req.Pass {
		d.mu.Lock()
		d.failedLogins[src] = 0
		d.mu.Unlock()
		d.Emit(EventAuthSuccess, "user="+req.User)
		return true
	}
	d.mu.Lock()
	d.failedLogins[src]++
	d.mu.Unlock()
	return false
}

// FailedLogins reports consecutive auth failures from one source.
func (d *Device) FailedLogins(src packet.IPv4Address) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.failedLogins[src]
}

// execute runs the handler for an authorized request.
func (d *Device) execute(req Request) Response {
	d.mu.RLock()
	h := d.handlers[req.Cmd]
	d.mu.RUnlock()
	if h == nil {
		return Response{OK: false, Data: "unknown command " + req.Cmd}
	}
	d.Emit(EventCommand, req.Cmd)
	return h(d, req)
}

// Stop shuts the device down.
func (d *Device) Stop() { d.stack.Stop() }
