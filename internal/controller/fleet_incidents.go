package controller

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"iotsec/internal/forensics"
	"iotsec/internal/journal"
)

// IncidentSource is what a shard exposes to the fleet incident plane:
// its incident digests (pushed alongside rollups) and, on demand, the
// full per-shard event set for one trace (pulled during cross-shard
// assembly). forensics.Capturer implements it.
type IncidentSource interface {
	Digests() []forensics.Digest
	TraceEvents(traceID uint64) []journal.Event
}

// fleetIncidents is the aggregator's incident-plane state, attached
// lazily so aggregators that never see incidents pay nothing.
type fleetIncidents struct {
	mu      sync.Mutex
	digests map[string][]forensics.Digest // by source: last pushed set
	sources map[string]IncidentSource     // by source: live pull handle
}

func (f *FleetAggregator) incidents() *fleetIncidents {
	f.incOnce.Do(func() {
		f.inc = &fleetIncidents{
			digests: make(map[string][]forensics.Digest),
			sources: make(map[string]IncidentSource),
		}
	})
	return f.inc
}

// AttachIncidentSource registers a shard's live incident feed for
// pull-based timeline assembly (and digest listing when the shard
// has not pushed yet).
func (f *FleetAggregator) AttachIncidentSource(source string, src IncidentSource) {
	in := f.incidents()
	in.mu.Lock()
	in.sources[source] = src
	in.mu.Unlock()
}

// ReportIncidents replaces one shard's pushed digest set — the
// incident side-channel of the shard rollup push.
func (f *FleetAggregator) ReportIncidents(source string, digests []forensics.Digest) {
	in := f.incidents()
	in.mu.Lock()
	in.digests[source] = append([]forensics.Digest(nil), digests...)
	in.mu.Unlock()
}

// FleetIncidents merges every shard's digests into the fleet view,
// newest-opened first. A shard with a live source is read live;
// otherwise its last pushed set is used. The same incident captured
// by two shards (one chain, two journals) surfaces once per shard —
// the shard column is part of the story.
func (f *FleetAggregator) FleetIncidents() []forensics.Digest {
	in := f.incidents()
	in.mu.Lock()
	merged := make(map[string][]forensics.Digest, len(in.digests)+len(in.sources))
	for src, ds := range in.digests {
		merged[src] = ds
	}
	live := make(map[string]IncidentSource, len(in.sources))
	for src, s := range in.sources {
		live[src] = s
	}
	in.mu.Unlock()
	for src, s := range live {
		merged[src] = s.Digests()
	}
	var out []forensics.Digest
	for src, ds := range merged {
		for _, d := range ds {
			if d.Shard == "" {
				d.Shard = src
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].OpenedAt.Equal(out[j].OpenedAt) {
			return out[i].OpenedAt.After(out[j].OpenedAt)
		}
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// AssembleTimeline pulls every attached shard's events for one trace
// and merges them into a single causal fleet timeline — the
// cross-shard forensic story (a chain crossing a partition re-homing
// spans the dead shard's capture and the survivor's journal; here it
// becomes one record).
func (f *FleetAggregator) AssembleTimeline(traceID uint64) *forensics.FleetTimeline {
	in := f.incidents()
	in.mu.Lock()
	live := make(map[string]IncidentSource, len(in.sources))
	for src, s := range in.sources {
		live[src] = s
	}
	in.mu.Unlock()
	byShard := make(map[string][]journal.Event, len(live))
	for src, s := range live {
		if events := s.TraceEvents(traceID); len(events) > 0 {
			byShard[src] = events
		}
	}
	return forensics.AssembleFleetTimeline(traceID, byShard)
}

// FleetIncidentsJSON is the /debug/fleet/incidents list shape.
type FleetIncidentsJSON struct {
	TakenAt   time.Time          `json:"taken_at"`
	Total     int                `json:"total"`
	Incidents []forensics.Digest `json:"incidents"`
}

// IncidentsHandler serves the fleet incident index (mount at
// /debug/fleet/incidents): digests merged across shards, or with
// trace=<id> the assembled cross-shard timeline.
func (f *FleetAggregator) IncidentsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if s := req.URL.Query().Get("trace"); s != "" {
			traceID, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad trace parameter: "+s, http.StatusBadRequest)
				return
			}
			_ = enc.Encode(f.AssembleTimeline(traceID))
			return
		}
		ds := f.FleetIncidents()
		_ = enc.Encode(&FleetIncidentsJSON{TakenAt: time.Now(), Total: len(ds), Incidents: ds})
	})
}
