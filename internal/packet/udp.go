package packet

import (
	"encoding/binary"
	"fmt"
)

const udpHeaderLen = 8

// UDP is a UDP datagram header.
type UDP struct {
	base
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	srcIP, dstIP IPv4Address
	hasNetwork   bool
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// SetNetworkForChecksum supplies the enclosing IPv4 addresses so
// SerializeTo can compute the pseudo-header checksum.
func (u *UDP) SetNetworkForChecksum(src, dst IPv4Address) {
	u.srcIP, u.dstIP = src, dst
	u.hasNetwork = true
}

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return fmt.Errorf("udp header: %w (%d bytes)", ErrTruncated, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := int(u.Length)
	if end < udpHeaderLen || end > len(data) {
		end = len(data)
	}
	u.contents = data[:udpHeaderLen]
	u.payload = data[udpHeaderLen:end]
	return nil
}

// NextLayerType implements DecodingLayer. DNS is recognized by the
// well-known port on either side.
func (u *UDP) NextLayerType() LayerType {
	if u.SrcPort == 53 || u.DstPort == 53 {
		return LayerTypeDNS
	}
	return LayerTypePayload
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hdr, err := b.Prepend(udpHeaderLen)
	if err != nil {
		return err
	}
	dgramLen := uint16(udpHeaderLen + payloadLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], dgramLen)
	u.Length = dgramLen
	if u.hasNetwork {
		sum := pseudoHeaderSum(u.srcIP, u.dstIP, uint8(IPProtocolUDP), dgramLen)
		cs := internetChecksum(b.Bytes()[:dgramLen], sum)
		if cs == 0 {
			cs = 0xffff // RFC 768: transmitted-as-zero means "no checksum"
		}
		binary.BigEndian.PutUint16(hdr[6:8], cs)
		u.Checksum = cs
	}
	return nil
}

// String summarizes the datagram header.
func (u *UDP) String() string {
	return fmt.Sprintf("UDP %d > %d len=%d", u.SrcPort, u.DstPort, u.Length)
}
