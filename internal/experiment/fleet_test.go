package experiment

import (
	"math"
	"testing"
	"time"
)

// TestRunFleetSmoke drives a small fleet through the full harness:
// sharded hierarchy, rollup plane, merged fleet view.
func TestRunFleetSmoke(t *testing.T) {
	tbl, results, err := RunFleet(FleetOptions{
		Sizes:    []int{300},
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || len(results) != 1 {
		t.Fatalf("rows=%d results=%d", len(tbl.Rows), len(results))
	}
	r := results[0]
	if r.Events == 0 || r.EventsPerSec <= 0 {
		t.Fatalf("no load driven: %+v", r)
	}
	if r.Shards < 2 {
		t.Fatalf("fleet did not shard: %d", r.Shards)
	}
	// The merged rollup view must reproduce the pooled direct
	// measurement: identical observations, so identical p99.
	if r.MergedCount != r.DirectCount {
		t.Fatalf("merged count %d != direct %d", r.MergedCount, r.DirectCount)
	}
	if math.Abs(r.P99-r.DirectP99) > 1e-12 {
		t.Fatalf("merged p99 %v != direct p99 %v", r.P99, r.DirectP99)
	}
	if r.View.Fleet.Shards != r.Shards || r.View.Fleet.StaleShards != 0 {
		t.Fatalf("fleet view inconsistent: %+v", r.View.Fleet)
	}
	if r.View.Fleet.SKUDevices["cam-v1"] != 75 {
		t.Fatalf("SKU rollup: %+v", r.View.Fleet.SKUDevices)
	}
	if r.Escalated == 0 {
		t.Fatal("escalation path never exercised")
	}
}
