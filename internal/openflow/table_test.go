package openflow

import (
	"math/rand"
	"testing"
	"time"

	"iotsec/internal/packet"
)

func TestFlowTablePriorityOrder(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Insert(FlowEntry{Match: MatchAll(), Priority: 1, Actions: []Action{Output(1)}})
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(80), Priority: 100, Actions: []Action{Output(2)}})
	p := makeTCP(t, 5555, 80)
	e, ok := tbl.Lookup(p, 0, len(p.Data()))
	if !ok {
		t.Fatal("lookup missed")
	}
	if e.Actions[0].Port != 2 {
		t.Errorf("matched port %d, want high-priority rule's port 2", e.Actions[0].Port)
	}
	// Non-port-80 traffic falls to the low-priority rule.
	p2 := makeTCP(t, 5555, 443)
	e, ok = tbl.Lookup(p2, 0, len(p2.Data()))
	if !ok || e.Actions[0].Port != 1 {
		t.Errorf("fallback rule not used: %v %v", e, ok)
	}
}

func TestFlowTableReplaceSameMatchPriority(t *testing.T) {
	tbl := NewFlowTable()
	m := MatchAll().WithTpDst(80)
	tbl.Insert(FlowEntry{Match: m, Priority: 10, Actions: []Action{Output(1)}})
	tbl.Insert(FlowEntry{Match: m, Priority: 10, Actions: []Action{Output(9)}})
	if tbl.Len() != 1 {
		t.Fatalf("table len = %d, want 1 (replace)", tbl.Len())
	}
	p := makeTCP(t, 1, 80)
	e, _ := tbl.Lookup(p, 0, 0)
	if e.Actions[0].Port != 9 {
		t.Errorf("entry not replaced: %v", e)
	}
}

func TestFlowTableMissCount(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(80), Priority: 1})
	p := makeTCP(t, 1, 443)
	if _, ok := tbl.Lookup(p, 0, 0); ok {
		t.Fatal("should miss")
	}
	if tbl.Misses() != 1 {
		t.Errorf("misses = %d", tbl.Misses())
	}
}

func TestFlowTableDeleteSubsumption(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Insert(FlowEntry{Match: MatchAll().WithSrcIP(ipA, 32), Priority: 5})
	tbl.Insert(FlowEntry{Match: MatchAll().WithSrcIP(ipA, 32).WithTpDst(80), Priority: 6})
	tbl.Insert(FlowEntry{Match: MatchAll().WithSrcIP(ipB, 32), Priority: 7})
	// Deleting with the /16 covering ipA removes both ipA entries but
	// not the ipB entry.
	prefix := MatchAll().WithSrcIP(packet16(ipA), 16)
	if n := tbl.Delete(prefix); n != 2 {
		t.Errorf("deleted %d entries, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Errorf("table len = %d, want 1", tbl.Len())
	}
	// Delete-all clears the rest.
	if n := tbl.Delete(MatchAll()); n != 1 {
		t.Errorf("delete-all removed %d, want 1", n)
	}
}

// packet16 zeroes the host bits of a /16 for prefix-delete tests.
func packet16(ip [4]byte) [4]byte { return [4]byte{ip[0], ip[1], 0, 0} }

func TestFlowTableDeleteByCookie(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(1), Priority: 1, Cookie: 42})
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(2), Priority: 1, Cookie: 42})
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(3), Priority: 1, Cookie: 7})
	if n := tbl.DeleteByCookie(42); n != 2 {
		t.Errorf("deleted %d, want 2", n)
	}
	if tbl.Len() != 1 {
		t.Errorf("len = %d, want 1", tbl.Len())
	}
}

func TestFlowTableExpiry(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(1), Priority: 1, HardTimeout: 10 * time.Millisecond})
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(2), Priority: 1, IdleTimeout: 10 * time.Millisecond})
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(3), Priority: 1}) // immortal
	expired := tbl.Expire(time.Now().Add(time.Second))
	if len(expired) != 2 {
		t.Fatalf("expired %d entries, want 2", len(expired))
	}
	if tbl.Len() != 1 {
		t.Errorf("len = %d, want 1", tbl.Len())
	}
	// Idle timeout resets on hit.
	tbl2 := NewFlowTable()
	tbl2.Insert(FlowEntry{Match: MatchAll(), Priority: 1, IdleTimeout: time.Hour})
	p := makeTCP(t, 1, 2)
	tbl2.Lookup(p, 0, 10)
	if got := tbl2.Expire(time.Now().Add(30 * time.Minute)); len(got) != 0 {
		t.Errorf("entry expired despite recent hit: %v", got)
	}
}

func TestFlowTableStatsAccumulate(t *testing.T) {
	tbl := NewFlowTable()
	tbl.Insert(FlowEntry{Match: MatchAll(), Priority: 1})
	p := makeTCP(t, 1, 2)
	tbl.Lookup(p, 0, 100)
	tbl.Lookup(p, 0, 50)
	entries := tbl.Entries()
	pkts, bytes := entries[0].Stats()
	if pkts != 2 || bytes != 150 {
		t.Errorf("stats = %d pkts %d bytes, want 2/150", pkts, bytes)
	}
}

func TestFlowEntryString(t *testing.T) {
	e := FlowEntry{Match: MatchAll(), Priority: 3}
	if got := e.String(); got != "prio=3 any -> drop" {
		t.Errorf("empty-action entry string = %q", got)
	}
	e.Actions = []Action{SetEthDst(macB), Output(4)}
	if got := e.String(); !contains(got, "set_eth_dst") || !contains(got, "output:4") {
		t.Errorf("entry string = %q", got)
	}
}

// TestMatchSubsumptionSoundProperty checks the delete-filter
// semantics: whenever matchSubsumes(filter, sub) holds, every packet
// matched by sub must also be matched by filter. (The converse need
// not hold — subsumption may be conservative — but unsoundness here
// would make FLOW_DELETE remove rules it shouldn't.)
func TestMatchSubsumptionSoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randMatch := func() Match {
		m := MatchAll()
		if rng.Intn(2) == 0 {
			m = m.WithInPort(uint16(rng.Intn(3)))
		}
		if rng.Intn(2) == 0 {
			m = m.WithEthSrc(packet.MACAddress{2, 0, 0, 0, 0, byte(rng.Intn(3))})
		}
		if rng.Intn(2) == 0 {
			bits := uint8([]int{8, 16, 24, 32}[rng.Intn(4)])
			m = m.WithSrcIP(packet.IPv4Address{10, byte(rng.Intn(2)), byte(rng.Intn(2)), byte(rng.Intn(3))}, bits)
		}
		if rng.Intn(2) == 0 {
			m = m.WithProto([]packet.IPProtocol{packet.IPProtocolTCP, packet.IPProtocolUDP}[rng.Intn(2)])
		}
		if rng.Intn(2) == 0 {
			m = m.WithTpDst(uint16(80 + rng.Intn(3)))
		}
		return m
	}
	// A pool of random packets to test against.
	type pktCase struct {
		p      *packet.Packet
		inPort uint16
	}
	var pool []pktCase
	for i := 0; i < 40; i++ {
		srcMAC := packet.MACAddress{2, 0, 0, 0, 0, byte(rng.Intn(3))}
		src := packet.IPv4Address{10, byte(rng.Intn(2)), byte(rng.Intn(2)), byte(rng.Intn(3))}
		dst := packet.IPv4Address{10, 9, 9, 9}
		proto := []packet.IPProtocol{packet.IPProtocolTCP, packet.IPProtocolUDP}[rng.Intn(2)]
		dstPort := uint16(80 + rng.Intn(3))
		b := packet.NewSerializeBuffer()
		var transport packet.SerializableLayer
		if proto == packet.IPProtocolTCP {
			tr := &packet.TCP{SrcPort: 1000, DstPort: dstPort}
			tr.SetNetworkForChecksum(src, dst)
			transport = tr
		} else {
			tr := &packet.UDP{SrcPort: 1000, DstPort: dstPort}
			tr.SetNetworkForChecksum(src, dst)
			transport = tr
		}
		err := packet.SerializeLayers(b,
			&packet.Ethernet{SrcMAC: srcMAC, DstMAC: macB, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: proto},
			transport,
		)
		if err != nil {
			t.Fatal(err)
		}
		raw := make([]byte, b.Len())
		copy(raw, b.Bytes())
		pool = append(pool, pktCase{
			p:      packet.Decode(raw, packet.LayerTypeEthernet),
			inPort: uint16(rng.Intn(3)),
		})
	}

	for trial := 0; trial < 500; trial++ {
		filter, sub := randMatch(), randMatch()
		if !matchSubsumes(filter, sub) {
			continue
		}
		for _, pc := range pool {
			if sub.Matches(pc.p, pc.inPort) && !filter.Matches(pc.p, pc.inPort) {
				t.Fatalf("unsound subsumption:\n filter=%s\n sub=%s\n packet matches sub but not filter", filter, sub)
			}
		}
	}
}
