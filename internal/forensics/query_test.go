package forensics

import (
	"testing"
	"time"

	"iotsec/internal/journal"
)

func digestAt(id string, kind, device string, sev journal.Severity, opened time.Time) Digest {
	return Digest{ID: id, Kind: kind, Device: device, Severity: sev, OpenedAt: opened}
}

// TestQueryFilters: each filter dimension narrows independently.
func TestQueryFilters(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	ds := []Digest{
		digestAt("inc-1", KindAnomaly, "cam", journal.Warn, base),
		digestAt("inc-2", KindProfileViolation, "wemo", journal.Critical, base.Add(time.Minute)),
		digestAt("inc-3", KindAnomaly, "wemo", journal.Info, base.Add(2*time.Minute)),
		digestAt("inc-4", KindFailover, "", journal.Critical, base.Add(3*time.Minute)),
	}
	cases := []struct {
		name string
		q    Query
		want int
	}{
		{"all", Query{}, 4},
		{"kind", Query{Kind: KindAnomaly}, 2},
		{"device", Query{Device: "wemo"}, 2},
		{"severity", Query{MinSeverity: journal.Critical}, 2},
		{"since", Query{Since: base.Add(90 * time.Second)}, 2},
		{"until", Query{Until: base.Add(90 * time.Second)}, 2},
		{"range", Query{Since: base.Add(30 * time.Second), Until: base.Add(150 * time.Second)}, 2},
		{"combined", Query{Device: "wemo", MinSeverity: journal.Critical}, 1},
	}
	for _, tc := range cases {
		if page, total := tc.q.Apply(ds); total != tc.want || len(page) != tc.want {
			t.Errorf("%s: matched %d (page %d), want %d", tc.name, total, len(page), tc.want)
		}
	}
}

// TestQueryPagination: offset/limit page a stable ordering while total
// reports the full match count.
func TestQueryPagination(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	var ds []Digest
	for i := 0; i < 10; i++ {
		ds = append(ds, digestAt(IncidentID(uint64(i+1)), KindAnomaly, "cam", journal.Warn, base.Add(time.Duration(i)*time.Second)))
	}
	page, total := Query{Offset: 3, Limit: 4}.Apply(ds)
	if total != 10 {
		t.Fatalf("total = %d, want 10 regardless of the page", total)
	}
	if len(page) != 4 || page[0].ID != ds[3].ID {
		t.Fatalf("page = %d starting %s, want 4 starting %s", len(page), page[0].ID, ds[3].ID)
	}
	if page, _ := (Query{Offset: 20}).Apply(ds); page != nil {
		t.Fatal("offset past the end must return an empty page")
	}
	if page, _ := (Query{Limit: 0}).Apply(ds); len(page) != 10 {
		t.Fatal("limit 0 means no cap")
	}
}
