package telemetry

import (
	"sort"
	"sync"
)

// TopK is a bounded-cardinality heavy-hitter summary implementing the
// space-saving algorithm (Metwally et al.): it tracks at most K keys
// with guaranteed error bounds instead of one series per key, so
// per-device dimensions (top violators, top event producers) can ride
// a fleet rollup without a label explosion. When a new key arrives at
// capacity, the current minimum-count entry is evicted and the
// newcomer inherits its count as an overestimation bound (Err) —
// guaranteeing any key with true count > min is present, and every
// reported Count overestimates the true count by at most Err.
//
// Offer takes a mutex: TopK sits on shard-local control paths (one
// lock per device event, uncontended across shards), not the per-
// packet data path. The maximum Offer cost is an O(K) min scan on
// eviction; K is small by design (the cardinality budget, default 16).
type TopK struct {
	meta
	k int

	mu      sync.Mutex
	entries map[string]*topkCount
	offers  uint64
}

type topkCount struct {
	count uint64
	err   uint64
}

// DefaultTopKCapacity is the cardinality budget used when a
// non-positive K is requested.
const DefaultTopKCapacity = 16

// NewStandaloneTopK builds an unregistered summary with capacity k
// (for per-shard stats that export via rollups, not scrapes).
func NewStandaloneTopK(k int) *TopK {
	if k <= 0 {
		k = DefaultTopKCapacity
	}
	return &TopK{k: k, entries: make(map[string]*topkCount, k)}
}

// NewTopK registers a TopK on Default.
func NewTopK(name, help string, k int) *TopK {
	return Default.NewTopK(name, help, k)
}

// NewTopK registers a TopK on r. It exposes as a gauge family with a
// "key" label, at most K series.
func (r *Registry) NewTopK(name, help string, k int) *TopK {
	t := NewStandaloneTopK(k)
	t.meta = meta{name, help}
	return r.Register(t).(*TopK)
}

// K reports the capacity.
func (t *TopK) K() int { return t.k }

// Offer records n occurrences of key.
func (t *TopK) Offer(key string, n uint64) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	t.offers += n
	if e, ok := t.entries[key]; ok {
		e.count += n
		t.mu.Unlock()
		return
	}
	if len(t.entries) < t.k {
		t.entries[key] = &topkCount{count: n}
		t.mu.Unlock()
		return
	}
	// Space-saving eviction: replace the minimum, inheriting its count
	// as the newcomer's overestimation bound.
	var minKey string
	var minCount uint64
	first := true
	for k2, e := range t.entries {
		if first || e.count < minCount || (e.count == minCount && k2 < minKey) {
			minKey, minCount, first = k2, e.count, false
		}
	}
	delete(t.entries, minKey)
	t.entries[key] = &topkCount{count: minCount + n, err: minCount}
	t.mu.Unlock()
}

// Inc records one occurrence of key.
func (t *TopK) Inc(key string) { t.Offer(key, 1) }

// Len reports the tracked key count (≤ K).
func (t *TopK) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Offers reports the total weight offered (exact, unlike per-key
// counts at capacity).
func (t *TopK) Offers() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.offers
}

// Decay halves every count and error bound, dropping keys that reach
// zero. Periodic decay ages out former heavy hitters under churn so a
// long-running summary tracks *current* heavy hitters instead of
// all-time ones; the halving preserves relative order.
func (t *TopK) Decay() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, e := range t.entries {
		e.count /= 2
		e.err /= 2
		if e.count == 0 {
			delete(t.entries, k)
		}
	}
}

// Reset forgets everything.
func (t *TopK) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = make(map[string]*topkCount, t.k)
	t.offers = 0
}

// Snapshot exports the summary sorted by descending count (key
// ascending on ties, so output is deterministic).
func (t *TopK) Snapshot() TopKRollup {
	t.mu.Lock()
	out := TopKRollup{K: t.k, Offers: t.offers, Entries: make([]TopKEntry, 0, len(t.entries))}
	for k, e := range t.entries {
		out.Entries = append(out.Entries, TopKEntry{Key: k, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sortTopK(out.Entries)
	return out
}

// MetricKind implements Metric (exposes as a bounded gauge family).
func (t *TopK) MetricKind() Kind { return KindGauge }

// Samples implements Metric: one {key=...} series per tracked entry.
func (t *TopK) Samples() []Sample {
	snap := t.Snapshot()
	out := make([]Sample, 0, len(snap.Entries))
	for _, e := range snap.Entries {
		out = append(out, Sample{
			Labels: Labels{{Key: "key", Value: e.Key}},
			Value:  float64(e.Count),
		})
	}
	return out
}

// TopKEntry is one heavy hitter: Count overestimates the true count
// by at most Err.
type TopKEntry struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// TopKRollup is a mergeable heavy-hitter snapshot.
type TopKRollup struct {
	K       int         `json:"k"`
	Offers  uint64      `json:"offers"`
	Entries []TopKEntry `json:"entries"`
}

// MergeTopK merges space-saving summaries from independent sources
// into one of capacity k: counts (and error bounds) sum per key, then
// the top k by merged count survive. The result keeps the space-saving
// guarantee relative to the union stream: a surviving Count
// overestimates the true total by at most its merged Err.
func MergeTopK(k int, ins ...TopKRollup) TopKRollup {
	if k <= 0 {
		k = DefaultTopKCapacity
	}
	sum := make(map[string]*topkCount)
	out := TopKRollup{K: k}
	for _, in := range ins {
		out.Offers += in.Offers
		for _, e := range in.Entries {
			c := sum[e.Key]
			if c == nil {
				c = &topkCount{}
				sum[e.Key] = c
			}
			c.count += e.Count
			c.err += e.Err
		}
	}
	out.Entries = make([]TopKEntry, 0, len(sum))
	for key, c := range sum {
		out.Entries = append(out.Entries, TopKEntry{Key: key, Count: c.count, Err: c.err})
	}
	sortTopK(out.Entries)
	if len(out.Entries) > k {
		out.Entries = out.Entries[:k]
	}
	return out
}

func sortTopK(es []TopKEntry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Count != es[j].Count {
			return es[i].Count > es[j].Count
		}
		return es[i].Key < es[j].Key
	})
}

var _ Metric = (*TopK)(nil)
