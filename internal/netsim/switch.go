package netsim

import (
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/openflow"
	"iotsec/internal/packet"
)

// MissBehavior selects what an SDN switch does with a frame that
// matches no flow entry.
type MissBehavior int

// Miss behaviors.
const (
	// MissPunt sends the frame to the controller (normal SDN mode).
	MissPunt MissBehavior = iota
	// MissFlood floods the frame (learning-switch bootstrap mode).
	MissFlood
	// MissDrop silently discards the frame (fail-closed).
	MissDrop
)

// PacketInFunc receives punted frames from a Switch; the agent wires
// this to the southbound connection.
type PacketInFunc func(inPort uint16, reason uint8, frame Frame)

// Switch is an OpenFlow-programmable virtual switch node.
type Switch struct {
	name string
	dpid uint64

	table *openflow.FlowTable
	miss  atomic.Int32

	mu       sync.RWMutex
	ports    map[uint16]*Port
	packetIn PacketInFunc

	packetsIn  atomic.Uint64 // frames received
	packetsOut atomic.Uint64 // frames forwarded
}

// NewSwitch creates a switch with the given datapath ID. Ports are
// attached afterwards with AttachPort.
func NewSwitch(name string, dpid uint64) *Switch {
	return &Switch{
		name:  name,
		dpid:  dpid,
		table: openflow.NewFlowTable(),
		ports: make(map[uint16]*Port),
	}
}

// NodeName implements Node.
func (s *Switch) NodeName() string { return s.name }

// DatapathID returns the switch's datapath identifier.
func (s *Switch) DatapathID() uint64 { return s.dpid }

// Table exposes the flow table (the agent programs it via FLOW_MOD).
func (s *Switch) Table() *openflow.FlowTable { return s.table }

// SetMissBehavior configures table-miss handling.
func (s *Switch) SetMissBehavior(m MissBehavior) { s.miss.Store(int32(m)) }

// SetPacketInHandler wires punted frames to the southbound agent.
func (s *Switch) SetPacketInHandler(fn PacketInFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.packetIn = fn
}

// AttachPort creates and registers a new port with the given ID on the
// network fabric.
func (s *Switch) AttachPort(n *Network, id uint16) *Port {
	p := n.NewPort(s, id)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ports[id] = p
	return p
}

// PortIDs lists the attached port numbers.
func (s *Switch) PortIDs() []uint16 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint16, 0, len(s.ports))
	for id := range s.ports {
		ids = append(ids, id)
	}
	return ids
}

// HandleFrame implements Node: classify against the flow table and
// apply the winning entry's actions.
func (s *Switch) HandleFrame(ingress *Port, frame Frame) {
	s.packetsIn.Add(1)
	mSwitchPacketsIn.Inc()
	// Per-port goroutines hit this concurrently: each frame borrows a
	// pooled decoder, and the decoded view dies at the Lookup return.
	dec := packet.GetDecoder()
	decoded := dec.Decode(frame, packet.LayerTypeEthernet)
	entry, ok := s.table.Lookup(decoded, ingress.ID, len(frame))
	packet.PutDecoder(dec)
	if !ok {
		mSwitchTableMiss.Inc()
		switch MissBehavior(s.miss.Load()) {
		case MissFlood:
			s.flood(ingress.ID, frame)
		case MissPunt:
			s.punt(ingress.ID, 0, frame)
		case MissDrop:
		}
		return
	}
	s.ApplyActions(entry.Actions, ingress.ID, frame)
}

// ApplyActions executes an action list on a frame (used for both flow
// entries and PACKET_OUT).
func (s *Switch) ApplyActions(actions []openflow.Action, inPort uint16, frame Frame) {
	for _, a := range actions {
		switch a.Type {
		case openflow.ActionTypeOutput:
			s.output(a.Port, frame)
		case openflow.ActionTypeFlood:
			s.flood(inPort, frame)
		case openflow.ActionTypeController:
			s.punt(inPort, 1, frame)
		case openflow.ActionTypeSetEthDst:
			if len(frame) >= 6 {
				copy(frame[0:6], a.MAC[:])
			}
		case openflow.ActionTypeSetEthSrc:
			if len(frame) >= 12 {
				copy(frame[6:12], a.MAC[:])
			}
		}
	}
}

func (s *Switch) output(portID uint16, frame Frame) {
	s.mu.RLock()
	p := s.ports[portID]
	s.mu.RUnlock()
	if p != nil {
		s.packetsOut.Add(1)
		mSwitchPacketsOut.Inc()
		p.Send(frame)
	}
}

func (s *Switch) flood(except uint16, frame Frame) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, p := range s.ports {
		if id == except {
			continue
		}
		s.packetsOut.Add(1)
		mSwitchPacketsOut.Inc()
		p.Send(frame)
	}
}

func (s *Switch) punt(inPort uint16, reason uint8, frame Frame) {
	s.mu.RLock()
	fn := s.packetIn
	s.mu.RUnlock()
	if fn != nil {
		fn(inPort, reason, frame)
	}
}

// ExpireFlows evicts timed-out entries as of now, returning them so
// the agent can emit FLOW_REMOVED.
func (s *Switch) ExpireFlows(now time.Time) []openflow.FlowEntry {
	return s.table.Expire(now)
}

// Stats reports aggregate counters.
func (s *Switch) Stats() (packetsIn, packetsOut, tableMiss uint64, flows int) {
	return s.packetsIn.Load(), s.packetsOut.Load(), s.table.Misses(), s.table.Len()
}
