package slo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// Objectives is a detect→enforce latency SLO evaluated over sliding
// windows of the tracker's end-to-end histogram.
type Objectives struct {
	// Target is the objective latency at Quantile (e.g. p99 ≤ 250ms).
	Target time.Duration
	// Quantile the objective is stated at (default 0.99). The error
	// budget per window is (1-Quantile)·BurnFactor: the fraction of
	// chains allowed to miss Target (or never complete) before the
	// window counts as burning.
	Quantile float64
	// Window is the evaluation period (default 1m).
	Window time.Duration
	// MinSamples skips windows with too little traffic to judge
	// (default 5 chains; completed + incomplete).
	MinSamples uint64
	// BurnFactor scales the per-window error budget (default 1). >1
	// tolerates transient spikes (slow burn detection); a Google-style
	// fast-burn page would run a second watchdog with BurnFactor 14
	// over a short window.
	BurnFactor float64
}

func (o Objectives) withDefaults() Objectives {
	if o.Quantile <= 0 || o.Quantile >= 1 {
		o.Quantile = 0.99
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.MinSamples == 0 {
		o.MinSamples = 5
	}
	if o.BurnFactor <= 0 {
		o.BurnFactor = 1
	}
	return o
}

// String renders the objective for journal events and CLIs.
func (o Objectives) String() string {
	return fmt.Sprintf("p%g ≤ %s over %s (budget ×%g)",
		o.Quantile*100, o.Target, o.Window, o.BurnFactor)
}

// Source is what a watchdog windows: any producer of a cumulative
// latency histogram plus an incomplete count. Tracker implements it for
// detect→enforce MTTR; HistogramSource adapts any bare histogram (e.g.
// the controller recovery-MTTR histogram) so failover recovery rides
// the same SLO machinery.
type Source interface {
	// Sync is the pre-evaluation barrier: fold any pending observations
	// so the window judges everything that should have resolved by now.
	Sync()
	// Rollup snapshots the cumulative histogram.
	Rollup() telemetry.HistogramRollup
	// Incomplete counts chains that will never complete (judged as +Inf
	// observations). Sources without the concept return 0.
	Incomplete() uint64
}

// HistogramSource adapts a bare telemetry histogram into a Source
// (no sync barrier, no incomplete accounting).
type HistogramSource struct {
	H *telemetry.Histogram
}

func (s HistogramSource) Sync()                              {}
func (s HistogramSource) Rollup() telemetry.HistogramRollup { return s.H.Rollup() }
func (s HistogramSource) Incomplete() uint64                 { return 0 }

// WatchdogOptions configures the evaluation machinery.
type WatchdogOptions struct {
	// ID distinguishes watchdogs sharing one registry (collector id and
	// the {slo: id} label on scrape series). Default "slo-watchdog",
	// which emits unlabeled series for backward compatibility.
	ID string
	// Journal receives slo-burn events (journal.Default when nil).
	Journal *journal.Journal
	// Registry receives the watchdog metrics (NewWatchdog: the
	// tracker's registry; NewWatchdogSource: telemetry.Default — when
	// nil).
	Registry *telemetry.Registry
	// Clock drives the evaluation ticker (resilience.System when nil).
	Clock resilience.Clock
	// OnBurn fires once per burn episode, when a window first
	// violates the objective (iotsecd wires fail-mode escalation
	// here). OnRecover fires when a later window clears it.
	OnBurn    func(Evaluation)
	OnRecover func(Evaluation)
}

// Evaluation is one window verdict.
type Evaluation struct {
	At         time.Time     `json:"at"`
	Skipped    bool          `json:"skipped"` // below MinSamples
	Total      uint64        `json:"total"`   // chains judged this window
	Incomplete uint64        `json:"incomplete"`
	OverTarget uint64        `json:"over_target"` // completed chains over Target (bucket-conservative)
	Quantile   time.Duration `json:"quantile"`    // windowed latency at the objective quantile
	BudgetFrac float64       `json:"budget_frac"` // allowed violating fraction
	ViolFrac   float64       `json:"viol_frac"`   // observed violating fraction
	Burning    bool          `json:"burning"`
}

// Watchdog evaluates the objective over deltas of the tracker's
// histograms every Window, emitting slo-burn journal events and the
// iotsec_slo_burn_total counter while the budget is exceeded.
// Incomplete chains count as violations at +Inf — a chain that never
// enforced is the worst possible MTTR, not a missing sample.
type Watchdog struct {
	src   Source
	id    string
	j     *journal.Journal
	obj   Objectives
	clock resilience.Clock
	reg   *telemetry.Registry

	onBurn    func(Evaluation)
	onRecover func(Evaluation)

	mBurn *telemetry.Counter

	mu      sync.Mutex
	prev    telemetry.HistogramRollup // previous window's cumulative e2e snapshot
	prevInc uint64
	burning bool
	last    Evaluation
	evals   uint64

	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// NewWatchdog builds a watchdog over a tracker's detect→enforce
// histogram. Call Start to begin ticking (tests may call Evaluate
// directly instead).
func NewWatchdog(t *Tracker, obj Objectives, opts WatchdogOptions) *Watchdog {
	if opts.Registry == nil {
		opts.Registry = t.reg
	}
	return NewWatchdogSource(t, obj, opts)
}

// NewWatchdogSource builds a watchdog over any Source — the recovery
// SLO tap runs one over the controller recovery-MTTR histogram.
func NewWatchdogSource(src Source, obj Objectives, opts WatchdogOptions) *Watchdog {
	j := opts.Journal
	if j == nil {
		j = journal.Default
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default
	}
	clock := opts.Clock
	if clock == nil {
		clock = resilience.System
	}
	id := opts.ID
	if id == "" {
		id = "slo-watchdog"
	}
	w := &Watchdog{
		src:       src,
		id:        id,
		j:         j,
		obj:       obj.withDefaults(),
		clock:     clock,
		reg:       reg,
		onBurn:    opts.OnBurn,
		onRecover: opts.OnRecover,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	w.mBurn = reg.NewCounter("iotsec_slo_burn_total",
		"Evaluation windows in which the MTTR objective's error budget was exceeded.")
	reg.RegisterCollector(id, w.collect)
	// Baseline the histogram so the first window only sees its own
	// delta, not process history.
	w.prev = src.Rollup()
	w.prevInc = src.Incomplete()
	return w
}

// Objectives returns the (defaulted) objective under evaluation.
func (w *Watchdog) Objectives() Objectives { return w.obj }

// Start begins the evaluation ticker. Stop (or Close) ends it.
func (w *Watchdog) Start() {
	if !w.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(w.done)
		ticker := w.clock.NewTicker(w.obj.Window)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C():
				w.Evaluate()
			}
		}
	}()
}

// Stop halts the ticker (a never-Started watchdog just unregisters its
// collector). Idempotent.
func (w *Watchdog) Stop() {
	w.once.Do(func() {
		close(w.stop)
		if w.started.Load() {
			<-w.done
		}
		w.reg.UnregisterCollector(w.id)
	})
}

// Evaluate judges the window since the previous evaluation. Exported
// so tests (and one-shot tools) can drive it deterministically.
func (w *Watchdog) Evaluate() Evaluation {
	// Barrier: fold anything sitting in the tap and sweep timeouts so
	// the window judges every chain that should have resolved by now.
	w.src.Sync()
	cur := w.src.Rollup()
	inc := w.src.Incomplete()

	w.mu.Lock()
	defer w.mu.Unlock()
	// Window delta via the mergeable-rollup algebra (same bounds by
	// construction, so the error path is unreachable).
	window, err := cur.DeltaFrom(w.prev)
	if err != nil {
		window = cur.Clone()
	}
	bounds := window.Bounds
	dInc := inc - w.prevInc
	w.prev = cur
	w.prevInc = inc

	ev := Evaluation{
		At:         w.clock.Now(),
		Total:      window.Count + dInc,
		Incomplete: dInc,
		BudgetFrac: (1 - w.obj.Quantile) * w.obj.BurnFactor,
	}
	w.evals++
	if ev.Total < w.obj.MinSamples {
		ev.Skipped = true
		ev.Burning = w.burning
		w.last = ev
		return ev
	}

	// Incomplete chains are +Inf observations for the windowed
	// quantile and automatic violations for the budget.
	qBuckets := append([]uint64(nil), window.Buckets...)
	qBuckets[len(qBuckets)-1] += dInc
	ev.Quantile = time.Duration(telemetry.QuantileFromBuckets(bounds, qBuckets, w.obj.Quantile) * float64(time.Second))

	// A completed chain counts as over-target when its bucket's upper
	// bound exceeds Target (conservative: the bucket containing Target
	// counts as over — pick Target on a bucket boundary to avoid the
	// rounding, see LatencyBuckets).
	target := w.obj.Target.Seconds()
	for i, d := range window.Buckets {
		if d == 0 {
			continue
		}
		if i >= len(bounds) || bounds[i] > target {
			ev.OverTarget += d
		}
	}
	ev.ViolFrac = float64(ev.OverTarget+dInc) / float64(ev.Total)
	ev.Burning = ev.ViolFrac > ev.BudgetFrac

	if ev.Burning {
		w.mBurn.Inc()
		name := "MTTR SLO"
		if w.id != "slo-watchdog" {
			name = w.id + " SLO"
		}
		w.j.Record(context.Background(), journal.TypeSLOBurn, journal.Warn, "",
			fmt.Sprintf("%s burn: %s violated — window p%g=%s, %d/%d over target (%d incomplete), viol %.1f%% > budget %.1f%%",
				name, w.obj, w.obj.Quantile*100, ev.Quantile, ev.OverTarget+ev.Incomplete, ev.Total,
				ev.Incomplete, ev.ViolFrac*100, ev.BudgetFrac*100))
	}
	was := w.burning
	w.burning = ev.Burning
	w.last = ev
	if ev.Burning && !was && w.onBurn != nil {
		go w.onBurn(ev)
	}
	if !ev.Burning && was && w.onRecover != nil {
		go w.onRecover(ev)
	}
	return ev
}

// Last returns the most recent evaluation (zero before the first).
func (w *Watchdog) Last() Evaluation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Burning reports whether the last judged window violated the budget.
func (w *Watchdog) Burning() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.burning
}

// collect emits the watchdog's scrape-time series. Gauges with
// fractional values (seconds, ratios) are emitted here rather than as
// int64 Gauge metrics.
func (w *Watchdog) collect(emit func(name string, kind telemetry.Kind, help string, labels telemetry.Labels, value float64)) {
	w.mu.Lock()
	last, burning, evals := w.last, w.burning, w.evals
	obj := w.obj
	w.mu.Unlock()
	// Non-default watchdogs label their series so two objectives on one
	// registry stay distinguishable; the default stays unlabeled for
	// backward compatibility.
	var labels telemetry.Labels
	if w.id != "slo-watchdog" {
		labels = telemetry.Labels{{Key: "slo", Value: w.id}}
	}
	b := 0.0
	if burning {
		b = 1
	}
	emit("iotsec_slo_burn_active", telemetry.KindGauge,
		"1 while the last evaluated window violated the MTTR error budget.", labels, b)
	emit("iotsec_slo_objective_seconds", telemetry.KindGauge,
		"Configured MTTR objective latency.", labels, obj.Target.Seconds())
	emit("iotsec_slo_objective_quantile", telemetry.KindGauge,
		"Quantile the MTTR objective is stated at.", labels, obj.Quantile)
	emit("iotsec_slo_evaluations_total", telemetry.KindCounter,
		"SLO windows evaluated (including skipped low-traffic windows).", labels, float64(evals))
	emit("iotsec_slo_window_quantile_seconds", telemetry.KindGauge,
		"Last window's MTTR at the objective quantile (incomplete chains count as +Inf).",
		labels, last.Quantile.Seconds())
	emit("iotsec_slo_window_total", telemetry.KindGauge,
		"Chains judged in the last window.", labels, float64(last.Total))
	emit("iotsec_slo_window_violations", telemetry.KindGauge,
		"Over-target plus incomplete chains in the last window.",
		labels, float64(last.OverTarget+last.Incomplete))
}
