package sigrepo

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"iotsec/internal/resilience"
)

// trust makes an identity's pseudonym trusted enough to skip
// quarantine (score ≥ 0.8), so publishes clear immediately and emit
// cleared events.
func trust(r *Repository, identity string) {
	pseudo := r.Pseudonym(identity)
	for i := 0; i < 20; i++ {
		r.Reputation().RecordOutcome(pseudo, true)
	}
}

// publishCleared publishes a signature that clears immediately (the
// identity must be trusted) and returns it.
func publishCleared(t *testing.T, r *Repository, identity, sku string, sid int) *Signature {
	t.Helper()
	rule := fmt.Sprintf(`block tcp any any -> any 80 (msg:"m%d"; content:"tok%d"; sid:%d;)`, sid, sid, sid)
	sig, err := r.Publish(context.Background(), identity, sku, rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	if sig.Quarantined {
		t.Fatalf("publish by %s still quarantined; trust() missing?", identity)
	}
	return sig
}

func TestSubscribeSinceCursorReplay(t *testing.T) {
	r := NewRepository("s")
	trust(r, "pub")
	var ids []string
	for i := 1; i <= 5; i++ {
		ids = append(ids, publishCleared(t, r, "pub", "sku-x", i).ID)
	}
	if head := r.Head("sku-x"); head != 5 {
		t.Fatalf("head = %d, want 5", head)
	}

	// Resume from cursor 2: replay events 3..5 in order, marked Replay.
	cancel, replay, head := r.SubscribeSince("sub", "sku-x", 2, func(Notification) {})
	defer cancel()
	if head != 5 {
		t.Fatalf("head = %d, want 5", head)
	}
	if len(replay) != 3 {
		t.Fatalf("replayed %d events, want 3", len(replay))
	}
	for i, n := range replay {
		if n.Seq != uint64(3+i) || !n.Replay || n.Signature.ID != ids[2+i] {
			t.Fatalf("replay[%d] = seq %d id %s replay=%v", i, n.Seq, n.Signature.ID, n.Replay)
		}
	}

	// NoReplay subscribes live-only.
	cancel2, replay2, _ := r.SubscribeSince("sub2", "sku-x", NoReplay, func(Notification) {})
	defer cancel2()
	if len(replay2) != 0 {
		t.Fatalf("NoReplay delivered %d events", len(replay2))
	}
}

func TestSubscribeSinceTruncatedLogFallsBackToFullScan(t *testing.T) {
	r := NewRepository("s")
	r.EventLogCap = 2
	trust(r, "pub")
	for i := 1; i <= 5; i++ {
		publishCleared(t, r, "pub", "sku-x", i)
	}
	// Cursor 0 predates the retained log (seqs 4,5); the full cleared
	// set must still come back, in sequence order.
	cancel, replay, _ := r.SubscribeSince("sub", "sku-x", 0, func(Notification) {})
	defer cancel()
	if len(replay) != 5 {
		t.Fatalf("replayed %d events, want 5 (full-scan fallback)", len(replay))
	}
	for i, n := range replay {
		if n.Seq != uint64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, n.Seq, i+1)
		}
	}
}

func TestSnapshotRoundTripPreservesCursors(t *testing.T) {
	r := NewRepository("s")
	trust(r, "pub")
	for i := 1; i <= 3; i++ {
		publishCleared(t, r, "pub", "sku-x", i)
	}
	var buf bytes.Buffer
	if err := r.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2 := NewRepository("s")
	if err := r2.ImportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if head := r2.Head("sku-x"); head != 3 {
		t.Fatalf("restored head = %d, want 3", head)
	}
	cancel, replay, _ := r2.SubscribeSince("sub", "sku-x", 1, func(Notification) {})
	defer cancel()
	if len(replay) != 2 || replay[0].Seq != 2 || replay[1].Seq != 3 {
		t.Fatalf("restored replay = %+v", replay)
	}
	// The sequence keeps growing from the restored head.
	sig := publishCleared(t, r2, "pub", "sku-x", 9)
	if sig.ClearSeq != 4 {
		t.Fatalf("post-restore clear seq = %d, want 4", sig.ClearSeq)
	}
}

func TestLegacySnapshotRebuildsCursors(t *testing.T) {
	// A pre-cursor snapshot: cleared signatures with ClearSeq 0 and no
	// seqs/events sections.
	state := snapshotState{
		NextID: 2,
		Signatures: []Signature{
			{ID: "sig-000001", SKU: "sku-x", Rule: `alert tcp any any -> any 80 (msg:"a"; sid:1;)`,
				Contributor: "anon-1", Submitted: time.Now().Add(-2 * time.Hour)},
			{ID: "sig-000002", SKU: "sku-x", Rule: `alert tcp any any -> any 80 (msg:"b"; sid:2;)`,
				Contributor: "anon-1", Submitted: time.Now().Add(-time.Hour)},
		},
		Votes:      map[string]map[string]bool{},
		Reputation: map[string]float64{},
	}
	data, err := json.Marshal(state)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRepository("s")
	if err := r.ImportJSON(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if head := r.Head("sku-x"); head != 2 {
		t.Fatalf("rebuilt head = %d, want 2", head)
	}
	cancel, replay, _ := r.SubscribeSince("sub", "sku-x", 0, func(Notification) {})
	defer cancel()
	if len(replay) != 2 || replay[0].Signature.ID != "sig-000001" || replay[1].Signature.ID != "sig-000002" {
		t.Fatalf("rebuilt replay = %+v", replay)
	}
}

func TestPublishIdempotentRetry(t *testing.T) {
	r := NewRepository("s")
	rule := `block tcp any any -> any 80 (msg:"m"; content:"tok"; sid:7;)`
	first, err := r.Publish(context.Background(), "gw", "sku-x", rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Publish(context.Background(), "gw", "sku-x", rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("retry created a duplicate: %s vs %s", second.ID, first.ID)
	}
	if total, _ := r.Stats(); total != 1 {
		t.Fatalf("total = %d, want 1", total)
	}
	// A different contributor with the same rule is NOT deduped.
	other, err := r.Publish(context.Background(), "other", "sku-x", rule, "d")
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == first.ID {
		t.Fatal("distinct contributors must get distinct signatures")
	}
}

// TestClientSurfacesTermination is the readLoop satellite: a dead
// connection must close Done, expose Err, and fail calls fast instead
// of hanging.
func TestClientSurfacesTermination(t *testing.T) {
	repo := NewRepository("s")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialClient(addr, "ent")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Err() != nil {
		t.Fatalf("live client Err = %v", c.Err())
	}
	srv.Close()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done() never closed after server shutdown")
	}
	if !errors.Is(c.Err(), ErrClosed) {
		t.Fatalf("Err = %v, want ErrClosed", c.Err())
	}
	start := time.Now()
	if _, err := c.Fetch("sku-x"); err == nil {
		t.Fatal("call on dead client succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("dead-client call took %v (should fail fast)", elapsed)
	}
}

func TestRemoteErrorsAreDistinguishable(t *testing.T) {
	repo := NewRepository("s")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialClient(addr, "ent")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Vote("sig-does-not-exist", true)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("repository rejection not wrapped in ErrRemote: %v", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("repository rejection misreported as transport death: %v", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// relisten rebinds a server on a previously used address, retrying
// briefly while the OS releases the port.
func relisten(t *testing.T, srv *Server, addr string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, err := srv.Listen(addr); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestManagedClientOutboxWhileDown(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	outboxPath := filepath.Join(dir, "outbox.json")

	repo := NewRepository("s")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	mc, err := DialManaged(addr, "gw", ManagedOptions{
		Backoff:    resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 1},
		OutboxPath: outboxPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mc.State() != LinkUp {
		t.Fatalf("state after dial = %v", mc.State())
	}

	// Outage: every publish queues durably.
	srv.Close()
	waitFor(t, "degraded", func() bool { return mc.State() == LinkDegraded })
	if sig, err := mc.Publish("sku-x", `block tcp any any -> any 80 (msg:"m"; content:"t"; sid:1;)`, "d"); err != nil || sig != nil {
		t.Fatalf("degraded publish = %v, %v (want queued nil,nil)", sig, err)
	}
	if mc.OutboxDepth() != 1 {
		t.Fatalf("outbox depth = %d, want 1", mc.OutboxDepth())
	}
	data, err := os.ReadFile(outboxPath)
	if err != nil || !bytes.Contains(data, []byte("publish")) {
		t.Fatalf("outbox not persisted: %v %q", err, data)
	}

	// Recovery: the supervisor reconnects and drains the outbox.
	srv2 := NewServer(repo)
	relisten(t, srv2, addr)
	defer srv2.Close()
	waitFor(t, "outbox drained", func() bool {
		total, _ := repo.Stats()
		return total == 1 && mc.OutboxDepth() == 0
	})
	if got := mc.OutboxDelivered(); got != 1 {
		t.Fatalf("outbox delivered = %d, want 1", got)
	}
	mc.Close()
	if mc.State() != LinkDown {
		t.Fatalf("state after Close = %v", mc.State())
	}
	waitGoroutines(t, base)
}

func TestManagedClientOutboxDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	outboxPath := filepath.Join(dir, "outbox.json")
	repo := NewRepository("s")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	opts := ManagedOptions{
		Backoff:    resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 1},
		OutboxPath: outboxPath,
	}
	mc, err := DialManaged(addr, "gw", opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	waitFor(t, "degraded", func() bool { return mc.State() == LinkDegraded })
	if _, err := mc.Publish("sku-x", `block tcp any any -> any 80 (msg:"m"; content:"t"; sid:2;)`, "d"); err != nil {
		t.Fatal(err)
	}
	mc.Close() // gateway "restarts" with the op still on disk

	srv2 := NewServer(repo)
	relisten(t, srv2, addr)
	defer srv2.Close()
	mc2, err := DialManaged(addr, "gw", opts) // loads + drains the outbox
	if err != nil {
		t.Fatal(err)
	}
	defer mc2.Close()
	waitFor(t, "restart drain", func() bool {
		total, _ := repo.Stats()
		return total == 1 && mc2.OutboxDepth() == 0
	})
}

func TestManagedClientReconnectResumesCursor(t *testing.T) {
	base := runtime.NumGoroutine()
	repo := NewRepository("s")
	trust(repo, "pub")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	installed := newInstallRecorder()
	mc, err := DialManaged(addr, "gw", ManagedOptions{
		Backoff:   resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 2},
		SKUs:      func() []string { return []string{"sku-x"} },
		OnInstall: installed.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	sig1 := publishCleared(t, repo, "pub", "sku-x", 1)
	waitFor(t, "live push", func() bool { return installed.count(sig1.ID) == 1 })
	if mc.Cursor("sku-x") != 1 {
		t.Fatalf("cursor = %d, want 1", mc.Cursor("sku-x"))
	}

	// Outage; a signature clears while the gateway is gone.
	srv.Close()
	waitFor(t, "degraded", func() bool { return mc.State() == LinkDegraded })
	sig2 := publishCleared(t, repo, "pub", "sku-x", 2)

	srv2 := NewServer(repo)
	relisten(t, srv2, addr)
	defer srv2.Close()
	waitFor(t, "cursor replay", func() bool { return installed.count(sig2.ID) == 1 })
	if mc.Replayed() == 0 {
		t.Fatal("missed-event recovery did not use cursor replay")
	}
	// The pre-outage signature must not be re-installed.
	if n := installed.count(sig1.ID); n != 1 {
		t.Fatalf("sig1 installed %d times, want exactly 1", n)
	}
	mc.Close()
	waitGoroutines(t, base)
}

// installRecorder counts OnInstall invocations per signature ID.
type installRecorder struct {
	mu     sync.Mutex
	counts map[string]int
}

func newInstallRecorder() *installRecorder {
	return &installRecorder{counts: make(map[string]int)}
}

func (r *installRecorder) record(sig Signature, replayed bool) {
	r.mu.Lock()
	r.counts[sig.ID]++
	r.mu.Unlock()
}

func (r *installRecorder) count(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[id]
}

func (r *installRecorder) ids() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}
