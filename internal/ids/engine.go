package ids

import (
	"bytes"
	"sync/atomic"
	"time"

	"iotsec/internal/packet"
)

// Alert is one rule match against a packet.
type Alert struct {
	Rule   *Rule
	Msg    string
	SID    int
	Action Action
	SrcIP  packet.IPv4Address
	DstIP  packet.IPv4Address
	When   time.Time
}

// Engine evaluates a ruleset against decoded packets. Immutable after
// NewEngine, so one engine may serve many goroutines.
type Engine struct {
	rules []*Rule
	// ac indexes every content pattern across all rules; patIndex
	// maps automaton pattern index → (rule, content) pair.
	ac       *ahoCorasick
	patIndex []patRef
	// contentless rules must be evaluated on every packet.
	contentless []*Rule
	// noCase is true when any compiled content is case-insensitive,
	// requiring a second scan over the lowercased payload.
	noCase bool

	scanned atomic.Uint64
	matched atomic.Uint64
}

type patRef struct {
	rule    *Rule
	content int
}

// NewEngine compiles the rules. Positive contents feed the
// Aho-Corasick prefilter (a content matching within a region
// necessarily matches somewhere, so "hit anywhere" is a sound
// prefilter); negated contents and region/dsize constraints are
// verified per candidate rule.
func NewEngine(rules []*Rule) *Engine {
	e := &Engine{rules: rules}
	var patterns [][]byte
	for _, r := range rules {
		positives := 0
		for ci, c := range r.Contents {
			if c.Negated {
				continue
			}
			positives++
			patterns = append(patterns, c.Pattern)
			e.patIndex = append(e.patIndex, patRef{rule: r, content: ci})
			if c.NoCase {
				e.noCase = true
			}
		}
		if positives == 0 {
			// Only negated contents (or none): must be evaluated on
			// every packet.
			e.contentless = append(e.contentless, r)
		}
	}
	e.ac = newAhoCorasick(patterns)
	return e
}

// contentMatches verifies one content predicate precisely against the
// payload (region, case and negation).
func contentMatches(c Content, payload []byte) bool {
	region := payload
	if c.Offset > 0 {
		if c.Offset >= len(region) {
			region = nil
		} else {
			region = region[c.Offset:]
		}
	}
	if c.Depth > 0 && c.Depth < len(region) {
		region = region[:c.Depth]
	}
	var found bool
	if c.NoCase {
		found = containsNaive(bytes.ToLower(region), c.Pattern)
	} else {
		found = containsNaive(region, c.Pattern)
	}
	return found != c.Negated
}

// ruleContentsMatch verifies every content predicate of a rule.
func ruleContentsMatch(r *Rule, payload []byte) bool {
	for _, c := range r.Contents {
		if !contentMatches(c, payload) {
			return false
		}
	}
	return true
}

// RuleCount reports the compiled ruleset size.
func (e *Engine) RuleCount() int { return len(e.rules) }

// Stats reports packets scanned and alerts raised.
func (e *Engine) Stats() (scanned, matched uint64) {
	return e.scanned.Load(), e.matched.Load()
}

// Match evaluates the packet, returning all alerts (block rules first
// is NOT guaranteed; callers wanting a verdict use Verdict).
func (e *Engine) Match(p *packet.Packet) []Alert {
	e.scanned.Add(1)
	mPacketsScanned.Inc()
	ip := p.IPv4()
	if ip == nil {
		return nil
	}
	payload := p.ApplicationPayload()

	// One pass over the payload finds every candidate content hit.
	var hits map[int]bool
	if len(payload) > 0 && len(e.patIndex) > 0 {
		hits = make(map[int]bool)
		e.ac.scan(payload, hits)
		// nocase contents are stored lowercased; scan a lowered copy
		// too. (Only if any pattern is nocase.)
		if e.noCase {
			e.ac.scan(bytes.ToLower(payload), hits)
		}
	}

	// Candidate rules: every positive content was seen somewhere in
	// the payload (the prefilter); precise verification follows.
	ruleHits := make(map[*Rule]int)
	rulePositives := make(map[*Rule]int)
	for idx := range hits {
		ref := e.patIndex[idx]
		ruleHits[ref.rule]++
	}
	for _, ref := range e.patIndex {
		rulePositives[ref.rule]++
	}

	var alerts []Alert
	consider := func(r *Rule) {
		if !r.Dsize.Matches(len(payload)) {
			return
		}
		if !ruleContentsMatch(r, payload) {
			return
		}
		if !e.headerMatch(r, p, ip) {
			return
		}
		e.matched.Add(1)
		mRuleMatches.Inc()
		alerts = append(alerts, Alert{
			Rule: r, Msg: r.Msg, SID: r.SID, Action: r.Action,
			SrcIP: ip.SrcIP, DstIP: ip.DstIP, When: time.Now(),
		})
	}
	for r, n := range ruleHits {
		if n >= rulePositives[r] {
			consider(r)
		}
	}
	for _, r := range e.contentless {
		consider(r)
	}
	return alerts
}

// headerMatch applies the non-content predicates.
func (e *Engine) headerMatch(r *Rule, p *packet.Packet, ip *packet.IPv4) bool {
	var srcPort, dstPort uint16
	switch r.Proto {
	case ProtoTCP:
		t := p.TCP()
		if t == nil {
			return false
		}
		srcPort, dstPort = t.SrcPort, t.DstPort
	case ProtoUDP:
		u := p.UDP()
		if u == nil {
			return false
		}
		srcPort, dstPort = u.SrcPort, u.DstPort
	case ProtoIP:
		if t := p.TCP(); t != nil {
			srcPort, dstPort = t.SrcPort, t.DstPort
		} else if u := p.UDP(); u != nil {
			srcPort, dstPort = u.SrcPort, u.DstPort
		}
	}
	forward := r.SrcIP.Matches(ip.SrcIP) && r.SrcPort.Matches(srcPort) &&
		r.DstIP.Matches(ip.DstIP) && r.DstPort.Matches(dstPort)
	if forward {
		return true
	}
	if r.Bidir {
		return r.SrcIP.Matches(ip.DstIP) && r.SrcPort.Matches(dstPort) &&
			r.DstIP.Matches(ip.SrcIP) && r.DstPort.Matches(srcPort)
	}
	return false
}

// Verdict reduces the alerts for a packet to a forwarding decision:
// any block rule blocks; pass rules are advisory here.
func (e *Engine) Verdict(p *packet.Packet) (blocked bool, alerts []Alert) {
	alerts = e.Match(p)
	for _, a := range alerts {
		if a.Action == ActionBlock {
			mBlocks.Inc()
			return true, alerts
		}
	}
	return false, alerts
}
