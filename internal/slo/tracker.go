// Package slo is the live SLO plane: it measures the paper's one
// number that matters — how fast an anomaly becomes an enforced
// µmbox/flow change — *online*, while the system runs, instead of by
// replaying the forensic journal after the fact.
//
// The paper's §2/§5 argument is that IoT flaws are unfixable, so the
// defense is reaction time: detect → posture → FLOW_MOD → applied →
// µmbox reconfig. PR 2 made that chain reconstructable post-hoc from
// trace-ID-stamped journal events; this package taps the same event
// stream (journal.Subscribe, bounded, drop-oldest) and correlates the
// chains as they happen into per-stage and end-to-end MTTR histograms,
// counts chains that never finish, aggregates the result into the
// process health registry, and — via the Watchdog — turns sustained
// SLO burn back into a policy signal (journal event, counter, optional
// fail-mode escalation).
package slo

import (
	"fmt"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// Canonical chain stages, in causal order. Stage latencies are deltas
// from the stage's causal predecessor (posture from the detection,
// flow-mod from the posture, flow-applied from the flow-mod crossing
// the wire, mbox-reconfig from the posture), so the telescoping sum
// detect→posture→flow-mod→flow-applied is always ≤ the end-to-end
// latency.
const (
	StagePosture      = "posture"
	StageFlowMod      = "flow-mod"
	StageFlowApplied  = "flow-applied"
	StageMboxReconfig = "mbox-reconfig"
)

// Stages lists the canonical stages in causal order.
var Stages = []string{StagePosture, StageFlowMod, StageFlowApplied, StageMboxReconfig}

// Component is the health-registry name the tracker reports under.
const Component = "mttr-pipeline"

// Options configures a Tracker. The zero value is usable.
type Options struct {
	// Registry receives the MTTR metrics (Default when nil). Metric
	// registration is idempotent, so several trackers on one registry
	// share series (tests use isolated registries).
	Registry *telemetry.Registry
	// Buffer is the journal-tap ring size (default 4096 events).
	Buffer int
	// ChainTimeout is how long a chain may stay open before it is
	// counted incomplete (default 5s — generous against the modeled
	// µmbox boot latencies, tight against a stuck enforcement path).
	ChainTimeout time.Duration
	// SweepEvery is the incomplete-chain sweep period (default
	// ChainTimeout/4).
	SweepEvery time.Duration
	// HealthHold is how long after an incomplete chain the tracker's
	// health stays non-Healthy (default 4×ChainTimeout): long enough
	// for a probe to see it, short enough to recover on its own.
	HealthHold time.Duration
	// Clock drives timeouts and health decay (resilience.System when
	// nil); tests inject a FakeClock. Stage latencies do NOT use it —
	// they come from the journal's own monotonic event offsets.
	Clock resilience.Clock
}

// chain is one in-flight detect→enforce correlation.
type chain struct {
	device   string
	start    time.Duration            // journal Mono of the detection
	stages   map[string]time.Duration // first-occurrence Mono per stage
	deadline time.Time                // tracker-clock expiry
}

// Tracker consumes a journal tap and folds trace-ID-correlated chains
// into live MTTR metrics:
//
//	iotsec_mttr_stage_seconds{stage=...}  per-stage latency
//	iotsec_mttr_e2e_seconds               detection → last enforcement
//	iotsec_mttr_incomplete_total{missing_stage=...}
//
// plus scrape-time gauges for in-flight chains and tap drops. One
// consumer goroutine owns all chain state; the hot journal path only
// pays the tap's drop-oldest ring push.
type Tracker struct {
	j     *journal.Journal
	sub   *journal.Subscription
	clock resilience.Clock
	reg   *telemetry.Registry

	chainTimeout time.Duration
	sweepEvery   time.Duration
	healthHold   time.Duration

	mStage      *telemetry.HistogramVec
	mE2E        *telemetry.Histogram
	mIncomplete *telemetry.CounterVec
	mCompleted  *telemetry.Counter

	mu              sync.Mutex
	chains          map[uint64]*chain
	order           []uint64 // insertion order, for deterministic sweeps
	incompleteCount uint64
	lastIncomplete  incompleteMark
	lastEnforceMiss incompleteMark // missing stage beyond posture

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// incompleteMark remembers the most recent incomplete chain for
// health reasons strings.
type incompleteMark struct {
	at      time.Time
	stage   string
	device  string
	traceID uint64
}

// NewTracker attaches a tracker to j and starts its consumer. Close
// detaches it.
func NewTracker(j *journal.Journal, opts Options) *Tracker {
	if j == nil {
		j = journal.Default
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default
	}
	clock := opts.Clock
	if clock == nil {
		clock = resilience.System
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 4096
	}
	timeout := opts.ChainTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	sweep := opts.SweepEvery
	if sweep <= 0 {
		sweep = timeout / 4
	}
	hold := opts.HealthHold
	if hold <= 0 {
		hold = 4 * timeout
	}
	t := &Tracker{
		j:            j,
		sub:          j.Subscribe(buffer),
		clock:        clock,
		reg:          reg,
		chainTimeout: timeout,
		sweepEvery:   sweep,
		healthHold:   hold,
		chains:       make(map[uint64]*chain),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	t.mStage = reg.NewHistogramVec("iotsec_mttr_stage_seconds",
		"Per-stage detect→enforce latency, measured online from the journal tap (delta from the stage's causal predecessor).",
		telemetry.LatencyBuckets, "stage")
	t.mE2E = reg.NewHistogram("iotsec_mttr_e2e_seconds",
		"End-to-end detect→enforce latency (detection to last enforcement event of the chain), measured online.",
		telemetry.LatencyBuckets)
	t.mIncomplete = reg.NewCounterVec("iotsec_mttr_incomplete_total",
		"Chains that timed out before completing, by first missing canonical stage.", "missing_stage")
	t.mCompleted = reg.NewCounter("iotsec_mttr_complete_total",
		"Chains that closed the detect→enforce loop.")
	reg.RegisterCollector("slo-tracker", t.collect)
	go t.run()
	return t
}

// run is the single consumer goroutine: drains the tap, sweeps
// timeouts.
func (t *Tracker) run() {
	defer close(t.done)
	ticker := t.clock.NewTicker(t.sweepEvery)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-t.sub.Wait():
			for _, e := range t.sub.Drain() {
				t.handle(e)
			}
		case <-ticker.C():
			for _, e := range t.sub.Drain() {
				t.handle(e)
			}
			t.sweep()
		}
	}
}

// handle folds one journal event into chain state.
func (t *Tracker) handle(e journal.Event) {
	if e.TraceID == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	switch e.Type {
	case journal.TypeAnomaly, journal.TypeAlert, journal.TypeDeviceEvent:
		if _, ok := t.chains[e.TraceID]; ok {
			return // keep the first detection of the chain
		}
		t.chains[e.TraceID] = &chain{
			device:   e.Device,
			start:    e.Mono,
			stages:   make(map[string]time.Duration, 4),
			deadline: t.clock.Now().Add(t.chainTimeout),
		}
		t.order = append(t.order, e.TraceID)
	case journal.TypePosture:
		t.stageLocked(e, StagePosture, "")
	case journal.TypeFlowMod:
		t.stageLocked(e, StageFlowMod, StagePosture)
	case journal.TypeFlowApplied:
		t.stageLocked(e, StageFlowApplied, StageFlowMod)
		t.maybeCompleteLocked(e.TraceID)
	case journal.TypeMboxReconfig:
		t.stageLocked(e, StageMboxReconfig, StagePosture)
		t.maybeCompleteLocked(e.TraceID)
	}
}

// stageLocked records the first occurrence of a stage as a delta from
// its causal predecessor (falling back to the detection when the
// predecessor was never seen, e.g. a flow-applied whose flow-mod event
// was evicted from the tap).
func (t *Tracker) stageLocked(e journal.Event, stage, pred string) {
	c, ok := t.chains[e.TraceID]
	if !ok {
		return // chain never started here (standing-quarantine re-applies, foreign traces)
	}
	if _, seen := c.stages[stage]; seen {
		return // first occurrence wins (e.g. one flow-mod per switch)
	}
	c.stages[stage] = e.Mono
	base := c.start
	if pred != "" {
		if p, ok := c.stages[pred]; ok {
			base = p
		}
	}
	d := e.Mono - base
	if d < 0 {
		d = 0 // tap reordering across the ring; clamp rather than poison the histogram
	}
	t.mStage.With(stage).Observe(d.Seconds())
}

// maybeCompleteLocked closes the chain when the loop is closed: the
// µmbox pipeline was reconfigured AND — if the posture emitted flow
// rules at all — at least one switch acknowledged applying them.
// (FLOW_MODs are journaled synchronously before the reconfig event,
// so by the time mbox-reconfig arrives we know whether to wait for a
// flow-applied.) End-to-end latency is detection → latest stage.
func (t *Tracker) maybeCompleteLocked(traceID uint64) {
	c, ok := t.chains[traceID]
	if !ok {
		return
	}
	if _, ok := c.stages[StageMboxReconfig]; !ok {
		return
	}
	_, flowMod := c.stages[StageFlowMod]
	_, applied := c.stages[StageFlowApplied]
	if flowMod && !applied {
		return
	}
	last := c.start
	for _, m := range c.stages {
		if m > last {
			last = m
		}
	}
	t.mE2E.Observe((last - c.start).Seconds())
	t.mCompleted.Inc()
	t.dropLocked(traceID)
}

// sweep expires chains past their deadline, counting each under its
// first missing canonical stage.
func (t *Tracker) sweep() {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var keep []uint64
	for _, id := range t.order {
		c, ok := t.chains[id]
		if !ok {
			continue
		}
		if c.deadline.After(now) {
			keep = append(keep, id)
			continue
		}
		missing := missingStage(c)
		t.mIncomplete.With(missing).Inc()
		t.incompleteCount++
		mark := incompleteMark{at: now, stage: missing, device: c.device, traceID: id}
		t.lastIncomplete = mark
		if missing != StagePosture {
			t.lastEnforceMiss = mark
		}
		delete(t.chains, id)
	}
	t.order = keep
}

// missingStage picks the first canonical stage the chain never
// reached. A chain with flow-mods on the wire but no acknowledgment is
// "flow-applied" even if the µmbox reconfig landed — the network half
// of the enforcement is the part that is missing.
func missingStage(c *chain) string {
	if _, ok := c.stages[StagePosture]; !ok {
		return StagePosture
	}
	_, flowMod := c.stages[StageFlowMod]
	_, applied := c.stages[StageFlowApplied]
	if flowMod && !applied {
		return StageFlowApplied
	}
	if _, ok := c.stages[StageMboxReconfig]; !ok {
		return StageMboxReconfig
	}
	return StageFlowApplied
}

// dropLocked removes a chain from both the map and the order list.
func (t *Tracker) dropLocked(traceID uint64) {
	delete(t.chains, traceID)
	for i, id := range t.order {
		if id == traceID {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// collect emits scrape-time series: in-flight chains and tap drops.
func (t *Tracker) collect(emit func(name string, kind telemetry.Kind, help string, labels telemetry.Labels, value float64)) {
	t.mu.Lock()
	inflight := len(t.chains)
	t.mu.Unlock()
	emit("iotsec_mttr_inflight_chains", telemetry.KindGauge,
		"Detect→enforce chains currently open in the tracker.", nil, float64(inflight))
	emit("iotsec_mttr_tap_dropped_total", telemetry.KindCounter,
		"Journal-tap events evicted before the tracker drained them (drop-oldest).",
		nil, float64(t.sub.Evicted()))
}

// Health is a telemetry.HealthReporter: Down while a chain recently
// timed out mid-enforcement (posture seen, enforcement never
// acknowledged), Degraded while detections recently produced no
// posture at all, Healthy otherwise. The hold window keeps the state
// visible long enough for probes to observe it.
func (t *Tracker) Health() (telemetry.HealthState, string) {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.lastEnforceMiss; !m.at.IsZero() && now.Sub(m.at) < t.healthHold {
		return telemetry.HealthDown, fmt.Sprintf(
			"incomplete detect→enforce chain: missing stage %s (device %s, trace %016x, %s ago)",
			m.stage, m.device, m.traceID, now.Sub(m.at).Round(time.Millisecond))
	}
	if m := t.lastIncomplete; !m.at.IsZero() && now.Sub(m.at) < t.healthHold {
		return telemetry.HealthDegraded, fmt.Sprintf(
			"detection produced no posture within %s (device %s, trace %016x)",
			t.chainTimeout, m.device, m.traceID)
	}
	return telemetry.HealthHealthy, ""
}

// RegisterHealth registers the tracker as the critical "mttr-pipeline"
// component on h: a stalled enforcement path flips /readyz to 503 with
// the missing stage in the reason.
func (t *Tracker) RegisterHealth(h *telemetry.HealthRegistry) {
	h.Register(Component, true, t.Health)
}

// Inflight reports open chains (tests).
func (t *Tracker) Inflight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.chains)
}

// Incomplete reports the total chains counted incomplete.
func (t *Tracker) Incomplete() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.incompleteCount
}

// E2E exposes the end-to-end histogram (the watchdog windows it).
func (t *Tracker) E2E() *telemetry.Histogram { return t.mE2E }

// Rollup snapshots the cumulative end-to-end histogram. Together with
// Sync and Incomplete it makes the tracker a watchdog Source.
func (t *Tracker) Rollup() telemetry.HistogramRollup { return t.mE2E.Rollup() }

// Sync drains any tapped events and runs one timeout sweep
// synchronously — a deterministic barrier for tests and for the
// watchdog's evaluation tick (so an evaluation never races the
// consumer goroutine over events that are already in the tap).
func (t *Tracker) Sync() {
	for _, e := range t.sub.Drain() {
		t.handle(e)
	}
	t.sweep()
}

// Close detaches the tap and stops the consumer. Idempotent.
func (t *Tracker) Close() {
	t.once.Do(func() {
		close(t.stop)
		<-t.done
		t.sub.Close()
		t.reg.UnregisterCollector("slo-tracker")
	})
}
