// Package sigrepo implements the crowdsourced signature repository of
// §4.1: a publish-subscribe service where deployments that operate a
// given device SKU share attack signatures with everyone else running
// the same SKU. The three challenges the paper identifies are each
// addressed with the mechanisms it proposes: contributor incentives
// via priority notification, privacy via anonymization of submissions,
// and data quality via reputation-weighted voting with quarantine.
package sigrepo

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"time"

	"iotsec/internal/ids"
	"iotsec/internal/profile"
)

// Errors.
var (
	ErrInvalidSignature = errors.New("sigrepo: invalid signature")
	ErrUnknownSignature = errors.New("sigrepo: unknown signature id")
	ErrDuplicateVote    = errors.New("sigrepo: contributor already voted")
)

// Signature is one shared attack signature, keyed to a device SKU
// (the paper stresses per-SKU sharing: "Google Nest version XYZ
// rather than 'thermostat'").
type Signature struct {
	// ID is assigned by the repository.
	ID string
	// SKU identifies the exact device model/firmware the signature
	// applies to.
	SKU string
	// Rule is the detection rule in the ids dialect.
	Rule string
	// Description explains the attack.
	Description string
	// Contributor is the (already pseudonymized) submitter identity.
	Contributor string
	// Submitted is the publication time.
	Submitted time.Time
	// Score is the reputation-weighted vote total.
	Score float64
	// Quarantined signatures are withheld from subscribers until
	// their score clears the threshold.
	Quarantined bool
	// ClearSeq is the per-SKU monotonic event sequence assigned when
	// the signature cleared quarantine (0 while quarantined). It is
	// the cursor subscribers resume from after an outage.
	ClearSeq uint64
}

// Validate checks that the signature parses and is not trivially
// destructive (the "misconfigured signature blocks all traffic"
// denial-of-service the paper worries about).
func Validate(sku, ruleText string) error {
	if strings.TrimSpace(sku) == "" {
		return fmt.Errorf("%w: empty SKU", ErrInvalidSignature)
	}
	// Behavior profiles ride the repository as an alternate payload
	// dialect; they are vetted with profile semantics, not the ids
	// rule parser.
	if profile.IsEncoded(ruleText) {
		if err := profile.ValidateEncoded(sku, ruleText); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidSignature, err)
		}
		return nil
	}
	r, err := ids.ParseRule(ruleText)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSignature, err)
	}
	if r == nil {
		return fmt.Errorf("%w: empty rule", ErrInvalidSignature)
	}
	if r.Action == ids.ActionBlock && r.SrcIP.Any && r.DstIP.Any &&
		r.SrcPort.Any && r.DstPort.Any && len(r.Contents) == 0 {
		return fmt.Errorf("%w: block-everything rule rejected", ErrInvalidSignature)
	}
	return nil
}

// Anonymizer pseudonymizes contributor identities and scrubs
// deployment-identifying detail from submissions before they become
// visible to other subscribers (§4.1's privacy mechanism).
type Anonymizer struct {
	salt []byte
}

// NewAnonymizer creates an anonymizer with a repository-secret salt.
func NewAnonymizer(salt string) *Anonymizer {
	return &Anonymizer{salt: []byte(salt)}
}

// Pseudonym maps a contributor identity to a stable, unlinkable
// pseudonym (HMAC so the repository itself cannot be replayed against
// a rainbow table without the salt).
func (a *Anonymizer) Pseudonym(identity string) string {
	mac := hmac.New(sha256.New, a.salt)
	mac.Write([]byte(identity))
	return "anon-" + hex.EncodeToString(mac.Sum(nil))[:12]
}

// internalIPPattern matches RFC1918-style addresses in rule text and
// descriptions.
var internalIPPattern = regexp.MustCompile(`\b(10|192\.168|172\.(1[6-9]|2\d|3[01]))(\.\d{1,3}){2,3}(/\d{1,2})?\b`)

// ScrubRule generalizes deployment-internal addresses in a rule to
// "any" so a submission does not reveal the submitter's topology.
func (a *Anonymizer) ScrubRule(ruleText string) string {
	scrubbed := internalIPPattern.ReplaceAllString(ruleText, "any")
	// "any/nn" is not valid; normalize.
	scrubbed = regexp.MustCompile(`any/\d{1,2}`).ReplaceAllString(scrubbed, "any")
	return scrubbed
}

// ScrubDescription removes internal addresses from free text.
func (a *Anonymizer) ScrubDescription(desc string) string {
	return internalIPPattern.ReplaceAllString(desc, "[redacted]")
}
