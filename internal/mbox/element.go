// Package mbox implements the µmbox platform of §5.2: micro
// network-security functions built as Click-style element pipelines,
// deployed as bump-in-the-wire nodes on the simulated fabric, with a
// manager that models the rapid instantiation and live
// reconfiguration the paper argues micro-VMs enable.
package mbox

import (
	"sync"
	"sync/atomic"

	"iotsec/internal/packet"
)

// Direction distinguishes which way a frame is crossing the µmbox.
type Direction int

// Traffic directions relative to the protected device.
const (
	// ToDevice flows from the network toward the protected device.
	ToDevice Direction = iota
	// FromDevice flows from the protected device outward.
	FromDevice
)

// Verdict is an element's decision about a frame.
type Verdict int

// Verdicts.
const (
	// Forward passes the (possibly rewritten) frame to the next
	// element.
	Forward Verdict = iota
	// Drop discards the frame.
	Drop
	// Consumed means the element handled the frame itself (e.g.,
	// responded on behalf of the device); nothing is forwarded.
	Consumed
)

// Context carries one frame through the pipeline. Elements may replace
// Frame (rewrites) — the decoded packet is refreshed between elements
// only if Reparse is set.
type Context struct {
	// Frame is the raw bytes; elements may replace it.
	Frame []byte
	// Packet is the decoded view of Frame on pipeline entry.
	Packet *packet.Packet
	// Dir is the traffic direction.
	Dir Direction
	// Reparse asks the pipeline to re-decode Frame before the next
	// element (set it after rewriting).
	Reparse bool
	// Inject sends an extra frame back out of the ingress side
	// (e.g., a forged rejection toward the client). May be nil in
	// unit tests.
	Inject func(frame []byte)
}

// Element is one packet-processing stage.
type Element interface {
	// Name identifies the element for stats and logs.
	Name() string
	// Process inspects (and may rewrite) the frame.
	Process(ctx *Context) Verdict
}

// elementStats counts one element's decisions.
type elementStats struct {
	processed atomic.Uint64
	dropped   atomic.Uint64
	consumed  atomic.Uint64
}

// ElementStats is a snapshot of an element's counters.
type ElementStats struct {
	Name      string
	Processed uint64
	Dropped   uint64
	Consumed  uint64
}

// Pipeline is an ordered element chain supporting live reconfiguration:
// traffic keeps flowing during Swap/Insert/Remove (readers take an
// RLock; reconfiguration takes the write lock for a pointer swap).
type Pipeline struct {
	mu       sync.RWMutex
	elements []Element
	stats    map[string]*elementStats

	reconfigs atomic.Uint64
}

// NewPipeline builds a pipeline from the given stages.
func NewPipeline(elements ...Element) *Pipeline {
	p := &Pipeline{stats: make(map[string]*elementStats)}
	for _, e := range elements {
		p.ensureStats(e.Name())
	}
	p.elements = elements
	return p
}

func (p *Pipeline) ensureStats(name string) *elementStats {
	if s, ok := p.stats[name]; ok {
		return s
	}
	s := &elementStats{}
	p.stats[name] = s
	return s
}

// Process runs the frame through the chain.
func (p *Pipeline) Process(ctx *Context) Verdict {
	p.mu.RLock()
	elements := p.elements
	p.mu.RUnlock()
	for _, e := range elements {
		p.mu.RLock()
		st := p.stats[e.Name()]
		p.mu.RUnlock()
		if ctx.Reparse {
			ctx.Packet = packet.Decode(ctx.Frame, packet.LayerTypeEthernet)
			ctx.Reparse = false
		}
		v := e.Process(ctx)
		if st != nil {
			st.processed.Add(1)
			switch v {
			case Drop:
				st.dropped.Add(1)
			case Consumed:
				st.consumed.Add(1)
			}
		}
		if v != Forward {
			return v
		}
	}
	return Forward
}

// Elements lists the current stage names in order.
func (p *Pipeline) Elements() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, len(p.elements))
	for i, e := range p.elements {
		out[i] = e.Name()
	}
	return out
}

// Replace atomically installs a new element chain (live
// reconfiguration: no packet is ever half-processed by a mixed chain).
func (p *Pipeline) Replace(elements ...Element) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range elements {
		p.ensureStats(e.Name())
	}
	p.elements = elements
	p.reconfigs.Add(1)
}

// Insert adds an element at position i (clamped).
func (p *Pipeline) Insert(i int, e Element) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureStats(e.Name())
	if i < 0 {
		i = 0
	}
	if i > len(p.elements) {
		i = len(p.elements)
	}
	p.elements = append(p.elements[:i], append([]Element{e}, p.elements[i:]...)...)
	p.reconfigs.Add(1)
}

// Remove deletes the first element with the given name, reporting
// whether one was found.
func (p *Pipeline) Remove(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.elements {
		if e.Name() == name {
			p.elements = append(p.elements[:i], p.elements[i+1:]...)
			p.reconfigs.Add(1)
			return true
		}
	}
	return false
}

// Reconfigs counts live reconfigurations.
func (p *Pipeline) Reconfigs() uint64 { return p.reconfigs.Load() }

// Stats snapshots all element counters.
func (p *Pipeline) Stats() []ElementStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]ElementStats, 0, len(p.elements))
	for _, e := range p.elements {
		s := p.stats[e.Name()]
		out = append(out, ElementStats{
			Name:      e.Name(),
			Processed: s.processed.Load(),
			Dropped:   s.dropped.Load(),
			Consumed:  s.consumed.Load(),
		})
	}
	return out
}
