package experiment

import (
	"fmt"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// RunFigure3 reproduces the Figure 3 policy-abstraction scenario on
// the live system: both attack arrows (fire-alarm backdoor, window
// PIN brute force) and the corresponding posture transitions.
func RunFigure3() (*Table, error) {
	t := &Table{
		ID:      "F3",
		Title:   "FSM policy in action: fire alarm + window actuator",
		Columns: []string{"Step", "State", "Enforcement outcome"},
	}

	d := policy.NewDomain()
	d.AddDevice("firealarm", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "alarm-suspicious-blocks-window-open",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})
	f.AddRule(policy.Rule{
		Name:       "window-suspicious-robot-check",
		Conditions: []policy.Condition{policy.DeviceIs("window", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{Modules: []policy.ModuleSpec{{Kind: "robot-check"}}},
		Priority:   10,
	})
	prot, err := newProtectedLab(f)
	if err != nil {
		return nil, err
	}
	defer prot.stop()
	alarm := device.NewFireAlarm("firealarm", packet.MustParseIPv4("10.0.0.20"))
	win := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.21"))
	if _, err := prot.platform.AddDevice(alarm.Device); err != nil {
		return nil, err
	}
	if _, err := prot.platform.AddDevice(win.Device); err != nil {
		return nil, err
	}
	prot.platform.Start()

	stateStr := func() string {
		return fmt.Sprintf("FireAlarm:<%s> Window:<%s>",
			prot.platform.Global.View.DeviceContext("firealarm"),
			prot.platform.Global.View.DeviceContext("window"))
	}

	// Normal state: window opens with valid credentials.
	open := func() bool {
		resp, err := (&device.Client{Stack: prot.attacker.Stack, Timeout: time.Second}).
			Call(win.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword})
		return err == nil && resp.OK
	}
	t.AddRow("baseline", stateStr(), "window OPEN with valid PIN: "+blockedAllowed(!open()))
	client := &device.Client{Stack: prot.attacker.Stack, Timeout: time.Second}
	_, _ = client.Call(win.IP(), device.Request{Cmd: "CLOSE", User: "admin", Pass: device.WindowPassword})

	// Arrow 1: FireAlarm backdoor accessed.
	if r := prot.attacker.TryBackdoor(alarm.IP(), "TEST", device.AlarmBackdoorToken); !r.Success {
		return nil, fmt.Errorf("alarm backdoor probe failed: %+v", r)
	}
	prot.platform.WaitForContext("firealarm", policy.ContextSuspicious, 2*time.Second)
	settle()
	t.AddRow("firealarm backdoor accessed", stateStr(),
		`"open" to window: `+blockedAllowed(!open()))

	// Arrow 2 (fresh deployment): window PIN brute-forced.
	prot2, err := newProtectedLab(f)
	if err != nil {
		return nil, err
	}
	defer prot2.stop()
	win2 := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.21"))
	alarm2 := device.NewFireAlarm("firealarm", packet.MustParseIPv4("10.0.0.20"))
	if _, err := prot2.platform.AddDevice(win2.Device); err != nil {
		return nil, err
	}
	if _, err := prot2.platform.AddDevice(alarm2.Device); err != nil {
		return nil, err
	}
	prot2.platform.Start()
	// Online guessing: six wrong PINs trip the brute-force
	// escalation. (The real PIN is 0000, so start guessing at 9000.)
	bruteClient := &device.Client{Stack: prot2.attacker.Stack, Timeout: time.Second}
	for i := 0; i < 6; i++ {
		_, _ = bruteClient.Call(win2.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: fmt.Sprintf("%04d", 9000+i)})
	}
	prot2.platform.WaitForContext("window", policy.ContextSuspicious, 2*time.Second)
	settle()
	client2 := &device.Client{Stack: prot2.attacker.Stack, Timeout: time.Second}
	_, errScripted := client2.Call(win2.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword})
	resp, errHuman := client2.Call(win2.IP(), device.Request{
		Cmd: "OPEN", User: "admin", Pass: device.WindowPassword, Args: []string{"captcha:7hills"},
	})
	humanOK := errHuman == nil && resp.OK
	t.AddRow("window password brute-forced",
		fmt.Sprintf("FireAlarm:<%s> Window:<%s>",
			prot2.platform.Global.View.DeviceContext("firealarm"),
			prot2.platform.Global.View.DeviceContext("window")),
		fmt.Sprintf("scripted OPEN: %s; challenged OPEN: %s",
			blockedAllowed(errScripted != nil), blockedAllowed(!humanOK)))
	return t, nil
}

// RunFigure4 reproduces the password-proxy patching use case with the
// before/after comparison and the added latency.
func RunFigure4() (*Table, error) {
	t := &Table{
		ID:      "F4",
		Title:   "Patching an unchangeable password with a µmbox proxy",
		Columns: []string{"World", "admin/admin exploit", "admin-chosen creds", "request latency"},
	}

	// Current world.
	raw := newRawLab()
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if err := raw.add(cam.Device); err != nil {
		return nil, err
	}
	raw.start()
	bareExploit := raw.attacker.TryDefaultCredentials(cam.IP(), "SNAPSHOT").Success
	bareClient := &device.Client{Stack: raw.attacker.Stack, Timeout: time.Second}
	bareLat, err := timeCalls(bareClient, cam.IP(), "admin", "admin", 10)
	if err != nil {
		return nil, err
	}
	raw.stop()
	t.AddRow("current world", yesNo(bareExploit), "n/a (device ignores them)", fmt.Sprintf("%.2fms", ms(bareLat)))

	// With IoTSec.
	prot, err := newProtectedLab(policyFor("cam", device.CameraProfile()))
	if err != nil {
		return nil, err
	}
	defer prot.stop()
	cam2 := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := prot.platform.AddDevice(cam2.Device); err != nil {
		return nil, err
	}
	prot.platform.Start()
	protExploit := prot.attacker.TryDefaultCredentials(cam2.IP(), "SNAPSHOT").Success
	protClient := &device.Client{Stack: prot.attacker.Stack, Timeout: time.Second}
	protLat, err := timeCalls(protClient, cam2.IP(), "homeadmin", "Str0ng!pass", 10)
	if err != nil {
		return nil, err
	}
	t.AddRow("with IoTSec", yesNo(protExploit), "accepted (proxy translates)", fmt.Sprintf("%.2fms", ms(protLat)))
	t.Note("proxy overhead: %.2fms per request", ms(protLat-bareLat))
	return t, nil
}

// RunFigure5 reproduces the cross-device policy use case, including
// the environment dynamics (occupancy changes observed by the
// camera).
func RunFigure5() (*Table, error) {
	t := &Table{
		ID:      "F5",
		Title:   "Cross-device policy: oven ON only if the camera sees a person",
		Columns: []string{"World", "Occupancy", "Attacker 'ON' via Wemo backdoor", "Oven state"},
	}

	// Current world: backdoor works regardless of context.
	raw := newRawLab()
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.40"), device.Appliance{
		Name: "oven", PowerVar: "oven_power", Watts: 1800, HeatVar: "oven_heat_rate", HeatRate: 0.02,
	})
	if err := raw.add(plug.Device); err != nil {
		return nil, err
	}
	raw.start()
	res := raw.attacker.TryBackdoor(plug.IP(), "ON", device.PlugBackdoorToken)
	t.AddRow("current world", "away", yesNo(res.Success), plug.Get("power"))
	raw.stop()

	// With IoTSec.
	d := policy.NewDomain()
	d.AddDevice("wemo")
	d.AddDevice("cam")
	d.AddEnvVar(envsim.VarOccupancy, "away", "home")
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:   "oven-needs-person",
		Device: "wemo",
		Posture: policy.Posture{Modules: []policy.ModuleSpec{{
			Kind:   "context-gate",
			Config: map[string]string{"guard": "ON", "require_env": envsim.VarOccupancy, "require_value": "home"},
		}}},
		Priority: 1,
	})
	prot, err := newProtectedLab(f)
	if err != nil {
		return nil, err
	}
	defer prot.stop()
	plug2 := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.40"), device.Appliance{
		Name: "oven", PowerVar: "oven_power", Watts: 1800, HeatVar: "oven_heat_rate", HeatRate: 0.02,
	})
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.41"))
	if _, err := prot.platform.AddDevice(plug2.Device); err != nil {
		return nil, err
	}
	if _, err := prot.platform.AddDevice(cam.Device); err != nil {
		return nil, err
	}
	prot.platform.Env.Set(envsim.VarOccupancy, 0)
	prot.platform.Start()
	prot.platform.RunEnvironment(1)
	settle()

	res = prot.attacker.TryBackdoor(plug2.IP(), "ON", device.PlugBackdoorToken)
	t.AddRow("with IoTSec", "away", yesNo(res.Success), plug2.Get("power"))

	prot.platform.Env.Set(envsim.VarOccupancy, 1)
	prot.platform.RunEnvironment(1)
	settle()
	res = prot.attacker.TryBackdoor(plug2.IP(), "ON", device.PlugBackdoorToken)
	t.AddRow("with IoTSec", "home", yesNo(res.Success), plug2.Get("power"))
	t.Note("camera person-detection feeds the global view (%s=%s)", envsim.VarOccupancy,
		prot.platform.Global.View.Env(envsim.VarOccupancy))
	return t, nil
}
