package sigrepo

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// dumpJournalOnFailure exports the forensic journal as NDJSON to
// $IOTSEC_CHAOS_JOURNAL when the test fails, so CI can upload the
// sigrepo-down → sigrepo-up → sigrepo-replay timeline as an artifact.
func dumpJournalOnFailure(t *testing.T) {
	path := os.Getenv("IOTSEC_CHAOS_JOURNAL")
	if path == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("chaos journal dump: %v", err)
			return
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, e := range journal.Default.Snapshot(journal.Filter{}) {
			_ = enc.Encode(e)
		}
		t.Logf("chaos journal dumped to %s", path)
	})
	dumpMetricsOnFailure(t)
}

// dumpMetricsOnFailure scrapes the process registry in Prometheus
// text format to $IOTSEC_CHAOS_METRICS when the test fails, so the
// artifact pairs the forensic timeline with the counters/histograms
// (reconnects, replay totals, MTTR) at the moment of failure.
func dumpMetricsOnFailure(t *testing.T) {
	path := os.Getenv("IOTSEC_CHAOS_METRICS")
	if path == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("chaos metrics dump: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "# chaos metrics snapshot: %s\n", t.Name())
		if err := telemetry.Default.WritePrometheus(f); err != nil {
			t.Logf("chaos metrics dump: %v", err)
			return
		}
		t.Logf("chaos metrics dumped to %s", path)
	})
}

// flakyDialer wraps every managed-client transport in the shared
// fault plan.
func flakyDialer(plan *resilience.FaultPlan) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		return resilience.WrapConn(c, plan), nil
	}
}

// TestChaosSigrepoRestartConvergence is the acceptance scenario for
// the northbound resilience work: a gateway holds a supervised
// session over a flaky link, the repository is killed mid-stream and
// restarted from its snapshot, signatures keep clearing throughout
// (including one the gateway itself publishes while disconnected, via
// the outbox), and the gateway must converge to the EXACT cleared
// set — every signature installed exactly once, the outbox drained
// exactly once, no goroutines leaked, and the journal showing an
// ordered sigrepo-down < sigrepo-up < sigrepo-replay timeline.
func TestChaosSigrepoRestartConvergence(t *testing.T) {
	dumpJournalOnFailure(t)
	base := runtime.NumGoroutine()
	journalStart, _ := journal.Default.Stats()
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "sigrepo.json")
	outboxPath := filepath.Join(dir, "outbox.json")

	repo := NewRepository("chaos-salt")
	trust(repo, "publisher")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	plan := resilience.NewFaultPlan(7)
	installed := newInstallRecorder()
	gw, err := DialManaged(addr, "gateway", ManagedOptions{
		Backoff:    resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, Seed: 3},
		Dial:       flakyDialer(plan),
		OutboxPath: outboxPath,
		SKUs:       func() []string { return []string{"sku-a", "sku-b"} },
		OnInstall:  installed.record,
	})
	if err != nil {
		t.Fatal(err)
	}

	expected := make(map[string]bool) // sig IDs the gateway must install

	// Wave 1: live pushes over a healthy link.
	for i := 1; i <= 3; i++ {
		expected[publishCleared(t, repo, "publisher", "sku-a", i).ID] = true
	}
	for i := 4; i <= 5; i++ {
		expected[publishCleared(t, repo, "publisher", "sku-b", i).ID] = true
	}
	waitFor(t, "wave-1 installs", func() bool {
		for id := range expected {
			if installed.count(id) != 1 {
				return false
			}
		}
		return true
	})

	// Kill the link mid-push: full kill rate, then publish — the push
	// triggers I/O on the dying conn and the session collapses (with
	// killRate 1 no replacement session can complete its handshake).
	plan.SetKillRate(1)
	expected[publishCleared(t, repo, "publisher", "sku-a", 6).ID] = true
	waitFor(t, "link degraded", func() bool { return gw.State() == LinkDegraded })

	// A signature clears while the gateway is down: it MUST come back
	// later via cursor replay, not be lost.
	expected[publishCleared(t, repo, "publisher", "sku-a", 7).ID] = true

	// While disconnected the gateway distills its own signature; it
	// must queue in the durable outbox.
	if sig, err := gw.Publish("sku-a",
		`block tcp any any -> any 80 (msg:"gateway distilled"; content:"gwtok"; sid:99;)`,
		"observed locally during outage"); err != nil || sig != nil {
		t.Fatalf("outage publish = %v, %v (want queued nil,nil)", sig, err)
	}
	if gw.OutboxDepth() != 1 {
		t.Fatalf("outbox depth = %d, want 1", gw.OutboxDepth())
	}

	// Repository restart from snapshot: cursors, reputation, and the
	// cleared-event log must all survive.
	if err := repo.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	repo2 := NewRepository("chaos-salt")
	if err := repo2.LoadFile(snapPath); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(repo2)
	plan.SetKillRate(0) // heal the link as the new repository comes up
	relisten(t, srv2, addr)
	defer srv2.Close()

	// Reconnect: cursor replay recovers the missed wave, the outbox
	// drains exactly once.
	waitFor(t, "outbox drained", func() bool { return gw.OutboxDepth() == 0 && gw.OutboxDelivered() == 1 })

	// The gateway's own signature entered quarantine (its reputation
	// is default); the community clears it and the gateway receives it
	// back as a push.
	var gwSigID string
	repo2.mu.Lock()
	for id, s := range repo2.byID {
		if s.Quarantined {
			gwSigID = id
		}
	}
	repo2.mu.Unlock()
	if gwSigID == "" {
		t.Fatal("gateway's outbox publish did not reach the restarted repository")
	}
	for _, org := range []string{"org-1", "org-2"} {
		voter, err := DialClient(addr, org)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := voter.Vote(gwSigID, true); err != nil {
			t.Fatal(err)
		}
		voter.Close()
	}
	expected[gwSigID] = true

	// Wave 2 against the restarted repository (the publisher's trust
	// was persisted with the snapshot).
	for i := 8; i <= 9; i++ {
		expected[publishCleared(t, repo2, "publisher", "sku-b", i).ID] = true
	}

	// Convergence: the exact cleared set, each installed exactly once.
	waitFor(t, "post-restart convergence", func() bool {
		for id := range expected {
			if installed.count(id) != 1 {
				return false
			}
		}
		return true
	})
	for id, n := range installed.ids() {
		if !expected[id] {
			t.Errorf("unexpected install %s", id)
		}
		if n != 1 {
			t.Errorf("signature %s installed %d times, want exactly 1", id, n)
		}
	}
	// No duplicate rows server-side either (idempotent republish).
	if total, quarantined := repo2.Stats(); total != len(expected) || quarantined != 0 {
		t.Errorf("repository rows = %d (quarantined %d), want %d cleared", total, quarantined, len(expected))
	}
	if gw.Replayed() == 0 {
		t.Error("recovery did not exercise cursor replay")
	}

	// Journal timeline: sigrepo-down < sigrepo-up < sigrepo-replay.
	events := journal.Default.Snapshot(journal.Filter{})
	var downSeq, upSeq, replaySeq uint64
	for _, e := range events {
		if e.Seq <= journalStart {
			continue
		}
		switch e.Type {
		case journal.TypeSigrepoDown:
			if downSeq == 0 {
				downSeq = e.Seq
			}
		case journal.TypeSigrepoUp:
			if downSeq != 0 && upSeq == 0 && e.Seq > downSeq {
				upSeq = e.Seq
			}
		case journal.TypeSigrepoReplay:
			if upSeq != 0 && replaySeq == 0 && e.Seq > upSeq {
				replaySeq = e.Seq
			}
		}
	}
	if downSeq == 0 || upSeq == 0 || replaySeq == 0 {
		t.Errorf("journal timeline incomplete: down=%d up=%d replay=%d", downSeq, upSeq, replaySeq)
	}

	gw.Close()
	if gw.State() != LinkDown {
		t.Errorf("state after Close = %v", gw.State())
	}
	waitGoroutines(t, base)
}

// TestChaosKillBurstsConvergence hammers the link with repeated
// probabilistic kill bursts while signatures keep clearing; the
// supervised session must converge to the full set with no
// duplicates.
func TestChaosKillBurstsConvergence(t *testing.T) {
	dumpJournalOnFailure(t)
	base := runtime.NumGoroutine()

	repo := NewRepository("burst-salt")
	trust(repo, "publisher")
	srv := NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	plan := resilience.NewFaultPlan(11)
	installed := newInstallRecorder()
	gw, err := DialManaged(addr, "gateway", ManagedOptions{
		Backoff:   resilience.BackoffOptions{Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: 5},
		Dial:      flakyDialer(plan),
		SKUs:      func() []string { return []string{"sku-a"} },
		OnInstall: installed.record,
	})
	if err != nil {
		t.Fatal(err)
	}

	expected := make(map[string]bool)
	for round := 0; round < 4; round++ {
		plan.SetKillRate(0.4)
		for i := 0; i < 3; i++ {
			expected[publishCleared(t, repo, "publisher", "sku-a", round*10+i+1).ID] = true
			time.Sleep(2 * time.Millisecond)
		}
		plan.SetKillRate(0)
		time.Sleep(20 * time.Millisecond)
	}

	waitFor(t, "burst convergence", func() bool {
		for id := range expected {
			if installed.count(id) != 1 {
				return false
			}
		}
		return true
	})
	for id, n := range installed.ids() {
		if n != 1 {
			t.Errorf("signature %s installed %d times, want 1", id, n)
		}
	}
	gw.Close()
	waitGoroutines(t, base)
}
