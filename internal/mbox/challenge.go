package mbox

import (
	"sync"

	"iotsec/internal/device"
)

// Challenge is the "robot check" posture module of Figure 3: once a
// device is under online brute force, every management request must
// carry a human-solved challenge token ("captcha:<solution>" as the
// final argument), which the element strips before forwarding.
// Requests without it are reset — an automated brute-forcer cannot
// proceed.
type Challenge struct {
	mu       sync.RWMutex
	solution string

	passed, rejected uint64
}

// NewChallenge builds the element with the expected solution.
func NewChallenge(solution string) *Challenge {
	return &Challenge{solution: solution}
}

// Name implements Element.
func (c *Challenge) Name() string { return "robot-check" }

// Counters reports passed and rejected requests.
func (c *Challenge) Counters() (passed, rejected uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.passed, c.rejected
}

// Process implements Element.
func (c *Challenge) Process(ctx *Context) Verdict {
	if ctx.Dir != ToDevice {
		return Forward
	}
	tcp := ctx.Packet.TCP()
	if tcp == nil || tcp.DstPort != device.MgmtPort || len(tcp.LayerPayload()) == 0 {
		return Forward
	}
	req, err := device.ParseRequest(tcp.LayerPayload())
	if err != nil {
		return Forward
	}
	c.mu.RLock()
	want := "captcha:" + c.solution
	c.mu.RUnlock()

	if n := len(req.Args); n > 0 && req.Args[n-1] == want {
		req.Args = req.Args[:n-1]
		frame, err := rewriteTCPPayload(ctx.Packet, req.Encode())
		if err != nil {
			return Drop
		}
		c.mu.Lock()
		c.passed++
		c.mu.Unlock()
		ctx.Frame = frame
		ctx.Reparse = true
		return Forward
	}
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
	if rst, err := forgeRST(ctx.Packet); err == nil && ctx.Inject != nil {
		ctx.Inject(rst)
	}
	return Drop
}
