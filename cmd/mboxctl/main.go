// Command mboxctl inspects and controls a running iotsecd via its
// admin API.
//
// Usage:
//
//	mboxctl [-addr host:port] status
//	mboxctl [-addr host:port] env
//	mboxctl [-addr host:port] set-env <var> <value>
//	mboxctl [-addr host:port] set-context <device> <context>
//	mboxctl [-telemetry-addr host:port] stats
//
// stats talks to the daemon's telemetry listener (iotsecd
// -telemetry-addr), not the admin API.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "iotsecd admin address")
	telemetryAddr := flag.String("telemetry-addr", "127.0.0.1:7701",
		"iotsecd telemetry address (for the stats subcommand)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var req core.AdminRequest
	switch args[0] {
	case "stats":
		if err := printStats(*telemetryAddr); err != nil {
			fmt.Fprintf(os.Stderr, "mboxctl: stats: %v\n", err)
			os.Exit(1)
		}
		return
	case "status":
		req = core.AdminRequest{Op: "status"}
	case "env":
		req = core.AdminRequest{Op: "env"}
	case "set-env":
		if len(args) != 3 {
			usage()
		}
		req = core.AdminRequest{Op: "set-env", Var: args[1], Value: args[2]}
	case "set-context":
		if len(args) != 3 {
			usage()
		}
		req = core.AdminRequest{Op: "set-context", Device: args[1], Value: args[2]}
	default:
		usage()
	}

	resp, err := core.AdminCall(*addr, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mboxctl: %v\n", err)
		os.Exit(1)
	}
	switch args[0] {
	case "status":
		fmt.Printf("µmbox boots: %d   posture reconfigurations: %d   view version: %d\n\n",
			resp.Boots, resp.Reconf, resp.Version)
		for _, d := range resp.Devices {
			fmt.Printf("%-12s %-22s %s\n", d.Name, d.SKU, d.IP)
			fmt.Printf("  context:  %s\n", d.Context)
			fmt.Printf("  posture:  %s\n", d.Posture)
			fmt.Printf("  pipeline: %s\n", strings.Join(d.Pipeline, " -> "))
			fmt.Printf("  state:    %s\n", d.State)
		}
	case "env":
		for k, v := range resp.Env {
			fmt.Printf("%-24s %s\n", k, v)
		}
	default:
		fmt.Println("ok")
	}
}

// printStats fetches the JSON telemetry snapshot and renders it.
func printStats(addr string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/telemetry?spans=16")
	if err != nil {
		return fmt.Errorf("%w (is iotsecd running with -telemetry-addr %s?)", err, addr)
	}
	defer resp.Body.Close()
	var snap telemetry.SnapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}

	fmt.Printf("telemetry snapshot @ %s\n\n", snap.TakenAt.Format(time.RFC3339))
	for _, m := range snap.Metrics {
		switch m.Kind {
		case telemetry.KindHistogram:
			var count, sum float64
			for _, s := range m.Samples {
				switch s.Suffix {
				case "_count":
					count = s.Value
				case "_sum":
					sum = s.Value
				}
			}
			mean := 0.0
			if count > 0 {
				mean = sum / count
			}
			fmt.Printf("%-52s count=%g mean=%.6g\n", m.Name, count, mean)
		default:
			for _, s := range m.Samples {
				fmt.Printf("%-52s %g\n", m.Name+s.Labels.String(), s.Value)
			}
		}
	}

	fmt.Printf("\nspans: %d started, %d finished\n", snap.Spans.Started, snap.Spans.Finished)
	recent := snap.Spans.Recent
	sort.SliceStable(recent, func(i, j int) bool { return recent[i].Start.Before(recent[j].Start) })
	for _, sp := range recent {
		attrs := ""
		if len(sp.Attrs) > 0 {
			attrs = " " + sp.Attrs.String()
		}
		fmt.Printf("  %-28s %10s  trace=%d span=%d parent=%d%s\n",
			sp.Name, sp.Duration, sp.TraceID, sp.ID, sp.ParentID, attrs)
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mboxctl [-addr host:port] status|env|set-env <var> <value>|set-context <device> <context>|stats")
	os.Exit(2)
}
