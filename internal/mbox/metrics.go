package mbox

import "iotsec/internal/telemetry"

// Telemetry for the µmbox platform. Per-element counters are labeled
// vectors whose children are pre-resolved when a pipeline chain is
// (re)built, so the per-packet cost is plain atomic increments — no
// map lookups on the forwarding path. The pipeline latency histogram
// samples one in latencySampleEvery packets to keep the clock reads
// off the common case.
var (
	mElemProcessed = telemetry.NewCounterVec(
		"iotsec_mbox_element_processed_total",
		"Frames processed per pipeline element.", "element")
	mElemDropped = telemetry.NewCounterVec(
		"iotsec_mbox_element_dropped_total",
		"Frames dropped per pipeline element.", "element")
	mElemConsumed = telemetry.NewCounterVec(
		"iotsec_mbox_element_consumed_total",
		"Frames consumed (answered inline) per pipeline element.", "element")
	mElemPanics = telemetry.NewCounterVec(
		"iotsec_mbox_element_panics_total",
		"Panics recovered per pipeline element (fail-mode applied).", "element")
	mPipelineSeconds = telemetry.NewHistogram(
		"iotsec_mbox_pipeline_seconds",
		"Sampled wall time for one frame through an element chain.",
		telemetry.LatencyBuckets)
	mForwarded = telemetry.NewCounter(
		"iotsec_mbox_frames_forwarded_total",
		"Frames forwarded by µmboxes (all instances).")
	mDropped = telemetry.NewCounter(
		"iotsec_mbox_frames_dropped_total",
		"Frames dropped by µmboxes (all instances).")
	mLoggerFrames = telemetry.NewCounter(
		"iotsec_mbox_logger_frames_total",
		"Frames seen by Logger elements (all instances).")
	mLoggerBytes = telemetry.NewCounter(
		"iotsec_mbox_logger_bytes_total",
		"Bytes seen by Logger elements (all instances).")
	mBoots = telemetry.NewCounter(
		"iotsec_mbox_boots_total",
		"µmbox instances booted.")
	mBootSeconds = telemetry.NewHistogram(
		"iotsec_mbox_boot_seconds",
		"Modeled boot latency per launched instance.",
		telemetry.LatencyBuckets)
	mReconfigures = telemetry.NewCounter(
		"iotsec_mbox_reconfigures_total",
		"Live pipeline reconfigurations via the manager.")
	mInstances = telemetry.NewGauge(
		"iotsec_mbox_instances",
		"µmbox instances currently running.")
)

// latencySampleEvery must be a power of two; one in this many frames
// pays the two clock reads feeding mPipelineSeconds.
const latencySampleEvery = 64
