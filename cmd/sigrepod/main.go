// Command sigrepod runs the crowdsourced signature repository server
// (§4.1): anonymous publish-subscribe of per-SKU attack signatures
// with reputation-weighted voting.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/sigrepo"
	"iotsec/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7800", "listen address")
	salt := flag.String("salt", "", "pseudonymization salt (default: random per run)")
	lag := flag.Duration("priority-lag", 30*time.Second, "notification delay for non-contributors")
	state := flag.String("state", "", "snapshot file to load at start and save on shutdown/periodically")
	eventLog := flag.Int("event-log", 0,
		"per-SKU cleared-event log depth for cursor replay (0 = default 1024)")
	writeTimeout := flag.Duration("write-timeout", 0,
		"per-connection wire write deadline (0 = default 5s)")
	notifyBuffer := flag.Int("notify-buffer", 0,
		"per-connection pending-notification ring size; slow subscribers lose oldest and recover by replay (0 = default)")
	telemetryAddr := flag.String("telemetry-addr", "",
		"serve /metrics, /debug/telemetry and /debug/journal on this address (empty = disabled)")
	debugRemote := flag.Bool("debug-remote", false,
		"allow non-loopback clients to reach the unauthenticated /debug/ surfaces (pprof, journal); off by default")
	flag.Parse()

	bi := telemetry.RegisterBuildInfo(telemetry.Default, "sigrepod")
	fmt.Printf("sigrepod: version %s (%s)\n", bi.Version, bi.GoVersion)

	s := *salt
	if s == "" {
		s = fmt.Sprintf("salt-%d", time.Now().UnixNano())
	}
	repo := sigrepo.NewRepository(s)
	repo.PriorityLag = *lag
	if *eventLog > 0 {
		repo.EventLogCap = *eventLog
	}
	if *state != "" {
		if err := repo.LoadFile(*state); err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "sigrepod: loading %s: %v\n", *state, err)
				os.Exit(1)
			}
			fmt.Printf("sigrepod: starting fresh (no snapshot at %s)\n", *state)
		} else {
			total, q := repo.Stats()
			fmt.Printf("sigrepod: restored %d signatures (%d quarantined) from %s\n", total, q, *state)
		}
	}
	// lastSaveErr feeds the health reporter: a failing snapshot save
	// degrades the component until a later save succeeds.
	var lastSaveErr atomic.Value
	lastSaveErr.Store("")
	persist := func() {
		if *state == "" {
			return
		}
		if err := repo.SaveFile(*state); err != nil {
			lastSaveErr.Store(err.Error())
			fmt.Fprintf(os.Stderr, "sigrepod: saving %s: %v\n", *state, err)
			return
		}
		lastSaveErr.Store("")
	}
	defer persist()
	srv := sigrepo.NewServer(repo)
	srv.WriteTimeout = *writeTimeout
	srv.NotifyBuffer = *notifyBuffer
	addr, err := srv.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sigrepod: %v\n", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("sigrepod: listening on %s (priority lag %v)\n", addr, *lag)

	// Component health: the repository is the process's one critical
	// component. Snapshot persistence failures degrade it (a restart
	// would lose state) until a later save succeeds.
	telemetry.Default.Health().Register("sigrepo-server", true,
		func() (telemetry.HealthState, string) {
			if msg := lastSaveErr.Load().(string); msg != "" {
				return telemetry.HealthDegraded, "snapshot persistence failing: " + msg
			}
			total, q := repo.Stats()
			if total > 0 && q == total {
				return telemetry.HealthDegraded, fmt.Sprintf("all %d signatures quarantined", total)
			}
			return telemetry.HealthHealthy, ""
		})

	if *telemetryAddr != "" {
		tsrv, taddr, err := telemetry.Default.Serve(*telemetryAddr,
			telemetry.Mount{Pattern: "/debug/journal", Handler: journal.Default.Handler()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sigrepod: telemetry: %v\n", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		if *debugRemote {
			tsrv.AllowRemoteDebug()
		}
		fmt.Printf("sigrepod: telemetry on http://%s/metrics\n", taddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nsigrepod: shutting down")
			return
		case <-ticker.C:
			total, quarantined := repo.Stats()
			fmt.Printf("sigrepod: %d signatures (%d quarantined) across %d SKUs\n",
				total, quarantined, len(repo.SKUs()))
			persist()
		}
	}
}
