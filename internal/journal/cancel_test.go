package journal

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to at
// most base (HTTP teardown is asynchronous).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d alive, want <= %d", runtime.NumGoroutine(), base)
}

// TestTailCancelReleasesSubscription: cancel closes the channel,
// detaches the subscriber (no more deliveries, no drop accounting
// against a dead consumer), and is idempotent.
func TestTailCancelReleasesSubscription(t *testing.T) {
	j := New(64)
	ch, cancel := j.Tail(2)
	j.RecordTrace(1, TypeAnomaly, Info, "d", "before")
	cancel()
	cancel() // idempotent

	if _, ok := <-ch; !ok {
		// Buffered pre-cancel event may or may not have been consumed
		// before close; either way the channel must END closed.
		t.Log("channel closed with no buffered event")
	}
	for range ch {
	} // drains to close without deadlock

	// A detached subscriber must not accrue drops however hard the
	// journal is hammered.
	_, drops0 := j.Stats()
	for i := 0; i < 100; i++ {
		j.RecordTrace(uint64(i+2), TypeDeviceEvent, Debug, "d", "after cancel")
	}
	if _, drops := j.Stats(); drops != drops0 {
		t.Fatalf("drops grew %d→%d after cancel — subscription not released", drops0, drops)
	}
}

// TestServeFollowClientDisconnectReleases: a follow stream whose
// client goes away must release its Tail subscription (observable as
// zero new drop accounting under load) and leak no goroutines.
func TestServeFollowClientDisconnectReleases(t *testing.T) {
	j := New(1024)
	srv := httptest.NewServer(j.Handler())
	defer srv.Close()

	base := runtime.NumGoroutine()
	ctx, cancelReq := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"?follow=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the stream is live, then hang up.
	j.RecordTrace(1, TypeAnomaly, Warn, "cam", "live")
	var e Event
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("live stream never delivered: %v", err)
	}
	cancelReq()
	resp.Body.Close()
	waitGoroutines(t, base)

	// The handler exited; its Tail subscription must be gone. A leaked
	// full channel would show up as tail drops under this hammering.
	_, drops0 := j.Stats()
	for i := 0; i < 1000; i++ { // > the follow buffer of 512
		j.RecordTrace(uint64(i+10), TypeDeviceEvent, Debug, "d", "post-disconnect")
	}
	if _, drops := j.Stats(); drops != drops0 {
		t.Fatalf("drops grew %d→%d after client disconnect — follow subscription leaked", drops0, drops)
	}
}

// TestSubscriptionEvictedConcurrentAppend: under concurrent writers
// and a concurrently draining consumer, delivered + evicted accounts
// for every append — no event is double-counted or silently lost.
func TestSubscriptionEvictedConcurrentAppend(t *testing.T) {
	j := New(4096)
	sub := j.Subscribe(64) // small cap forces evictions under the burst
	defer sub.Close()

	const writers = 8
	const perWriter = 2000
	var delivered uint64
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-sub.Wait():
				n := uint64(len(sub.Drain()))
				mu.Lock()
				delivered += n
				mu.Unlock()
			case <-sub.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				j.RecordTrace(uint64(w*perWriter+i+1), TypeDeviceEvent, Debug, "d", "concurrent")
				if r.Intn(64) == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	wg.Wait()

	// Final drain picks up the residue, then close stops the consumer.
	mu.Lock()
	delivered += uint64(len(sub.Drain()))
	mu.Unlock()
	evicted := sub.Evicted()
	sub.Close()
	<-done
	mu.Lock()
	delivered += 0 // barrier for the race detector's benefit
	total := delivered
	mu.Unlock()

	appended, _ := j.Stats()
	if appended != writers*perWriter {
		t.Fatalf("appended %d, want %d", appended, writers*perWriter)
	}
	if total+evicted != appended {
		t.Fatalf("delivered %d + evicted %d != appended %d — tap accounting lost events", total, evicted, appended)
	}
	if evicted == 0 {
		t.Log("note: no evictions occurred this run; accounting identity still verified")
	}
}

// TestReconstructDeviceInterleavedOutOfOrder: the cross-shard merge
// path hands ReconstructDevice events from several devices, several
// traces, in scrambled arrival order — per-trace timelines must come
// back sequence-sorted, grouped correctly, untraced events dropped.
func TestReconstructDeviceInterleavedOutOfOrder(t *testing.T) {
	// Three traces over two devices; arrival order deliberately
	// scrambles sequences within and across traces (late shard pulls).
	events := []Event{
		{Seq: 12, TraceID: 2, Type: TypePosture, Device: "cam"},
		{Seq: 3, TraceID: 1, Type: TypeFlowMod, Device: "cam"},
		{Seq: 20, TraceID: 3, Type: TypeAnomaly, Device: "wemo"},
		{Seq: 1, TraceID: 1, Type: TypeAnomaly, Device: "cam"},
		{Seq: 11, TraceID: 2, Type: TypeAnomaly, Device: "cam"},
		{Seq: 21, TraceID: 3, Type: TypePosture, Device: "wemo"},
		{Seq: 2, TraceID: 1, Type: TypePosture, Device: "cam"},
		{Seq: 5, TraceID: 0, Type: TypeDeviceEvent, Device: "cam"}, // untraced
		{Seq: 13, TraceID: 2, Type: TypeMboxReconfig, Device: "cam"},
	}
	tls := ReconstructDevice(events, "cam")
	if len(tls) != 2 {
		t.Fatalf("got %d cam timelines, want 2 (traces 1 and 2)", len(tls))
	}
	// Grouping keyed by first arrival: trace 2's event came first.
	if tls[0].TraceID != 2 || tls[1].TraceID != 1 {
		t.Fatalf("timeline order %d,%d — want first-arrival order 2,1", tls[0].TraceID, tls[1].TraceID)
	}
	for _, tl := range tls {
		for i := 1; i < len(tl.Events); i++ {
			if tl.Events[i].Seq <= tl.Events[i-1].Seq {
				t.Fatalf("trace %d not sequence-sorted despite shuffled arrival: %v", tl.TraceID, tl.Events)
			}
		}
		for _, e := range tl.Events {
			if e.Device != "cam" {
				t.Fatalf("trace %d contains %s's event", tl.TraceID, e.Device)
			}
			if e.TraceID != tl.TraceID {
				t.Fatalf("trace %d absorbed an event from trace %d", tl.TraceID, e.TraceID)
			}
		}
	}
	if len(tls[1].Events) != 3 {
		t.Fatalf("trace 1 has %d events, want 3", len(tls[1].Events))
	}
	// The wemo view is disjoint.
	if wemo := ReconstructDevice(events, "wemo"); len(wemo) != 1 || len(wemo[0].Events) != 2 {
		t.Fatalf("wemo reconstruction wrong: %+v", wemo)
	}
}
