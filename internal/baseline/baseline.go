// Package baseline implements the traditional-IT defenses Figure 1
// finds wanting, so experiments can compare them against IoTSec on
// identical attacks:
//
//   - PerimeterDefense: a single static firewall+IDS at the gateway.
//     It never sees LAN-internal traffic and never changes with
//     context.
//   - HostDefenseModel: the per-host antivirus/patching regime, as a
//     feasibility model — most IoT devices cannot run it at all.
package baseline

import (
	"iotsec/internal/ids"
	"iotsec/internal/mbox"
	"iotsec/internal/packet"
)

// PerimeterDefense is the classic gateway appliance: one static
// ruleset between "outside" and "inside". Deployed as a µmbox-style
// bump on the uplink, it checks traffic crossing the perimeter only —
// an attacker already inside (or a device attacking a device) is
// invisible to it, and its configuration never adapts.
type PerimeterDefense struct {
	engine *ids.Engine
	// InsidePrefix defines the protected network.
	InsidePrefix packet.IPv4Address
	InsideBits   uint8

	inspected, blocked, bypassed uint64
}

// NewPerimeterDefense compiles the static ruleset.
func NewPerimeterDefense(rules []*ids.Rule, insidePrefix packet.IPv4Address, insideBits uint8) *PerimeterDefense {
	return &PerimeterDefense{
		engine:       ids.NewEngine(rules),
		InsidePrefix: insidePrefix,
		InsideBits:   insideBits,
	}
}

// Name implements mbox.Element.
func (p *PerimeterDefense) Name() string { return "perimeter" }

// inside reports whether an address is on the protected network.
func (p *PerimeterDefense) inside(ip packet.IPv4Address) bool {
	bits := p.InsideBits
	if bits == 0 {
		bits = 24
	}
	mask := ^uint32(0) << (32 - bits)
	want := uint32(p.InsidePrefix[0])<<24 | uint32(p.InsidePrefix[1])<<16 | uint32(p.InsidePrefix[2])<<8 | uint32(p.InsidePrefix[3])
	got := uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
	return want&mask == got&mask
}

// Process implements mbox.Element: only perimeter-crossing traffic is
// inspected; internal traffic bypasses entirely (the blind spot).
func (p *PerimeterDefense) Process(ctx *mbox.Context) mbox.Verdict {
	ip := ctx.Packet.IPv4()
	if ip == nil {
		return mbox.Forward
	}
	crossing := p.inside(ip.SrcIP) != p.inside(ip.DstIP)
	if !crossing {
		p.bypassed++
		return mbox.Forward
	}
	p.inspected++
	if blocked, _ := p.engine.Verdict(ctx.Packet); blocked {
		p.blocked++
		return mbox.Drop
	}
	return mbox.Forward
}

// Counters reports inspection statistics.
func (p *PerimeterDefense) Counters() (inspected, blocked, bypassed uint64) {
	return p.inspected, p.blocked, p.bypassed
}

// DeviceClassSpec describes a device population for the host-defense
// feasibility model.
type DeviceClassSpec struct {
	Class string
	// RAMMB is the device's memory.
	RAMMB int
	// HasOS is true for devices running a full OS with a packaging
	// system.
	HasOS bool
	// VendorPatching is true if the vendor still ships updates.
	VendorPatching bool
	// Count is the population size.
	Count int
}

// HostDefenseReport quantifies how much of a deployment host-centric
// defenses can even reach.
type HostDefenseReport struct {
	Total            int
	AntivirusCapable int
	Patchable        int
	// Uncovered devices have neither option — the paper's point.
	Uncovered int
}

// AntivirusMinRAMMB is the footprint of the lightest embedded AV the
// paper cites (Commtouch: 128 MB).
const AntivirusMinRAMMB = 128

// EvaluateHostDefense applies the §2.1 feasibility constraints.
func EvaluateHostDefense(classes []DeviceClassSpec) HostDefenseReport {
	var r HostDefenseReport
	for _, c := range classes {
		r.Total += c.Count
		av := c.HasOS && c.RAMMB >= AntivirusMinRAMMB
		if av {
			r.AntivirusCapable += c.Count
		}
		if c.VendorPatching {
			r.Patchable += c.Count
		}
		if !av && !c.VendorPatching {
			r.Uncovered += c.Count
		}
	}
	return r
}

// TypicalIoTFleet is a representative population with the paper's
// constraints (single-thread microcontrollers, ≤2 MB RAM, dead
// vendors).
func TypicalIoTFleet() []DeviceClassSpec {
	return []DeviceClassSpec{
		{Class: "camera", RAMMB: 64, HasOS: true, VendorPatching: false, Count: 130000},
		{Class: "set-top-box", RAMMB: 512, HasOS: true, VendorPatching: true, Count: 61000},
		{Class: "refrigerator", RAMMB: 256, HasOS: true, VendorPatching: false, Count: 146},
		{Class: "cctv", RAMMB: 32, HasOS: false, VendorPatching: false, Count: 30000},
		{Class: "traffic-light", RAMMB: 2, HasOS: false, VendorPatching: false, Count: 219},
		{Class: "smart-plug", RAMMB: 2, HasOS: false, VendorPatching: true, Count: 500000},
		{Class: "sensor-mote", RAMMB: 1, HasOS: false, VendorPatching: false, Count: 250000},
	}
}
