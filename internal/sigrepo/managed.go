package sigrepo

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// LinkState is the managed northbound link's health.
type LinkState int32

// Link states, in ascending health order.
const (
	// LinkDown: the supervisor has stopped (Close called or the
	// reconnect budget exhausted). Nothing will be delivered.
	LinkDown LinkState = iota
	// LinkDegraded: the session is lost and the supervisor is
	// redialing; publishes/votes queue in the outbox, pushed
	// signatures will be recovered by cursor replay on reconnect.
	LinkDegraded
	// LinkUp: live session; pushes stream and the outbox is empty or
	// draining.
	LinkUp
)

// String renders the state.
func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkDegraded:
		return "degraded"
	case LinkDown:
		return "down"
	default:
		return "unknown"
	}
}

// OutboxOp is one queued repository mutation, durable across restarts
// when ManagedOptions.OutboxPath is set.
type OutboxOp struct {
	Op          string `json:"op"` // publish | vote
	SKU         string `json:"sku,omitempty"`
	Rule        string `json:"rule,omitempty"`
	Description string `json:"description,omitempty"`
	SigID       string `json:"sig_id,omitempty"`
	Up          bool   `json:"up,omitempty"`
}

// ManagedOptions configure a ManagedClient.
type ManagedOptions struct {
	// Backoff parameterizes the reconnect schedule. MaxElapsed bounds
	// how long the supervisor keeps redialing before declaring the
	// link down (0 = forever).
	Backoff resilience.BackoffOptions
	// Dial overrides the transport dial (fault-injection tests wrap
	// conns here). Default: net.DialTimeout("tcp", addr, 5s).
	Dial func(addr string) (net.Conn, error)
	// OutboxCap bounds the publish/vote outbox (default 256,
	// drop-oldest).
	OutboxCap int
	// OutboxPath, when set, persists the outbox as JSON so queued
	// submissions survive gateway restarts.
	OutboxPath string
	// SKUs, when set, is consulted at every (re)connect for the SKU
	// set to subscribe — so devices added during an outage get their
	// feeds on the next session without extra bookkeeping.
	SKUs func() []string
	// OnInstall receives each newly seen cleared signature exactly
	// once (live pushes and replays alike, after dedupe).
	OnInstall func(sig Signature, replayed bool)
	// OnStateChange observes link-state transitions.
	OnStateChange func(LinkState)
}

// ManagedClient is the supervised northbound session of §4.1: it owns
// dial/handshake/resubscribe-with-cursor under exponential backoff,
// dedupes replayed notifications by signature ID so installs are
// idempotent, and queues publishes/votes in a bounded durable outbox
// while the link is down — the northbound mirror of the southbound
// SwitchAgent supervision from PR 3. A gateway that crashes, loses
// its uplink, or watches sigrepod restart converges back to the exact
// cleared-signature set with no loss and no duplicate installs.
type ManagedClient struct {
	addr     string
	identity string
	opts     ManagedOptions

	mu      sync.Mutex
	client  *Client           // live session, nil while degraded
	cursors map[string]uint64 // sku → highest processed clear seq
	seen    map[string]bool   // installed signature IDs (dedupe)
	subs    map[string]bool   // SKUs subscribed at least once
	state   LinkState
	closing bool // Close() in progress: no new resync goroutines

	// Live-stream gap tracking: the server's per-subscriber notify
	// ring is drop-oldest, so a slow consumer can lose LIVE pushes
	// (replays are delivered synchronously and cannot be evicted).
	// liveNext is the next expected live sequence per SKU (head+1 at
	// subscribe time); a live push jumping past it means events were
	// evicted, and the SKU is marked dirty until a fetch resync
	// recovers the missing signatures — the cursor alone cannot, since
	// it advances to the highest seq seen.
	liveNext  map[string]uint64
	dirty     map[string]bool   // SKUs with unrecovered gaps
	gapGen    map[string]uint64 // bumped per detected gap (resync staleness check)
	resyncing map[string]bool   // per-SKU in-flight fetch resync

	// persistMu serializes outbox persistence: enqueue (any caller
	// goroutine), drainOutbox (the supervisor), and Close all persist,
	// and unserialized writers could rename each other's half-written
	// tmp file into place. Snapshotting under the same lock keeps
	// rename order consistent with snapshot recency.
	persistMu sync.Mutex
	outbox    *resilience.Ring[OutboxOp]

	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	reconnects  atomic.Uint64
	replayed    atomic.Uint64
	deduped     atomic.Uint64
	delivered   atomic.Uint64 // outbox ops delivered
	gaps        atomic.Uint64 // live-stream gaps detected (fetch-resynced)
	outageWarn  atomic.Bool   // journal sigrepo-down once per outage
	replayNote  atomic.Bool   // journal sigrepo-replay once per session
	linkUpGauge atomic.Bool   // mirrors the mLinkUp contribution
}

// DialManaged establishes a supervised session with the repository.
// The first dial is synchronous so an unreachable repository surfaces
// immediately; after that, every disconnect is retried under the
// backoff schedule with cursor-based resubscription.
func DialManaged(addr, identity string, opts ManagedOptions) (*ManagedClient, error) {
	if opts.OutboxCap < 1 {
		opts.OutboxCap = 256
	}
	m := &ManagedClient{
		addr:      addr,
		identity:  identity,
		opts:      opts,
		cursors:   make(map[string]uint64),
		seen:      make(map[string]bool),
		subs:      make(map[string]bool),
		state:     LinkDegraded,
		liveNext:  make(map[string]uint64),
		dirty:     make(map[string]bool),
		gapGen:    make(map[string]uint64),
		resyncing: make(map[string]bool),
		outbox:    resilience.NewRing[OutboxOp](opts.OutboxCap),
		stopped:   make(chan struct{}),
	}
	m.loadOutbox()
	conn, err := m.dial()
	if err != nil {
		return nil, fmt.Errorf("sigrepo: dial %s: %w", addr, err)
	}
	first := NewClient(conn, identity, m.handlePush)
	// The first session comes up synchronously so callers can publish
	// and fetch immediately after a successful dial (and so an
	// unreachable SKU feed surfaces in tests deterministically).
	m.sessionUp(first, 0)
	m.wg.Add(1)
	go m.supervise(first)
	return m, nil
}

func (m *ManagedClient) dial() (net.Conn, error) {
	if m.opts.Dial != nil {
		return m.opts.Dial(m.addr)
	}
	return net.DialTimeout("tcp", m.addr, 5*time.Second)
}

// supervise is the session lifecycle loop: run the session until it
// dies, journal the outage, redial under backoff, resubscribe with
// cursors, drain the outbox, repeat. The entry session is already up
// (DialManaged brought it up synchronously).
func (m *ManagedClient) supervise(c *Client) {
	defer m.wg.Done()
	bo := resilience.NewBackoff(m.opts.Backoff)
	for {
		select {
		case <-m.stopped:
			c.Close()
			<-c.Done()
			return
		case <-c.Done():
		}
		m.sessionDown(c)
		c = nil
		for c == nil {
			delay, ok := bo.Next()
			if !ok {
				journal.RecordTrace(0, journal.TypeSigrepoDown, journal.Critical, "",
					fmt.Sprintf("%s: northbound reconnect budget exhausted after %d attempts; link down",
						m.identity, bo.Attempt()))
				m.setState(LinkDown)
				return
			}
			select {
			case <-m.stopped:
				return
			case <-time.After(delay):
			}
			conn, err := m.dial()
			if err != nil {
				continue
			}
			c = NewClient(conn, m.identity, m.handlePush)
		}
		m.sessionUp(c, bo.Attempt())
		bo.Reset()
	}
}

// sessionUp installs the new session: journal + state first (so the
// replay events that follow are ordered after sigrepo-up), then
// resubscribe every known SKU from its cursor, repair any SKU with an
// unrecovered live-stream gap, then drain the outbox. The session's
// push handler was pinned in NewClient, before its read goroutine
// started.
func (m *ManagedClient) sessionUp(c *Client, attempt int) {
	m.mu.Lock()
	m.client = c
	skus := make(map[string]bool, len(m.subs))
	for sku := range m.subs {
		skus[sku] = true
	}
	m.mu.Unlock()
	if m.opts.SKUs != nil {
		for _, sku := range m.opts.SKUs() {
			if sku != "" {
				skus[sku] = true
			}
		}
	}
	m.reconnects.Add(1)
	mLinkReconnects.Inc()
	m.outageWarn.Store(false)
	m.replayNote.Store(false)
	journal.RecordTrace(0, journal.TypeSigrepoUp, journal.Info, "",
		fmt.Sprintf("%s: northbound session up (attempt %d, %d SKUs, outbox %d)",
			m.identity, attempt, len(skus), m.outbox.Len()))
	m.setState(LinkUp)

	ordered := make([]string, 0, len(skus))
	for sku := range skus {
		ordered = append(ordered, sku)
	}
	sort.Strings(ordered)
	for _, sku := range ordered {
		m.mu.Lock()
		since := m.cursors[sku] // 0 for a never-seen SKU → full backfill
		m.mu.Unlock()
		head, err := c.SubscribeSince(sku, since)
		if err != nil {
			if errors.Is(err, ErrRemote) {
				continue // repository rejected the SKU; not a link problem
			}
			c.Close() // transport death: supervisor redials
			return
		}
		m.mu.Lock()
		m.subs[sku] = true
		// Live events for this session start at head+1; anything after
		// that arriving out of sequence means the server evicted pushes.
		m.liveNext[sku] = head + 1
		m.mu.Unlock()
	}
	// SKUs whose gap resync never completed (the link died first) are
	// repaired now, before the session is trusted: the cursor may have
	// advanced past the evicted events, so only a fetch recovers them.
	m.mu.Lock()
	var dirty []string
	for sku := range m.dirty {
		dirty = append(dirty, sku)
	}
	m.mu.Unlock()
	sort.Strings(dirty)
	for _, sku := range dirty {
		if err := m.resync(c, sku); err != nil && !errors.Is(err, ErrRemote) {
			c.Close() // transport death mid-repair: SKU stays dirty, supervisor redials
			return
		}
	}
	m.drainOutbox(c)
}

// sessionDown records the loss (once per outage) and flips to
// degraded; queued work and cursors carry over to the next session.
func (m *ManagedClient) sessionDown(c *Client) {
	m.mu.Lock()
	m.client = nil
	m.mu.Unlock()
	if m.outageWarn.CompareAndSwap(false, true) {
		journal.RecordTrace(0, journal.TypeSigrepoDown, journal.Warn, "",
			fmt.Sprintf("%s: northbound session lost: %v (outbox %d queued)",
				m.identity, c.Err(), m.outbox.Len()))
	}
	select {
	case <-m.stopped:
		// Close() owns the final state transition.
	default:
		m.setState(LinkDegraded)
	}
}

// handlePush advances the SKU cursor, dedupes by signature ID, checks
// the live stream for sequence gaps (server-side ring evictions), and
// hands genuinely new signatures to OnInstall. Runs on the session's
// read goroutine, so gap recovery is dispatched to a separate
// goroutine (a Fetch here would deadlock against the reply reader).
func (m *ManagedClient) handlePush(p Push) {
	sku := p.Signature.SKU
	m.mu.Lock()
	if p.Seq > m.cursors[sku] {
		m.cursors[sku] = p.Seq
	}
	gap := false
	if want, tracked := m.liveNext[sku]; tracked && !p.Replay {
		if p.Seq > want {
			// Live pushes are per-SKU contiguous (every cleared event
			// notifies); a jump means the server evicted pushes for
			// this slow consumer. The cursor has already moved past
			// them, so only a fetch resync can recover the signatures.
			gap = true
			m.dirty[sku] = true
			m.gapGen[sku]++
		}
		if p.Seq >= want {
			m.liveNext[sku] = p.Seq + 1
		}
	}
	dup := m.seen[p.Signature.ID]
	if !dup {
		m.seen[p.Signature.ID] = true
	}
	m.mu.Unlock()
	if gap {
		m.gaps.Add(1)
		mLinkGaps.Inc()
		journal.RecordTrace(0, journal.TypeSigrepoReplay, journal.Warn, sku,
			fmt.Sprintf("%s: live notify gap on %s (got seq %d); scheduling fetch resync",
				m.identity, sku, p.Seq))
		m.triggerResync(sku)
	}
	if p.Replay {
		m.replayed.Add(1)
		mLinkReplayed.Inc()
		if m.replayNote.CompareAndSwap(false, true) {
			journal.RecordTrace(0, journal.TypeSigrepoReplay, journal.Info, p.Signature.SKU,
				fmt.Sprintf("%s: cursor replay resumed at seq %d (%s)", m.identity, p.Seq, p.Signature.ID))
		}
	}
	if dup {
		m.deduped.Add(1)
		mLinkDeduped.Inc()
		return
	}
	if m.opts.OnInstall != nil {
		m.opts.OnInstall(p.Signature, p.Replay)
	}
}

// triggerResync starts (at most one per SKU) a background fetch
// resync for a gap detected on the live stream. Runs off the read
// goroutine so the Fetch round-trip doesn't deadlock the reply path.
func (m *ManagedClient) triggerResync(sku string) {
	m.mu.Lock()
	if m.closing || m.resyncing[sku] || m.client == nil {
		// Already repairing, or no session: the SKU stays dirty and
		// sessionUp repairs it on the next (re)connect.
		m.mu.Unlock()
		return
	}
	c := m.client
	m.resyncing[sku] = true
	m.wg.Add(1) // under mu, ordered against Close()'s closing=true
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		err := m.resync(c, sku)
		m.mu.Lock()
		delete(m.resyncing, sku)
		// A gap detected after this resync's fetch snapshot re-marked
		// the SKU dirty; pick it up rather than leaving it for the
		// next reconnect.
		again := err == nil && m.dirty[sku]
		m.mu.Unlock()
		if again {
			m.triggerResync(sku)
		}
	}()
}

// resync repairs a live-stream gap by fetching the SKU's full cleared
// set and installing whatever dedupe hasn't seen. Over-delivery is
// safe (installs dedupe by signature ID); under-delivery is not, so
// the SKU is cleared from the dirty set only once a fetch taken after
// the last detected gap succeeds — if the link dies first, the next
// sessionUp retries. Must not run on the session's read goroutine.
func (m *ManagedClient) resync(c *Client, sku string) error {
	for {
		m.mu.Lock()
		gen := m.gapGen[sku]
		m.mu.Unlock()
		sigs, err := c.Fetch(sku)
		if err != nil {
			return err
		}
		recovered := 0
		for _, sig := range sigs {
			m.mu.Lock()
			if sig.ClearSeq > m.cursors[sku] {
				m.cursors[sku] = sig.ClearSeq
			}
			dup := m.seen[sig.ID]
			if !dup {
				m.seen[sig.ID] = true
			}
			m.mu.Unlock()
			if dup {
				continue
			}
			recovered++
			if m.opts.OnInstall != nil {
				m.opts.OnInstall(sig, true)
			}
		}
		m.mu.Lock()
		done := m.gapGen[sku] == gen
		if done {
			delete(m.dirty, sku)
		}
		m.mu.Unlock()
		journal.RecordTrace(0, journal.TypeSigrepoReplay, journal.Info, sku,
			fmt.Sprintf("%s: gap resync on %s recovered %d signature(s)", m.identity, sku, recovered))
		if done {
			return nil
		}
		// Another gap landed while fetching; snapshot again.
	}
}

// drainOutbox redelivers queued mutations in FIFO order. Repository
// rejections (ErrRemote — e.g. a duplicate vote whose first attempt
// did land before the connection died) are final and dropped; a
// transport failure requeues the undelivered tail for the next
// session. Publishes are exactly-once end to end because the
// repository dedupes identical (contributor, SKU, rule) resubmissions.
func (m *ManagedClient) drainOutbox(c *Client) {
	ops := m.outbox.Drain()
	if len(ops) == 0 {
		m.persistOutbox()
		return
	}
	deliveredN := 0
	for i, op := range ops {
		err := m.deliverOp(c, op)
		if err != nil && !errors.Is(err, ErrRemote) {
			// Transport failure: keep order, requeue the rest.
			for _, rest := range ops[i:] {
				if m.outbox.Push(rest) {
					mOutboxEvict.Inc()
				}
			}
			m.persistOutbox()
			return
		}
		if err != nil {
			journal.RecordTrace(0, journal.TypeSigrepoReplay, journal.Warn, op.SKU,
				fmt.Sprintf("%s: outbox %s rejected by repository: %v", m.identity, op.Op, err))
			continue
		}
		deliveredN++
		m.delivered.Add(1)
		mOutboxDelivered.Inc()
	}
	m.persistOutbox()
	if deliveredN > 0 {
		journal.RecordTrace(0, journal.TypeSigrepoReplay, journal.Info, "",
			fmt.Sprintf("%s: outbox drained, %d op(s) delivered", m.identity, deliveredN))
	}
}

func (m *ManagedClient) deliverOp(c *Client, op OutboxOp) error {
	switch op.Op {
	case "publish":
		_, err := c.Publish(op.SKU, op.Rule, op.Description)
		return err
	case "vote":
		_, err := c.Vote(op.SigID, op.Up)
		return err
	default:
		return nil // unknown op in a stale outbox file: drop
	}
}

// Publish shares a signature. With the link up it is delivered
// immediately; otherwise (or on a transport failure mid-call) it is
// queued in the outbox and delivered on reconnect, in which case the
// returned signature is nil with a nil error.
func (m *ManagedClient) Publish(sku, rule, description string) (*Signature, error) {
	if err := Validate(sku, rule); err != nil {
		return nil, err
	}
	if c := m.liveClient(); c != nil {
		sig, err := c.Publish(sku, rule, description)
		if err == nil {
			return sig, nil
		}
		if errors.Is(err, ErrRemote) {
			return nil, err
		}
		// Transport failure: ambiguous whether the publish landed; the
		// repository's idempotent-republish dedup makes the retry safe.
	}
	m.enqueue(OutboxOp{Op: "publish", SKU: sku, Rule: rule, Description: description})
	return nil, nil
}

// Vote casts a verdict. Queued like Publish when the link is down; a
// redelivered vote whose first attempt landed is rejected by the
// repository as a duplicate and dropped, preserving effect-once.
func (m *ManagedClient) Vote(sigID string, up bool) (*Signature, error) {
	if c := m.liveClient(); c != nil {
		sig, err := c.Vote(sigID, up)
		if err == nil {
			return sig, nil
		}
		if errors.Is(err, ErrRemote) {
			return nil, err
		}
	}
	m.enqueue(OutboxOp{Op: "vote", SigID: sigID, Up: up})
	return nil, nil
}

// Fetch proxies to the live session (errors while degraded).
func (m *ManagedClient) Fetch(sku string) ([]Signature, error) {
	c := m.liveClient()
	if c == nil {
		return nil, ErrClosed
	}
	return c.Fetch(sku)
}

// Watch adds a SKU to the subscription set. With the link up it
// subscribes immediately (from cursor 0 → full backfill); while
// degraded the SKU is picked up by the next session.
func (m *ManagedClient) Watch(sku string) error {
	m.mu.Lock()
	already := m.subs[sku]
	m.subs[sku] = true
	c := m.client
	m.mu.Unlock()
	if already || c == nil {
		return nil
	}
	m.mu.Lock()
	since := m.cursors[sku]
	m.mu.Unlock()
	head, err := c.SubscribeSince(sku, since)
	if err != nil && !errors.Is(err, ErrRemote) {
		c.Close() // supervisor will resubscribe everything on reconnect
	}
	if err == nil {
		m.mu.Lock()
		m.liveNext[sku] = head + 1
		m.mu.Unlock()
	}
	return err
}

func (m *ManagedClient) liveClient() *Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == LinkUp {
		return m.client
	}
	return nil
}

func (m *ManagedClient) enqueue(op OutboxOp) {
	if m.outbox.Push(op) {
		mOutboxEvict.Inc()
	}
	m.persistOutbox()
}

// persistOutbox writes the pending ops to OutboxPath (tmp + rename).
// persistMu serializes concurrent persists (enqueue callers, the
// supervisor's drain, Close): without it two writers share one tmp
// path and can rename a partially written file into place, corrupting
// the durable outbox. Snapshot-under-lock also guarantees the last
// rename carries the newest state. The depth gauge lives in the
// per-link ExportTelemetry collector, not here — a process-global
// gauge Set() from several links would just overwrite itself.
func (m *ManagedClient) persistOutbox() {
	if m.opts.OutboxPath == "" {
		return
	}
	m.persistMu.Lock()
	defer m.persistMu.Unlock()
	ops := m.outbox.Snapshot()
	data, err := json.MarshalIndent(ops, "", "  ")
	if err != nil {
		return
	}
	tmp := m.opts.OutboxPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, m.opts.OutboxPath)
}

// loadOutbox restores queued ops from a previous run.
func (m *ManagedClient) loadOutbox() {
	if m.opts.OutboxPath == "" {
		return
	}
	data, err := os.ReadFile(m.opts.OutboxPath)
	if err != nil {
		return
	}
	var ops []OutboxOp
	if err := json.Unmarshal(data, &ops); err != nil {
		return
	}
	for _, op := range ops {
		if m.outbox.Push(op) {
			mOutboxEvict.Inc()
		}
	}
}

// setState publishes a state transition.
func (m *ManagedClient) setState(s LinkState) {
	m.mu.Lock()
	if m.state == s {
		m.mu.Unlock()
		return
	}
	m.state = s
	m.mu.Unlock()
	if s == LinkUp {
		if m.linkUpGauge.CompareAndSwap(false, true) {
			mLinkUp.Inc()
		}
	} else {
		if m.linkUpGauge.CompareAndSwap(true, false) {
			mLinkUp.Dec()
		}
	}
	if m.opts.OnStateChange != nil {
		m.opts.OnStateChange(s)
	}
}

// State reports the link's current health.
func (m *ManagedClient) State() LinkState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Cursor reports the highest processed clear sequence for a SKU.
func (m *ManagedClient) Cursor(sku string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cursors[sku]
}

// Cursors returns a copy of every SKU cursor.
func (m *ManagedClient) Cursors() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.cursors))
	for k, v := range m.cursors {
		out[k] = v
	}
	return out
}

// OutboxDepth reports queued, undelivered mutations.
func (m *ManagedClient) OutboxDepth() int { return m.outbox.Len() }

// Reconnects reports session establishments (including the first).
func (m *ManagedClient) Reconnects() uint64 { return m.reconnects.Load() }

// Replayed reports cursor-replayed notifications received.
func (m *ManagedClient) Replayed() uint64 { return m.replayed.Load() }

// Deduped reports duplicate notifications suppressed.
func (m *ManagedClient) Deduped() uint64 { return m.deduped.Load() }

// OutboxDelivered reports outbox ops delivered after reconnects.
func (m *ManagedClient) OutboxDelivered() uint64 { return m.delivered.Load() }

// Gaps reports live-stream sequence gaps detected (each repaired by a
// fetch resync).
func (m *ManagedClient) Gaps() uint64 { return m.gaps.Load() }

// Close stops the supervisor, persists the outbox, and marks the
// link down. Idempotent.
func (m *ManagedClient) Close() {
	m.stopOnce.Do(func() { close(m.stopped) })
	m.mu.Lock()
	// closing is ordered (under mu) against triggerResync's wg.Add, so
	// no resync goroutine can start once Wait below has begun.
	m.closing = true
	c := m.client
	m.mu.Unlock()
	if c != nil {
		c.Close()
	}
	m.wg.Wait()
	m.persistOutbox()
	m.setState(LinkDown)
}

// ExportTelemetry registers a scrape-time collector exposing the
// link's state, cursors, and outbox under iotsec_sigrepo_link_*
// gauges labeled by link name (re-registering for the same link
// replaces the previous collector).
func (m *ManagedClient) ExportTelemetry(reg *telemetry.Registry, link string) {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.RegisterCollector("sigrepo-link:"+link, func(emit func(string, telemetry.Kind, string, telemetry.Labels, float64)) {
		base := telemetry.Labels{{Key: "link", Value: link}}
		emit("iotsec_sigrepo_link_state", telemetry.KindGauge,
			"Managed link state (0 down, 1 degraded, 2 up).", base, float64(m.State()))
		emit("iotsec_sigrepo_link_outbox_depth", telemetry.KindGauge,
			"Queued publish/vote operations awaiting delivery.", base, float64(m.OutboxDepth()))
		emit("iotsec_sigrepo_link_reconnects_total", telemetry.KindCounter,
			"Session establishments for this link.", base, float64(m.Reconnects()))
		emit("iotsec_sigrepo_link_replayed_total", telemetry.KindCounter,
			"Cursor-replayed notifications received on this link.", base, float64(m.Replayed()))
		emit("iotsec_sigrepo_link_dedup_total", telemetry.KindCounter,
			"Duplicate notifications suppressed on this link.", base, float64(m.Deduped()))
		emit("iotsec_sigrepo_link_outbox_delivered_total", telemetry.KindCounter,
			"Outbox operations delivered on this link.", base, float64(m.OutboxDelivered()))
		emit("iotsec_sigrepo_link_gaps_total", telemetry.KindCounter,
			"Live-stream sequence gaps detected on this link (fetch-resynced).", base, float64(m.Gaps()))
		cursors := m.Cursors()
		skus := make([]string, 0, len(cursors))
		for sku := range cursors {
			skus = append(skus, sku)
		}
		sort.Strings(skus)
		for _, sku := range skus {
			emit("iotsec_sigrepo_link_cursor", telemetry.KindGauge,
				"Highest processed cleared-event sequence per SKU.",
				telemetry.Labels{{Key: "link", Value: link}, {Key: "sku", Value: sku}},
				float64(cursors[sku]))
		}
	})
}

// Health is a telemetry.HealthReporter for the managed link: Up maps
// to Healthy, Degraded (reconnecting under backoff, outbox queueing)
// to Degraded, Down (not yet connected or supervisor stopped) to
// Down. The reason carries the operational detail a /readyz probe
// needs to be actionable.
func (m *ManagedClient) Health() (telemetry.HealthState, string) {
	switch m.State() {
	case LinkUp:
		return telemetry.HealthHealthy, ""
	case LinkDegraded:
		return telemetry.HealthDegraded, fmt.Sprintf(
			"reconnecting (outbox %d queued, %d reconnects, %d gaps)",
			m.OutboxDepth(), m.Reconnects(), m.Gaps())
	default:
		return telemetry.HealthDown, fmt.Sprintf(
			"link down (outbox %d queued)", m.OutboxDepth())
	}
}

// RegisterHealth registers the link in the component-health registry
// as "sigrepo-link:<link>". The northbound link is advisory for a
// gateway (enforcement works without crowd updates), so callers
// normally pass critical=false — readiness then reports it without
// gating on it.
func (m *ManagedClient) RegisterHealth(h *telemetry.HealthRegistry, link string, critical bool) {
	h.Register("sigrepo-link:"+link, critical, m.Health)
}
