package sigrepo

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"iotsec/internal/telemetry"
)

// Wire protocol: newline-delimited JSON messages over TCP. Clients
// send requests; the server answers each with one response and pushes
// "notify" messages asynchronously for subscriptions.

// wireRequest is a client → server message.
type wireRequest struct {
	Op          string `json:"op"` // publish | vote | fetch | subscribe | skus
	Identity    string `json:"identity"`
	SKU         string `json:"sku,omitempty"`
	Rule        string `json:"rule,omitempty"`
	Description string `json:"description,omitempty"`
	SigID       string `json:"sig_id,omitempty"`
	Up          bool   `json:"up,omitempty"`
}

// wireResponse is a server → client message.
type wireResponse struct {
	Kind       string      `json:"kind"` // reply | notify
	OK         bool        `json:"ok"`
	Error      string      `json:"error,omitempty"`
	Signature  *Signature  `json:"signature,omitempty"`
	Signatures []Signature `json:"signatures,omitempty"`
	SKUs       []string    `json:"skus,omitempty"`
	Priority   bool        `json:"priority,omitempty"`
}

// Server exposes a Repository over TCP.
type Server struct {
	repo *Repository

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps the repository.
func NewServer(repo *Repository) *Server {
	return &Server{repo: repo, conns: make(map[net.Conn]bool)}
}

// Listen binds and serves on addr, returning the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sigrepo: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	mServerConns.Inc()
	defer func() {
		mServerConns.Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	var writeMu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp wireResponse) {
		writeMu.Lock()
		defer writeMu.Unlock()
		_ = enc.Encode(resp)
	}

	var cancels []func()
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var req wireRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			send(wireResponse{Kind: "reply", Error: "bad request: " + err.Error()})
			continue
		}
		mServerRequests.Inc()
		// Each wire request is a fresh causal chain on the repository
		// side; the root span gives it a trace ID the journal records
		// under.
		ctx, span := telemetry.StartSpan(context.Background(), "sigrepo.server."+req.Op)
		switch req.Op {
		case "publish":
			sig, err := s.repo.Publish(ctx, req.Identity, req.SKU, req.Rule, req.Description)
			if err != nil {
				send(wireResponse{Kind: "reply", Error: err.Error()})
				span.End()
				continue
			}
			send(wireResponse{Kind: "reply", OK: true, Signature: sig})
		case "vote":
			sig, err := s.repo.Vote(ctx, req.Identity, req.SigID, req.Up)
			if err != nil {
				send(wireResponse{Kind: "reply", Error: err.Error()})
				span.End()
				continue
			}
			send(wireResponse{Kind: "reply", OK: true, Signature: sig})
		case "fetch":
			send(wireResponse{Kind: "reply", OK: true, Signatures: s.repo.Fetch(req.SKU)})
		case "skus":
			send(wireResponse{Kind: "reply", OK: true, SKUs: s.repo.SKUs()})
		case "subscribe":
			cancel := s.repo.Subscribe(req.Identity, req.SKU, func(n Notification) {
				sig := n.Signature
				send(wireResponse{Kind: "notify", OK: true, Signature: &sig, Priority: n.Priority})
			})
			cancels = append(cancels, cancel)
			send(wireResponse{Kind: "reply", OK: true})
		default:
			send(wireResponse{Kind: "reply", Error: "unknown op " + req.Op})
		}
		span.End()
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client talks to a sigrepo Server. Safe for sequential use; one
// request in flight at a time, with asynchronous notifications
// delivered to OnNotify.
type Client struct {
	identity string
	conn     net.Conn
	enc      *json.Encoder

	// OnNotify receives pushed signatures; set before Subscribe.
	OnNotify func(sig Signature, priority bool)

	replies chan wireResponse
	done    chan struct{}
}

// DialClient connects to the repository as the given identity.
func DialClient(addr, identity string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sigrepo: dial: %w", err)
	}
	c := &Client{
		identity: identity,
		conn:     conn,
		enc:      json.NewEncoder(conn),
		replies:  make(chan wireResponse, 4),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var resp wireResponse
		if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
			continue
		}
		if resp.Kind == "notify" {
			if c.OnNotify != nil && resp.Signature != nil {
				c.OnNotify(*resp.Signature, resp.Priority)
			}
			continue
		}
		select {
		case c.replies <- resp:
		default:
		}
	}
}

// call sends one request and waits for its reply.
func (c *Client) call(req wireRequest) (wireResponse, error) {
	req.Identity = c.identity
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, err
	}
	select {
	case resp := <-c.replies:
		if resp.Error != "" {
			return resp, fmt.Errorf("sigrepo: %s", resp.Error)
		}
		return resp, nil
	case <-c.done:
		return wireResponse{}, fmt.Errorf("sigrepo: connection closed")
	}
}

// Publish shares a signature.
func (c *Client) Publish(sku, rule, description string) (*Signature, error) {
	resp, err := c.call(wireRequest{Op: "publish", SKU: sku, Rule: rule, Description: description})
	if err != nil {
		return nil, err
	}
	return resp.Signature, nil
}

// Vote casts a verdict on a signature.
func (c *Client) Vote(sigID string, up bool) (*Signature, error) {
	resp, err := c.call(wireRequest{Op: "vote", SigID: sigID, Up: up})
	if err != nil {
		return nil, err
	}
	return resp.Signature, nil
}

// Fetch lists cleared signatures for a SKU.
func (c *Client) Fetch(sku string) ([]Signature, error) {
	resp, err := c.call(wireRequest{Op: "fetch", SKU: sku})
	if err != nil {
		return nil, err
	}
	return resp.Signatures, nil
}

// SKUs lists SKUs known to the repository.
func (c *Client) SKUs() ([]string, error) {
	resp, err := c.call(wireRequest{Op: "skus"})
	if err != nil {
		return nil, err
	}
	return resp.SKUs, nil
}

// Subscribe registers for pushed signatures on a SKU.
func (c *Client) Subscribe(sku string) error {
	_, err := c.call(wireRequest{Op: "subscribe", SKU: sku})
	return err
}

// Close drops the connection.
func (c *Client) Close() { _ = c.conn.Close() }
