package openflow

import "iotsec/internal/telemetry"

// Southbound-channel resilience metrics (controller side), aggregated
// across every endpoint in the process. The agent-side counterparts
// (reconnects, punts dropped, replay depth) live in internal/netsim.
var (
	mSessions = telemetry.NewGauge(
		"iotsec_southbound_sessions",
		"Switch sessions currently registered on controller endpoints.")
	mHeartbeatMisses = telemetry.NewCounter(
		"iotsec_southbound_heartbeat_misses_total",
		"Heartbeat intervals that elapsed with the previous ECHO unanswered.")
	mSessionsReaped = telemetry.NewCounter(
		"iotsec_southbound_sessions_reaped_total",
		"Half-dead switch sessions reaped by the missed-beat threshold.")
)
