package core

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/journal"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/profile"
	"iotsec/internal/slo"
)

// profilePlatform builds a one-camera deployment with the profile
// plane enabled (enforce + lockdown), a quarantine-on-suspicious
// policy, and a live steering application on the uplink switch.
func profilePlatform(t *testing.T, name, ip string) (*Platform, *ProfilePlane, *controller.Steering) {
	t.Helper()
	d := policy.NewDomain()
	d.AddDevice(name, policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine-" + name + "-suspicious",
		Conditions: []policy.Condition{policy.DeviceIs(name, policy.ContextSuspicious)},
		Device:     name,
		Posture:    policy.Posture{Isolate: true},
		Priority:   100,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plane := p.EnableProfiles(ProfileOptions{Enforce: true, Lockdown: true})
	cam := device.NewCamera(name, packet.MustParseIPv4(ip))
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)

	s := controller.NewSteering(nil)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	agent, err := netsim.ConnectAgent(p.Switch, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	p.UseSteering(s)
	deadline := time.Now().Add(3 * time.Second)
	for !strings.Contains(s.String(), "1 switches") {
		if time.Now().After(deadline) {
			t.Fatalf("switch never registered: %s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return p, plane, s
}

// udpSink binds a counter handler on a client port; payload
// discrimination lets tests tell frames apart.
func udpSink(t *testing.T, st *netsim.Stack, port uint16, want string) *atomic.Int64 {
	t.Helper()
	var n atomic.Int64
	if err := st.HandleUDP(port, func(_ packet.IPv4Address, _ uint16, payload []byte) {
		if string(payload) == want {
			n.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return &n
}

// dumpJournalOnFailure exports the forensic journal as NDJSON to
// $IOTSEC_CHAOS_JOURNAL when the test fails, so the CI profiles stage
// can upload the learn→enforce→violate→quarantine timeline as an
// artifact (same contract as the chaos stage).
func dumpJournalOnFailure(t *testing.T) {
	path := os.Getenv("IOTSEC_CHAOS_JOURNAL")
	if path == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("journal dump: %v", err)
			return
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, e := range journal.Default.Snapshot(journal.Filter{}) {
			_ = enc.Encode(e)
		}
		t.Logf("forensic journal dumped to %s", path)
	})
}

// prioCount counts installed switch rules at one priority.
func prioCount(p *Platform, prio uint16) int {
	n := 0
	for _, e := range p.Switch.Table().Entries() {
		if e.Priority == prio {
			n++
		}
	}
	return n
}

// TestProfileLifecycleViolationQuarantinesWithinSLO is the PR's
// acceptance scenario: a device's behavior is learned into a SKU
// profile, the profile is enforced as deny-by-default switch rules,
// and when the device then steps outside its allowlist the violation
// drives the standard anomaly→posture→FLOW_MOD chain — one trace in
// the forensic journal, quarantine inside the detect→enforce SLO.
func TestProfileLifecycleViolationQuarantinesWithinSLO(t *testing.T) {
	dumpJournalOnFailure(t)
	p, plane, s := profilePlatform(t, "pcam", "10.0.1.10")
	cam, _ := p.Device("pcam")
	client := newClient(t, p, "10.0.1.200")
	clientIP := client.Stack.IP()
	got := udpSink(t, client.Stack, 9000, "checkin")

	// Training window: the camera's one habit is a UDP check-in to the
	// client on 9000.
	plane.StartLearning()
	if err := cam.Device.Stack().SendUDP(clientIP, 9000, 33000, []byte("checkin")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "training traffic", func() bool { return got.Load() >= 1 })

	profiles := plane.FinishLearning(context.Background())
	if len(profiles) != 1 || profiles[0].SKU != cam.Device.Profile.SKU {
		t.Fatalf("distilled %+v, want one profile for %s", profiles, cam.Device.Profile.SKU)
	}
	if !profiles[0].Allows("udp", 33000, 9000, clientIP) {
		t.Fatalf("learned profile does not allow the observed check-in: %+v", profiles[0].Services)
	}

	// Enforce mode pushed the compiled rule set: deny floor + allows
	// land on the switch through the agent.
	waitFor(t, "deny floor on switch", func() bool {
		return prioCount(p, profile.PriorityDeny) >= 2 && prioCount(p, profile.PriorityAllow) >= 2
	})
	if got := plane.Engine().EnforcedDevices(); len(got) != 1 || got[0] != "pcam" {
		t.Fatalf("enforced devices = %v", got)
	}

	// Authorized behavior still flows under the deny floor.
	if err := cam.Device.Stack().SendUDP(clientIP, 9000, 33000, []byte("checkin")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "authorized traffic under enforcement", func() bool { return got.Load() >= 2 })

	// MTTR accounting from here: the tracker sees the violation chain.
	tracker := slo.NewTracker(journal.Default, slo.Options{ChainTimeout: 5 * time.Second})
	defer tracker.Close()

	// The device steps outside its profile.
	start := time.Now()
	if err := cam.Device.Stack().SendUDP(clientIP, 4444, 7000, []byte("exfil")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "quarantine", func() bool { return s.Isolated("pcam") })
	mttr := time.Since(start)
	if mttr > 5*time.Second {
		t.Errorf("detect→enforce took %s, over the 5s SLO", mttr)
	}

	// One trace carries the whole story: profile-violation, the
	// anomaly it implies, the posture flip, and the quarantine
	// FLOW_MODs, in causal order.
	viols := journal.Default.Snapshot(journal.Filter{Device: "pcam", Type: journal.TypeProfileViolation})
	if len(viols) == 0 {
		t.Fatal("no profile-violation journaled")
	}
	traceID := viols[len(viols)-1].TraceID
	if traceID == 0 {
		t.Fatal("violation journaled without a trace")
	}
	timeline := journal.Reconstruct(journal.Default.Snapshot(journal.Filter{TraceID: traceID, Limit: 0}), traceID)
	var violSeq, anomSeq, postureSeq, flowSeq uint64
	for _, e := range timeline.Events {
		switch e.Type {
		case journal.TypeProfileViolation:
			violSeq = e.Seq
		case journal.TypeAnomaly:
			anomSeq = e.Seq
		case journal.TypePosture:
			postureSeq = e.Seq
		case journal.TypeFlowMod:
			if flowSeq == 0 {
				flowSeq = e.Seq
			}
		}
	}
	if violSeq == 0 || anomSeq == 0 || postureSeq == 0 || flowSeq == 0 {
		t.Fatalf("incomplete chain (viol=%d anom=%d posture=%d flow=%d):\n%s",
			violSeq, anomSeq, postureSeq, flowSeq, timeline.Render())
	}
	if !(violSeq < anomSeq && anomSeq < postureSeq && postureSeq < flowSeq) {
		t.Fatalf("causal order violated (viol=%d anom=%d posture=%d flow=%d):\n%s",
			violSeq, anomSeq, postureSeq, flowSeq, timeline.Render())
	}
	waitFor(t, "quarantine drops on switch", func() bool { return prioCount(p, 400) >= 2 })

	// The MTTR pipeline folded the chain into its histograms.
	waitFor(t, "MTTR chain completion", func() bool {
		tracker.Sync()
		return tracker.E2E().Count() >= 1
	})
	if q := tracker.E2E().Quantile(0.99); q > 5 {
		t.Errorf("chain e2e p99 = %.3fs, over the 5s SLO", q)
	}
}

// TestProfileAddressHopStaysBlocked: under an enforced profile,
// privilege follows the registered identity. The exact service tuple
// that flows with the device's own address is dropped at the switch
// when sourced from a hopped address — before, and independent of,
// the quarantine that follows.
func TestProfileAddressHopStaysBlocked(t *testing.T) {
	dumpJournalOnFailure(t)
	p, plane, s := profilePlatform(t, "hopcam", "10.0.2.10")
	cam, _ := p.Device("hopcam")
	client := newClient(t, p, "10.0.2.200")
	clientIP := client.Stack.IP()
	var legit, spoofed atomic.Int64
	if err := client.Stack.HandleUDP(9000, func(_ packet.IPv4Address, _ uint16, payload []byte) {
		switch string(payload) {
		case "checkin":
			legit.Add(1)
		case "spoofed":
			spoofed.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}

	plane.StartLearning()
	if err := cam.Device.Stack().SendUDP(clientIP, 9000, 33000, []byte("checkin")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "training traffic", func() bool { return legit.Load() >= 1 })
	plane.FinishLearning(context.Background())
	waitFor(t, "profile rules on switch", func() bool {
		return prioCount(p, profile.PriorityDeny) >= 2 && prioCount(p, profile.PriorityAllow) >= 2
	})

	// Authorized tuple from the registered identity: delivered.
	if err := cam.Device.Stack().SendUDP(clientIP, 9000, 33000, []byte("checkin")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "authorized delivery", func() bool { return legit.Load() >= 2 })

	// Same MAC, same tuple, hopped source address: hand-built frame
	// injected below the stack's own addressing.
	clientMAC, ok := cam.Device.Stack().LookupARP(clientIP)
	if !ok {
		t.Fatal("camera has no ARP entry for the client it just reached")
	}
	udp := &packet.UDP{SrcPort: 33000, DstPort: 9000}
	hopIP := packet.MustParseIPv4("10.0.2.66")
	udp.SetNetworkForChecksum(hopIP, clientIP)
	b := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: cam.Device.MAC(), DstMAC: clientMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: hopIP, DstIP: clientIP, Protocol: packet.IPProtocolUDP},
		udp,
		packet.NewPayload([]byte("spoofed")),
	); err != nil {
		t.Fatal(err)
	}
	cam.Device.Stack().InjectFrame(b.Bytes())

	// The tap flags the hop and the posture plane quarantines the
	// device identity.
	waitFor(t, "address-hop violation", func() bool {
		for _, v := range plane.Engine().Violations() {
			if v.Device == "hopcam" && v.Kind == profile.ViolationAddressHop {
				return true
			}
		}
		return false
	})
	waitFor(t, "identity quarantine", func() bool { return s.Isolated("hopcam") })

	// The spoofed frame never reached the client: it died on the deny
	// floor, where only the registered address earns the allow rules.
	time.Sleep(50 * time.Millisecond)
	if n := spoofed.Load(); n != 0 {
		t.Fatalf("spoofed frame delivered %d times; identity pinning failed", n)
	}
	if legit.Load() != 2 {
		t.Errorf("legit deliveries = %d, want exactly 2", legit.Load())
	}
}

// TestProfileRogueJoinQuarantined: with lockdown on, a device that
// joins the fabric without being admitted is cut off at the switch —
// and the event is journaled as a rogue quarantine, not as an anomaly
// (no detect→enforce chain is opened for a device the posture plane
// does not manage).
func TestProfileRogueJoinQuarantined(t *testing.T) {
	dumpJournalOnFailure(t)
	p, plane, s := profilePlatform(t, "gcam", "10.0.3.10")
	client := newClient(t, p, "10.0.3.200")
	clientIP := client.Stack.IP()
	got := udpSink(t, client.Stack, 9000, "rogue-data")

	// An unadmitted stack wires itself straight to the uplink switch.
	rogueMAC := packet.MACAddress{0x02, 0xbb, 0, 0, 0, 0x66}
	rogue := netsim.NewStack("intruder", rogueMAC, packet.MustParseIPv4("10.0.3.66"))
	t.Cleanup(rogue.Stop)
	sp := p.Switch.AttachPort(p.Network, 250)
	p.Network.Connect(rogue.Attach(p.Network), sp, netsim.LinkOptions{})

	// Its first frames (ARP, then data) trip the lockdown.
	if err := rogue.SendUDP(clientIP, 9000, 40000, []byte("rogue-data")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rogue quarantine rules", func() bool {
		return s.Isolated("rogue-"+rogueMAC.String()) && prioCount(p, 400) >= 2
	})
	if got := plane.Engine().Rogues(); len(got) != 1 || got[0] != rogueMAC.String() {
		t.Fatalf("engine rogues = %v", got)
	}
	events := journal.Default.Snapshot(journal.Filter{Type: journal.TypeRogueQuarantine})
	found := false
	for _, e := range events {
		if strings.Contains(e.Detail, rogueMAC.String()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rogue-quarantine journal event for %s", rogueMAC)
	}
	// No anomaly chain for an unmanaged sender: quarantine is not an
	// MTTR event.
	if anoms := journal.Default.Snapshot(journal.Filter{Device: "intruder", Type: journal.TypeAnomaly}); len(anoms) != 0 {
		t.Errorf("rogue join opened an anomaly chain: %+v", anoms)
	}

	// With the drops installed, further rogue datagrams die at the
	// switch.
	before := got.Load()
	if err := rogue.SendUDP(clientIP, 9000, 40001, []byte("rogue-data")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got.Load() != before {
		t.Error("rogue traffic still delivered after quarantine")
	}
}

// TestProfileFirmwareDriftRelearn: a second training window distills a
// higher-version profile that supersedes the first everywhere — the
// old habit is no longer authorized, and stale replays of the v1
// profile cannot regress the plane.
func TestProfileFirmwareDriftRelearn(t *testing.T) {
	dumpJournalOnFailure(t)
	d := policy.NewDomain()
	d.AddDevice("dcam", policy.ContextNormal, policy.ContextSuspicious)
	p, err := New(Options{Policy: policy.NewFSM(d)})
	if err != nil {
		t.Fatal(err)
	}
	plane := p.EnableProfiles(ProfileOptions{Enforce: false})
	cam := device.NewCamera("dcam", packet.MustParseIPv4("10.0.4.10"))
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	client := newClient(t, p, "10.0.4.200")
	clientIP := client.Stack.IP()
	v1got := udpSink(t, client.Stack, 9000, "v1")
	v2got := udpSink(t, client.Stack, 9100, "v2")
	sku := cam.Device.Profile.SKU

	plane.StartLearning()
	if err := cam.Device.Stack().SendUDP(clientIP, 9000, 33000, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v1 traffic", func() bool { return v1got.Load() >= 1 })
	plane.FinishLearning(context.Background())
	prof1, ok := plane.Engine().Profile(sku)
	if !ok || prof1.Version != 1 || !prof1.Allows("udp", 33000, 9000, clientIP) {
		t.Fatalf("v1 profile = %+v", prof1)
	}

	// Firmware update: the device's behavior legitimately changes.
	plane.StartLearning()
	if err := cam.Device.Stack().SendUDP(clientIP, 9100, 33000, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v2 traffic", func() bool { return v2got.Load() >= 1 })
	plane.FinishLearning(context.Background())

	prof2, ok := plane.Engine().Profile(sku)
	if !ok || prof2.Version != 2 {
		t.Fatalf("relearned profile = %+v, want version 2", prof2)
	}
	if !prof2.Allows("udp", 33000, 9100, clientIP) {
		t.Error("new behavior not in the v2 profile")
	}
	if prof2.Allows("udp", 33000, 9000, clientIP) {
		t.Error("old behavior still authorized after re-learning")
	}
	// A stale v1 (e.g. a crowd cursor replay) does not regress v2.
	plane.Install(context.Background(), prof1, "stale-replay")
	if cur, _ := plane.Engine().Profile(sku); cur.Version != 2 || cur.Allows("udp", 33000, 9000, clientIP) {
		t.Fatalf("stale replay regressed the profile: %+v", cur)
	}
}
