package controller

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"iotsec/internal/journal"
)

// rehomeEntry records where a failed-over partition's events go now: a
// replacement local hosted by a surviving group, or nil for degraded
// fail-global mode (every event escalates to the global controller).
type rehomeEntry struct {
	local *Local
	// host is the surviving group carrying the replacement (-1 when the
	// partition fell back to the global controller).
	host int
	at   time.Time
}

// rehomeTable is the copy-on-write routing override consulted by
// routeFor. A new table is published atomically per failover so the
// event hot path never takes rehomeMu.
type rehomeTable struct {
	targets map[int]*rehomeEntry
}

// RehomeTarget describes one failed-over partition for operators
// (mboxctl controllers, /debug/controllers).
type RehomeTarget struct {
	// Group is the dead partition.
	Group int `json:"group"`
	// Target names the new home: "shard-NNN" or "global".
	Target string `json:"target"`
	// At is when re-homing completed.
	At time.Time `json:"at"`
}

// Rehomed reports a partition's re-home target, if it failed over.
func (h *Hierarchy) Rehomed(group int) (RehomeTarget, bool) {
	rt := h.rehomes.Load()
	if rt == nil {
		return RehomeTarget{}, false
	}
	ent, ok := rt.targets[group]
	if !ok {
		return RehomeTarget{}, false
	}
	return RehomeTarget{Group: group, Target: rehomeTargetName(ent.host), At: ent.at}, true
}

// RehomedAll lists every failed-over partition, sorted by group.
func (h *Hierarchy) RehomedAll() []RehomeTarget {
	rt := h.rehomes.Load()
	if rt == nil {
		return nil
	}
	out := make([]RehomeTarget, 0, len(rt.targets))
	for g, ent := range rt.targets {
		out = append(out, RehomeTarget{Group: g, Target: rehomeTargetName(ent.host), At: ent.at})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// rehomeTargetName renders a host group as the operator-facing name,
// matching the fleet rollup's shard naming.
func rehomeTargetName(host int) string {
	if host < 0 {
		return "global"
	}
	return fmt.Sprintf("shard-%03d", host)
}

// rehomeResult summarizes a completed re-home for the supervisor's
// journal events and failover history.
type rehomeResult struct {
	// Target is the new home's operator-facing name.
	Target string
	// Host is the adopting group (-1 = global).
	Host int
	// VarsRestored counts view variables seeded into the new home.
	VarsRestored int
	// EventsReplayed counts forensic-journal view-changes re-applied on
	// top of the checkpoint.
	EventsReplayed int
}

// rehome executes the deterministic re-homing protocol for a dead
// partition: rebuild its view from the latest checkpoint plus a replay
// of every view-change journaled after the checkpoint's sequence, then
// hand the partition to a surviving local (least-loaded, ties broken by
// group id) or to the global controller in fail-global mode. The caller
// (the supervisor) has already re-pushed quarantines — state restore
// runs strictly after the fail-closed step.
//
// j receives the partition-rehomed event; view-change replay always
// reads journal.Default because View.apply records there.
func (h *Hierarchy) rehome(ctx context.Context, group int, failGlobal bool, ck Checkpoint, j *journal.Journal, now time.Time) rehomeResult {
	h.rehomeMu.Lock()
	defer h.rehomeMu.Unlock()

	// Rebuild the orphan's variable set: checkpoint first, then replay
	// everything journaled after ck.Seq that falls in the partition's
	// scope. Overlap is harmless (Restore is idempotent); a missing
	// checkpoint (zero ck) replays the whole retained journal.
	vars := make(map[string]string, len(ck.Vars))
	for k, v := range ck.Vars {
		vars[k] = v
	}
	replayed := 0
	for _, e := range journal.Default.Snapshot(journal.Filter{Type: journal.TypeViewChange}) {
		if e.Seq <= ck.Seq {
			continue
		}
		varName, value, ok := parseViewChangeDetail(e.Detail)
		if !ok || !h.varInGroup(varName, group) {
			continue
		}
		vars[varName] = value
		replayed++
	}

	host := -1
	if !failGlobal {
		host = h.chooseHostLocked(group)
	}

	res := rehomeResult{Host: host, Target: rehomeTargetName(host), VarsRestored: len(vars), EventsReplayed: replayed}
	ent := &rehomeEntry{host: host, at: now}
	if host >= 0 {
		// Rebuild a replacement local from the retained rule subset, seed
		// it, publish routing, then reconcile once: events arriving after
		// the publish land on the replacement while it pushes deltas.
		repl := h.newLocalFor(group)
		version := repl.View.Restore(vars)
		repl.seedPostures(ck.Postures)
		ent.local = repl
		h.publishRehomeLocked(group, ent)
		h.adopted[host] += len(h.groupDevices(group))
		repl.reconcile(ctx, version)
	} else {
		// Degraded fail-global: the global controller runs the full
		// policy, so seeding the orphan's variables into the global view
		// and reconciling once makes it authoritative for the partition.
		version := h.Global.View.Restore(vars)
		h.publishRehomeLocked(group, ent)
		h.Global.reconcile(ctx, version)
	}

	if j == nil {
		j = journal.Default
	}
	j.Record(ctx, journal.TypeCtrlRehomed, journal.Warn, "",
		fmt.Sprintf("partition %d re-homed to %s: %d vars restored (%d replayed from journal after ckpt seq %d), %d postures seeded",
			group, res.Target, res.VarsRestored, res.EventsReplayed, ck.Seq, len(ck.Postures)))
	return res
}

// publishRehomeLocked installs a routing override copy-on-write.
// Callers hold rehomeMu.
func (h *Hierarchy) publishRehomeLocked(group int, ent *rehomeEntry) {
	old := h.rehomes.Load()
	next := &rehomeTable{targets: make(map[int]*rehomeEntry, 1)}
	if old != nil {
		for g, e := range old.targets {
			next.targets[g] = e
		}
	}
	next.targets[group] = ent
	h.rehomes.Store(next)
	mCtrlRehomed.Set(int64(len(next.targets)))
}

// chooseHostLocked picks the surviving group to adopt an orphaned
// partition: alive, not itself failed over, least loaded (own devices
// plus already-adopted ones), ties broken by lowest group id — a pure
// function of partitioning + failure history, so every run of the same
// failure sequence re-homes identically. Returns -1 when no survivor
// exists (the caller falls back to the global controller).
func (h *Hierarchy) chooseHostLocked(orphan int) int {
	rt := h.rehomes.Load()
	groups := make([]int, 0, len(h.locals))
	for g := range h.locals {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	best, bestLoad := -1, 0
	for _, g := range groups {
		if g == orphan {
			continue
		}
		if rt != nil {
			if _, failed := rt.targets[g]; failed {
				continue
			}
		}
		l := h.locals[g]
		if l == nil || !l.Alive() {
			continue
		}
		load := len(h.groupDevices(g)) + h.adopted[g]
		if best < 0 || load < bestLoad {
			best, bestLoad = g, load
		}
	}
	return best
}

// groupDevices returns a partition's device list (nil when out of
// range).
func (h *Hierarchy) groupDevices(group int) []string {
	if group < 0 || group >= len(h.partitioning.Groups) {
		return nil
	}
	return h.partitioning.Groups[group]
}

// varInGroup decides whether a view variable belongs to a partition's
// recovery scope: its own devices' contexts, env vars its delegated
// rules reference, and device-derived env vars ("<device>_<attr>")
// reported by its devices.
func (h *Hierarchy) varInGroup(varName string, group int) bool {
	if name, ok := strings.CutPrefix(varName, "dev:"); ok {
		return h.partitioning.GroupOf(name) == group
	}
	if name, ok := strings.CutPrefix(varName, "env:"); ok {
		if h.localRuleVars[group][varName] {
			return true
		}
		if i := strings.LastIndex(name, "_"); i > 0 {
			return h.partitioning.GroupOf(name[:i]) == group
		}
	}
	return false
}

// parseViewChangeDetail inverts View.apply's journal format
// ("v<version> <var> = <value> (<reason>)"), recovering the variable
// and value for replay.
func parseViewChangeDetail(detail string) (varName, value string, ok bool) {
	rest, found := strings.CutPrefix(detail, "v")
	if !found {
		return "", "", false
	}
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return "", "", false
	}
	for _, c := range rest[:sp] {
		if c < '0' || c > '9' {
			return "", "", false
		}
	}
	rest = rest[sp+1:]
	varName, rest, found = strings.Cut(rest, " = ")
	if !found {
		return "", "", false
	}
	i := strings.LastIndex(rest, " (")
	if i < 0 {
		return "", "", false
	}
	return varName, rest[:i], true
}
