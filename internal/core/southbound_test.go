package core

import (
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/resilience"
)

func dropRules(sw *netsim.Switch) int {
	n := 0
	for _, e := range sw.Table().Entries() {
		if e.Priority == 400 {
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAttachSouthboundEndToEnd wires the whole resilient southbound
// through the platform helper: anomaly → posture → quarantine
// FLOW_MODs on the uplink switch, surviving a controller interrupt and
// restored after restart.
func TestAttachSouthboundEndToEnd(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine-wemo-suspicious",
		Conditions: []policy.Condition{policy.DeviceIs("wemo", policy.ContextSuspicious)},
		Device:     "wemo",
		Posture:    policy.Posture{Isolate: true},
		Priority:   100,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewCamera("wemo", packet.MustParseIPv4("10.0.0.31")).Device
	if _, err := p.AddDevice(plug); err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)

	sb, err := p.AttachSouthbound(SouthboundOptions{
		HeartbeatInterval: 50 * time.Millisecond,
		Agent: netsim.AgentOptions{
			Backoff: resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sb.Close)
	waitFor(t, "southbound session", sb.Agent.Connected)

	// A high-score anomaly flips wemo suspicious; the isolation posture
	// must land on the uplink switch as priority-400 drop rules.
	p.ReportAnomaly(ids.Anomaly{
		Device: "wemo", Kind: ids.AnomalyRate,
		Detail: "synthetic", Score: 0.93, When: time.Now(),
	})
	waitFor(t, "quarantine rules", func() bool { return dropRules(p.Switch) == 2 })

	// Controller interrupt: enforcement must hold (fail-static)...
	sb.Steering.Interrupt()
	waitFor(t, "agent to observe the outage", func() bool { return !sb.Agent.Connected() })
	if got := dropRules(p.Switch); got != 2 {
		t.Fatalf("quarantine rules during outage = %d, want 2", got)
	}

	// ...and survive the restart via the reconnect re-push.
	if _, err := sb.Steering.Listen(sb.Addr); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
	waitFor(t, "reconnect", sb.Agent.Connected)
	waitFor(t, "quarantine rules after restart", func() bool { return dropRules(p.Switch) == 2 })
	if sb.Agent.Reconnects() == 0 {
		t.Error("agent reports no reconnects after controller restart")
	}
}
