package learn

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

func TestGenerateSignatureToken(t *testing.T) {
	attack := [][]byte{
		[]byte("IOT/1 ON wemo-dbg-7f3a\n"),
		[]byte("IOT/1 OFF wemo-dbg-7f3a\n"),
		[]byte("IOT/1 USAGE wemo-dbg-7f3a\n"),
	}
	benign := [][]byte{
		[]byte("IOT/1 STATUS\nauth: owner:wemo123\n"),
		[]byte("IOT/1 ON\nauth: owner:wemo123\n"),
		[]byte("IOT/1 USAGE\nauth: owner:wemo123\n"),
	}
	token, err := GenerateSignatureToken(attack, benign, 16, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// The token must separate the corpora.
	for _, p := range benign {
		if bytes.Contains(p, token) {
			t.Fatalf("token %q appears in benign traffic", token)
		}
	}
	hits := 0
	for _, p := range attack {
		if bytes.Contains(p, token) {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("token %q hits only %d/3 attack payloads", token, hits)
	}
	// It should key on the backdoor token region.
	if !bytes.Contains([]byte("wemo-dbg-7f3a"), token) && !bytes.Contains(token, []byte("dbg")) {
		t.Logf("note: token %q separates but is not the backdoor substring", token)
	}
}

func TestGenerateSignatureTokenNoSeparation(t *testing.T) {
	same := [][]byte{[]byte("identical payload")}
	if _, err := GenerateSignatureToken(same, same, 16, 4, 0.8); err == nil {
		t.Error("inseparable corpora yielded a token")
	}
	if _, err := GenerateSignatureToken(nil, same, 16, 4, 0.8); err == nil {
		t.Error("empty attack corpus yielded a token")
	}
}

func TestGenerateRuleParsesAndDiscriminates(t *testing.T) {
	attack := [][]byte{
		[]byte("IOT/1 ON wemo-dbg-7f3a\n"),
		[]byte("IOT/1 OFF wemo-dbg-7f3a\n"),
	}
	benign := [][]byte{
		[]byte("IOT/1 ON\nauth: owner:wemo123\n"),
		[]byte("IOT/1 STATUS\n"),
	}
	ruleText, err := GenerateRule(attack, benign, "auto: wemo backdoor", 9100)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := ids.ParseRule(ruleText)
	if err != nil {
		t.Fatalf("generated rule does not parse: %q: %v", ruleText, err)
	}
	engine := ids.NewEngine([]*ids.Rule{rule})

	mkPkt := func(payload []byte) *packet.Packet {
		src, dst := packet.MustParseIPv4("10.0.0.66"), packet.MustParseIPv4("10.0.0.5")
		tcp := &packet.TCP{SrcPort: 40000, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		_ = packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, packet.NewPayload(payload),
		)
		frame := make([]byte, b.Len())
		copy(frame, b.Bytes())
		return packet.Decode(frame, packet.LayerTypeEthernet)
	}
	for _, p := range attack {
		if blocked, _ := engine.Verdict(mkPkt(p)); !blocked {
			t.Errorf("generated rule misses attack payload %q", p)
		}
	}
	for _, p := range benign {
		if blocked, _ := engine.Verdict(mkPkt(p)); blocked {
			t.Errorf("generated rule false-positives on %q", p)
		}
	}
}

// TestCaptureToSignaturePipeline runs the whole §4.1 loop on live
// traffic: record the fabric while an attacker uses the backdoor and
// an owner uses the app, then distill a working rule from the capture.
func TestCaptureToSignaturePipeline(t *testing.T) {
	n := netsim.NewNetwork()
	rec := netsim.NewRecorder()
	n.AddTap(rec.Tap())
	sw := netsim.NewSwitch("sw", 1)
	sw.SetMissBehavior(netsim.MissFlood)

	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.10"), device.Appliance{Name: "lamp"})
	plugPort, err := plug.Device.Attach(n)
	if err != nil {
		t.Fatal(err)
	}
	n.Connect(plugPort, sw.AttachPort(n, 1), netsim.LinkOptions{})

	mkHost := func(ip string, swPort uint16) *netsim.Stack {
		addr := packet.MustParseIPv4(ip)
		st := netsim.NewStack("h"+ip, device.MACFor(addr), addr)
		n.Connect(st.Attach(n), sw.AttachPort(n, swPort), netsim.LinkOptions{})
		t.Cleanup(st.Stop)
		return st
	}
	owner := mkHost("10.0.0.2", 2)
	attacker := mkHost("10.0.0.66", 3)
	n.Start()
	t.Cleanup(func() { plug.Stop(); n.Stop() })

	ownerClient := &device.Client{Stack: owner, Timeout: time.Second}
	attackerClient := &device.Client{Stack: attacker, Timeout: time.Second}
	for i := 0; i < 4; i++ {
		if _, err := ownerClient.Call(plug.IP(), device.Request{Cmd: "STATUS", User: "owner", Pass: "wemo123"}); err != nil {
			t.Fatal(err)
		}
		if _, err := attackerClient.Call(plug.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}}); err != nil {
			t.Fatal(err)
		}
	}

	frames := rec.Frames()
	attackPayloads := MgmtPayloadsFrom(frames, plug.IP(), packet.MustParseIPv4("10.0.0.66"))
	benignPayloads := MgmtPayloadsFrom(frames, plug.IP(), packet.MustParseIPv4("10.0.0.2"))
	if len(attackPayloads) == 0 || len(benignPayloads) == 0 {
		t.Fatalf("capture split: %d attack, %d benign", len(attackPayloads), len(benignPayloads))
	}

	ruleText, err := GenerateRule(attackPayloads, benignPayloads, "auto: captured exploit", 9200)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ruleText, "block tcp") {
		t.Errorf("rule = %q", ruleText)
	}
	// The distilled rule must parse and key on something the
	// attacker sends.
	rule, err := ids.ParseRule(ruleText)
	if err != nil {
		t.Fatalf("generated rule unparseable: %v", err)
	}
	token := rule.Contents[0].Pattern
	for _, p := range benignPayloads {
		if bytes.Contains(p, token) {
			t.Fatalf("token %q appears in owner traffic", token)
		}
	}
}
