package netsim

import (
	"sync"
	"testing"
	"time"

	"iotsec/internal/openflow"
	"iotsec/internal/packet"
)

// sink is a Node that records received frames.
type sink struct {
	name string
	mu   sync.Mutex
	got  []Frame
	ch   chan Frame
}

func newSink(name string) *sink {
	return &sink{name: name, ch: make(chan Frame, 64)}
}

func (s *sink) NodeName() string { return s.name }
func (s *sink) HandleFrame(_ *Port, f Frame) {
	s.mu.Lock()
	s.got = append(s.got, f)
	s.mu.Unlock()
	select {
	case s.ch <- f:
	default:
	}
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

// waitFrame blocks for one frame or fails the test.
func (s *sink) waitFrame(t *testing.T) Frame {
	t.Helper()
	select {
	case f := <-s.ch:
		return f
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: no frame arrived", s.name)
		return nil
	}
}

func TestFabricDelivery(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	n.Connect(pa, pb, LinkOptions{})
	n.Start()
	defer n.Stop()

	pa.Send(Frame("hello"))
	if got := b.waitFrame(t); string(got) != "hello" {
		t.Errorf("frame = %q", got)
	}
	// Stats reflect the exchange.
	if st := pa.Stats(); st.TxFrames != 1 {
		t.Errorf("tx frames = %d", st.TxFrames)
	}
	if st := pb.Stats(); st.RxFrames != 1 {
		t.Errorf("rx frames = %d", st.RxFrames)
	}
}

func TestFabricLatency(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	n.Connect(pa, pb, LinkOptions{Latency: 30 * time.Millisecond})
	n.Start()
	defer n.Stop()

	start := time.Now()
	pa.Send(Frame("x"))
	b.waitFrame(t)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("frame arrived after %v, want >= ~30ms", elapsed)
	}
}

func TestFabricLoss(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	n.Connect(pa, pb, LinkOptions{LossRate: 0.5, Seed: 1})
	n.Start()
	defer n.Stop()

	const total = 400
	for i := 0; i < total; i++ {
		pa.Send(Frame{byte(i)})
	}
	time.Sleep(100 * time.Millisecond)
	got := b.count()
	if got == 0 || got == total {
		t.Errorf("received %d/%d frames; 50%% loss should drop some but not all", got, total)
	}
	if st := pa.Stats(); st.DropsLoss == 0 {
		t.Error("loss drops not counted")
	}
}

func TestDuplicateNodeNameRejected(t *testing.T) {
	n := NewNetwork()
	if err := n.AddNode(newSink("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode(newSink("x")); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestRecorderTap(t *testing.T) {
	n := NewNetwork()
	rec := NewRecorder()
	n.AddTap(rec.Tap())
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	n.Connect(pa, pb, LinkOptions{})
	n.Start()
	defer n.Stop()

	pa.Send(Frame("captured"))
	b.waitFrame(t)
	frames := rec.Frames()
	if len(frames) != 1 {
		t.Fatalf("captured %d frames", len(frames))
	}
	if frames[0].SrcNode != "a" || frames[0].DstNode != "b" {
		t.Errorf("capture context = %+v", frames[0])
	}
	rec.Reset()
	if rec.Count() != 0 {
		t.Error("reset did not clear")
	}
}

// buildFrame makes a minimal eth/ip/udp frame for switch tests.
func buildFrame(t *testing.T, srcMAC, dstMAC packet.MACAddress, srcIP, dstIP packet.IPv4Address, dstPort uint16) Frame {
	t.Helper()
	b := packet.NewSerializeBuffer()
	udp := &packet.UDP{SrcPort: 9000, DstPort: dstPort}
	udp.SetNetworkForChecksum(srcIP, dstIP)
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolUDP},
		udp,
		packet.NewPayload([]byte("payload")),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make(Frame, b.Len())
	copy(out, b.Bytes())
	return out
}

var (
	mac1 = packet.MACAddress{2, 0, 0, 0, 0, 1}
	mac2 = packet.MACAddress{2, 0, 0, 0, 0, 2}
	ip1  = packet.MustParseIPv4("10.0.0.1")
	ip2  = packet.MustParseIPv4("10.0.0.2")
)

func TestSwitchForwardByFlowEntry(t *testing.T) {
	n := NewNetwork()
	sw := NewSwitch("sw", 1)
	h1, h2, h3 := newSink("h1"), newSink("h2"), newSink("h3")
	sp1, sp2, sp3 := sw.AttachPort(n, 1), sw.AttachPort(n, 2), sw.AttachPort(n, 3)
	n.Connect(n.NewPort(h1, 1), sp1, LinkOptions{})
	p2 := n.NewPort(h2, 1)
	n.Connect(p2, sp2, LinkOptions{})
	n.Connect(n.NewPort(h3, 1), sp3, LinkOptions{})
	n.Start()
	defer n.Stop()

	sw.Table().Insert(openflow.FlowEntry{
		Match:    openflow.MatchAll().WithDstIP(ip2, 32),
		Priority: 10,
		Actions:  []openflow.Action{openflow.Output(2)},
	})
	sw.SetMissBehavior(MissDrop)

	hp1 := h1.gotPort(n)
	_ = hp1
	// Send from h1 into the switch: matches the rule, exits port 2.
	frame := buildFrame(t, mac1, mac2, ip1, ip2, 80)
	sendViaPeer(sp1, frame)
	got := h2.waitFrame(t)
	if len(got) == 0 {
		t.Fatal("h2 got empty frame")
	}
	time.Sleep(20 * time.Millisecond)
	if h3.count() != 0 {
		t.Error("h3 should not receive unicast-forwarded frame")
	}
}

// gotPort is a helper placeholder keeping the test minimal.
func (s *sink) gotPort(_ *Network) *Port { return nil }

// sendViaPeer injects a frame into a switch port from its link peer.
func sendViaPeer(switchPort *Port, f Frame) {
	switchPort.Peer().Send(f)
}

func TestSwitchFloodAndDropBehavior(t *testing.T) {
	n := NewNetwork()
	sw := NewSwitch("sw", 1)
	h1, h2, h3 := newSink("h1"), newSink("h2"), newSink("h3")
	sp1, sp2, sp3 := sw.AttachPort(n, 1), sw.AttachPort(n, 2), sw.AttachPort(n, 3)
	n.Connect(n.NewPort(h1, 1), sp1, LinkOptions{})
	n.Connect(n.NewPort(h2, 1), sp2, LinkOptions{})
	n.Connect(n.NewPort(h3, 1), sp3, LinkOptions{})
	n.Start()
	defer n.Stop()

	frame := buildFrame(t, mac1, mac2, ip1, ip2, 80)

	sw.SetMissBehavior(MissFlood)
	sendViaPeer(sp1, frame)
	h2.waitFrame(t)
	h3.waitFrame(t)
	time.Sleep(10 * time.Millisecond)
	if h1.count() != 0 {
		t.Error("flood must exclude ingress port")
	}

	sw.SetMissBehavior(MissDrop)
	sendViaPeer(sp1, frame)
	time.Sleep(20 * time.Millisecond)
	if h2.count() != 1 || h3.count() != 1 {
		t.Error("drop behavior forwarded a frame")
	}
}

func TestSwitchPuntsToHandler(t *testing.T) {
	n := NewNetwork()
	sw := NewSwitch("sw", 1)
	sp1 := sw.AttachPort(n, 1)
	h1 := newSink("h1")
	n.Connect(n.NewPort(h1, 1), sp1, LinkOptions{})
	n.Start()
	defer n.Stop()

	punted := make(chan uint16, 1)
	sw.SetPacketInHandler(func(inPort uint16, reason uint8, frame Frame) {
		punted <- inPort
	})
	sw.SetMissBehavior(MissPunt)
	sendViaPeer(sp1, buildFrame(t, mac1, mac2, ip1, ip2, 80))
	select {
	case port := <-punted:
		if port != 1 {
			t.Errorf("punted in_port = %d", port)
		}
	case <-time.After(time.Second):
		t.Fatal("no punt")
	}
}

func TestSwitchSetEthDstRewrite(t *testing.T) {
	n := NewNetwork()
	sw := NewSwitch("sw", 1)
	sp1, sp2 := sw.AttachPort(n, 1), sw.AttachPort(n, 2)
	h1, h2 := newSink("h1"), newSink("h2")
	n.Connect(n.NewPort(h1, 1), sp1, LinkOptions{})
	n.Connect(n.NewPort(h2, 1), sp2, LinkOptions{})
	n.Start()
	defer n.Stop()

	newMAC := packet.MACAddress{2, 0, 0, 0, 0, 0x99}
	sw.Table().Insert(openflow.FlowEntry{
		Match:    openflow.MatchAll(),
		Priority: 1,
		Actions:  []openflow.Action{openflow.SetEthDst(newMAC), openflow.Output(2)},
	})
	sendViaPeer(sp1, buildFrame(t, mac1, mac2, ip1, ip2, 80))
	got := h2.waitFrame(t)
	p := packet.Decode(got, packet.LayerTypeEthernet)
	if eth := p.Ethernet(); eth == nil || eth.DstMAC != newMAC {
		t.Errorf("dst mac not rewritten: %v", p)
	}
}

// --- agent integration with a live controller endpoint ---

type ctrlHandler struct {
	connected chan uint64
	packetIns chan *openflow.PacketIn
	removed   chan *openflow.FlowRemoved
}

func (h *ctrlHandler) SwitchConnected(dpid uint64, ports []uint16) { h.connected <- dpid }
func (h *ctrlHandler) SwitchDisconnected(uint64)                   {}
func (h *ctrlHandler) HandlePacketIn(pi *openflow.PacketIn)        { h.packetIns <- pi }
func (h *ctrlHandler) HandleFlowRemoved(fr *openflow.FlowRemoved)  { h.removed <- fr }

func TestAgentControllerIntegration(t *testing.T) {
	h := &ctrlHandler{
		connected: make(chan uint64, 1),
		packetIns: make(chan *openflow.PacketIn, 8),
		removed:   make(chan *openflow.FlowRemoved, 8),
	}
	ep := openflow.NewControllerEndpoint(h, nil)
	addr, err := ep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	n := NewNetwork()
	sw := NewSwitch("sw", 77)
	sp1, sp2 := sw.AttachPort(n, 1), sw.AttachPort(n, 2)
	h1, h2 := newSink("h1"), newSink("h2")
	n.Connect(n.NewPort(h1, 1), sp1, LinkOptions{})
	n.Connect(n.NewPort(h2, 1), sp2, LinkOptions{})
	n.Start()
	defer n.Stop()

	agent, err := ConnectAgent(sw, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Stop()

	select {
	case dpid := <-h.connected:
		if dpid != 77 {
			t.Fatalf("dpid = %d", dpid)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("switch never connected")
	}

	// Miss → PACKET_IN at the controller.
	frame := buildFrame(t, mac1, mac2, ip1, ip2, 80)
	sendViaPeer(sp1, frame)
	select {
	case pi := <-h.packetIns:
		if pi.DatapathID != 77 || pi.InPort != 1 {
			t.Errorf("packet-in = %+v", pi)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no packet-in")
	}

	// FLOW_MOD programs the table; barrier guarantees it applied.
	err = ep.SendFlowMod(77, &openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    openflow.MatchAll().WithDstIP(ip2, 32),
		Priority: 5,
		Actions:  []openflow.Action{openflow.Output(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Barrier(77, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	sendViaPeer(sp1, frame)
	h2.waitFrame(t)

	// PACKET_OUT injects directly.
	err = ep.SendPacketOut(77, &openflow.PacketOut{
		InPort:  1,
		Actions: []openflow.Action{openflow.Output(2)},
		Data:    frame,
	})
	if err != nil {
		t.Fatal(err)
	}
	h2.waitFrame(t)

	// Short-lived flow expires → FLOW_REMOVED.
	err = ep.SendFlowMod(77, &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       openflow.MatchAll().WithTpDst(9999),
		Priority:    4,
		HardTimeout: 20 * time.Millisecond,
		Cookie:      321,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case fr := <-h.removed:
		if fr.Cookie != 321 {
			t.Errorf("flow-removed cookie = %d", fr.Cookie)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no flow-removed")
	}
}

func TestFabricBandwidthSerialization(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	// 100 KB/s: ten 1000-byte frames need ~100ms of wire time.
	n.Connect(pa, pb, LinkOptions{BandwidthBps: 100_000})
	n.Start()
	defer n.Stop()

	frame := make(Frame, 1000)
	start := time.Now()
	for i := 0; i < 10; i++ {
		pa.Send(frame)
	}
	for i := 0; i < 10; i++ {
		b.waitFrame(t)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("10x1000B over 100KB/s arrived in %v, want >= ~100ms", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("bandwidth model too slow: %v", elapsed)
	}
}

func TestFabricBandwidthDirectionsIndependent(t *testing.T) {
	n := NewNetwork()
	a, b := newSink("a"), newSink("b")
	pa, pb := n.NewPort(a, 1), n.NewPort(b, 1)
	n.Connect(pa, pb, LinkOptions{BandwidthBps: 50_000})
	n.Start()
	defer n.Stop()

	// Saturate a→b; a single b→a frame must not queue behind it.
	big := make(Frame, 5000)
	for i := 0; i < 10; i++ {
		pa.Send(big) // 50k bytes total = 1s of a→b wire time
	}
	start := time.Now()
	pb.Send(Frame("reverse"))
	got := a.waitFrame(t)
	if string(got) != "reverse" {
		t.Fatalf("frame = %q", got)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("reverse direction delayed %v by forward traffic", elapsed)
	}
}
