// Command iotsim regenerates every table and figure of the paper plus
// the design-choice ablations, printing paper-style rows.
//
// Usage:
//
//	iotsim                  # run everything
//	iotsim -exp t1          # one experiment: t1 t2 f1 f2 f3 f4 f5 a1..a6 a12 a13
//	iotsim -exp t1,f2,a5    # a comma-separated subset
//	iotsim -fleet 1000,10000,100000   # fleet load sweep (A10)
//	iotsim -failover 1000,10000       # control-plane failover chaos (A12)
//	iotsim -replay incident.json      # replay a captured incident (A13)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/experiment"
	"iotsec/internal/journal"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run (comma-separated: t1,t2,f1..f5,a1..a6,a12,a13, or all)")
	seed := flag.Int64("seed", 1, "seed for synthesized corpora")
	fleet := flag.String("fleet", "", "run the fleet load sweep at these comma-separated sizes (e.g. 1000,10000,100000)")
	fleetDuration := flag.Duration("fleet-duration", 2*time.Second, "event-driving window per fleet size")
	fleetShard := flag.Int("fleet-shard", 64, "devices per local controller in the fleet sweep")
	fleetOut := flag.String("fleet-out", "", "write the final merged fleet snapshot (JSON) to this file")
	failover := flag.String("failover", "", "run the failover chaos sweep at these comma-separated fleet sizes (A12)")
	failoverShard := flag.Int("failover-shard", 64, "devices per local controller in the failover sweep")
	failoverKill := flag.Int("failover-kill", 3, "local controllers killed mid-quarantine per size")
	failoverMode := flag.String("failover-mode", "rehome", "fail mode under test: rehome or fail-global")
	failoverOut := flag.String("failover-out", "", "write the failover results (JSON) to this file")
	replay := flag.String("replay", "", "replay a captured incident scenario (JSON from mboxctl incidents export) as a regression check (A13)")
	replayOut := flag.String("replay-out", "", "write the replay verdict (JSON) to this file")
	flag.Parse()

	if *fleet != "" {
		os.Exit(runFleetSweep(*fleet, *fleetDuration, *fleetShard, *fleetOut))
	}
	if *failover != "" {
		os.Exit(runFailoverSweep(*failover, *failoverShard, *failoverKill, *failoverMode, *failoverOut))
	}
	if *replay != "" {
		os.Exit(runReplay(*replay, *replayOut))
	}

	runners := []struct {
		id  string
		run func() (*experiment.Table, error)
	}{
		{"t1", experiment.RunTable1},
		{"t2", func() (*experiment.Table, error) { return experiment.RunTable2(*seed), nil }},
		{"f1", experiment.RunFigure1},
		{"f2", experiment.RunFigure2},
		{"f3", experiment.RunFigure3},
		{"f4", experiment.RunFigure4},
		{"f5", experiment.RunFigure5},
		{"a1", func() (*experiment.Table, error) { return experiment.RunAblationStatePruning(), nil }},
		{"a2", func() (*experiment.Table, error) { return experiment.RunAblationHierarchy(2*time.Millisecond, *seed), nil }},
		{"a3", experiment.RunAblationMicroMbox},
		{"a4", func() (*experiment.Table, error) { return experiment.RunAblationFuzzCoverage(*seed), nil }},
		{"a5", func() (*experiment.Table, error) { return experiment.RunAblationReputation(*seed), nil }},
		{"a6", func() (*experiment.Table, error) { return experiment.RunAblationConsistency(*seed), nil }},
		{"a12", func() (*experiment.Table, error) {
			tbl, results, err := experiment.RunFailover(experiment.FailoverOptions{
				Sizes: []int{1_000, 10_000}, Progress: os.Stderr,
			})
			if err != nil {
				dumpFailoverArtifacts(results)
			}
			return tbl, err
		}},
		{"a13", func() (*experiment.Table, error) { return experiment.RunA13(os.Stderr) }},
	}

	// -exp accepts a comma-separated subset; every requested id must
	// exist, and unknown ids exit nonzero.
	want := map[string]bool{}
	all := false
	for _, id := range strings.Split(strings.ToLower(*exp), ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if id == "all" {
			all = true
			continue
		}
		want[id] = true
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.id] = true
	}
	for id := range want {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "iotsim: unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
	if !all && len(want) == 0 {
		fmt.Fprintf(os.Stderr, "iotsim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	total := time.Now()
	ran := 0
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		start := time.Now()
		tbl, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: %s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		tbl.Print(os.Stdout)
		fmt.Printf("  (%s completed in %v)\n", strings.ToUpper(r.id), time.Since(start).Round(time.Millisecond))
		ran++
	}
	fmt.Printf("\n%d experiment(s) in %v\n", ran, time.Since(total).Round(time.Millisecond))
}

// runFleetSweep parses sizes, runs the A10 fleet harness, and
// optionally writes the last merged fleet snapshot for artifacts.
func runFleetSweep(sizesCSV string, duration time.Duration, shard int, outPath string) int {
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "iotsim: bad fleet size %q\n", s)
			return 2
		}
		sizes = append(sizes, n)
	}
	start := time.Now()
	tbl, results, err := experiment.RunFleet(experiment.FleetOptions{
		Sizes:     sizes,
		ShardSize: shard,
		Duration:  duration,
		Progress:  os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsim: fleet sweep failed: %v\n", err)
		dumpFleetJournal()
		return 1
	}
	tbl.Print(os.Stdout)
	fmt.Printf("  (A10 completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if outPath != "" && len(results) > 0 {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: %v\n", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: write %s: %v\n", outPath, err)
			f.Close()
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: close %s: %v\n", outPath, err)
			return 1
		}
		fmt.Printf("  fleet snapshot: %s\n", outPath)
	}
	return 0
}

// runFailoverSweep parses sizes and runs the A12 control-plane
// failover chaos harness: local controllers are killed mid-quarantine
// and the run fails if any frame reaches a quarantined device during
// the failover window, if recovery misses the SLO, or if post-recovery
// state diverges from the never-failed control run.
func runFailoverSweep(sizesCSV string, shard, kill int, mode, outPath string) int {
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "iotsim: bad failover fleet size %q\n", s)
			return 2
		}
		sizes = append(sizes, n)
	}
	fm, ok := controller.ParseFailMode(mode)
	if !ok {
		fmt.Fprintf(os.Stderr, "iotsim: bad failover mode %q (rehome or fail-global)\n", mode)
		return 2
	}
	start := time.Now()
	tbl, results, err := experiment.RunFailover(experiment.FailoverOptions{
		Sizes:      sizes,
		ShardSize:  shard,
		KillShards: kill,
		FailMode:   fm,
		Progress:   os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsim: failover sweep failed: %v\n", err)
		dumpFailoverArtifacts(results)
		return 1
	}
	tbl.Print(os.Stdout)
	fmt.Printf("  (A12 completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if outPath != "" && len(results) > 0 {
		if err := writeJSON(outPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: %v\n", err)
			return 1
		}
		fmt.Printf("  failover results: %s\n", outPath)
	}
	return 0
}

// runReplay re-drives one exported incident scenario (A13) and exits
// nonzero unless every expected chain stage re-fired within the SLO.
func runReplay(path, outPath string) int {
	start := time.Now()
	res, err := experiment.RunReplayFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsim: replay: %v\n", err)
		return 1
	}
	verdict := "PASS"
	if !res.Passed {
		verdict = "FAIL"
	}
	fmt.Printf("A13 replay %s: %s incident %s", verdict, res.Kind, res.Incident)
	if res.Device != "" {
		fmt.Printf(" (device %s)", res.Device)
	}
	fmt.Printf("\n  stages expected %v observed %v in %.3fs (SLO %.3fs)\n",
		res.Expected, res.Observed, res.ElapsedSeconds, res.SLOSeconds)
	if res.Chain != "" {
		fmt.Printf("  replayed chain: %s\n", res.Chain)
	}
	if res.Error != "" {
		fmt.Fprintf(os.Stderr, "iotsim: replay: %s\n", res.Error)
	}
	fmt.Printf("  (A13 completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if outPath != "" {
		if err := writeJSON(outPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: %v\n", err)
			return 1
		}
		fmt.Printf("  replay verdict: %s\n", outPath)
	}
	if !res.Passed {
		return 1
	}
	return 0
}

// dumpFailoverArtifacts exports the post-mortem material when the
// chaos run fails: the forensic journal as NDJSON to
// $IOTSEC_FAILOVER_JOURNAL and the per-size results (failover records,
// fingerprints) to $IOTSEC_FAILOVER_SNAPSHOT — the CI failover stage
// uploads both.
func dumpFailoverArtifacts(results []experiment.FailoverResult) {
	if path := os.Getenv("IOTSEC_FAILOVER_JOURNAL"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: journal dump: %v\n", err)
		} else {
			enc := json.NewEncoder(f)
			for _, e := range journal.Default.Snapshot(journal.Filter{}) {
				_ = enc.Encode(e)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "iotsim: forensic journal dumped to %s\n", path)
		}
	}
	if path := os.Getenv("IOTSEC_FAILOVER_SNAPSHOT"); path != "" {
		if err := writeJSON(path, results); err != nil {
			fmt.Fprintf(os.Stderr, "iotsim: snapshot dump: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "iotsim: failover snapshot dumped to %s\n", path)
		}
	}
}

// writeJSON writes v indented to path.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// dumpFleetJournal exports the forensic journal as NDJSON to
// $IOTSEC_FLEET_JOURNAL when a fleet sweep fails, so the CI fleet
// stage can upload the timeline as an artifact — same contract as the
// chaos stage's $IOTSEC_CHAOS_JOURNAL.
func dumpFleetJournal() {
	path := os.Getenv("IOTSEC_FLEET_JOURNAL")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iotsim: journal dump: %v\n", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range journal.Default.Snapshot(journal.Filter{}) {
		_ = enc.Encode(e)
	}
	fmt.Fprintf(os.Stderr, "iotsim: forensic journal dumped to %s\n", path)
}
