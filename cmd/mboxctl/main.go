// Command mboxctl inspects and controls a running iotsecd via its
// admin API.
//
// Usage:
//
//	mboxctl [-addr host:port] status
//	mboxctl [-addr host:port] env
//	mboxctl [-addr host:port] set-env <var> <value>
//	mboxctl [-addr host:port] set-context <device> <context>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iotsec/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "iotsecd admin address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var req core.AdminRequest
	switch args[0] {
	case "status":
		req = core.AdminRequest{Op: "status"}
	case "env":
		req = core.AdminRequest{Op: "env"}
	case "set-env":
		if len(args) != 3 {
			usage()
		}
		req = core.AdminRequest{Op: "set-env", Var: args[1], Value: args[2]}
	case "set-context":
		if len(args) != 3 {
			usage()
		}
		req = core.AdminRequest{Op: "set-context", Device: args[1], Value: args[2]}
	default:
		usage()
	}

	resp, err := core.AdminCall(*addr, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mboxctl: %v\n", err)
		os.Exit(1)
	}
	switch args[0] {
	case "status":
		fmt.Printf("µmbox boots: %d   posture reconfigurations: %d   view version: %d\n\n",
			resp.Boots, resp.Reconf, resp.Version)
		for _, d := range resp.Devices {
			fmt.Printf("%-12s %-22s %s\n", d.Name, d.SKU, d.IP)
			fmt.Printf("  context:  %s\n", d.Context)
			fmt.Printf("  posture:  %s\n", d.Posture)
			fmt.Printf("  pipeline: %s\n", strings.Join(d.Pipeline, " -> "))
			fmt.Printf("  state:    %s\n", d.State)
		}
	case "env":
		for k, v := range resp.Env {
			fmt.Printf("%-24s %s\n", k, v)
		}
	default:
		fmt.Println("ok")
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mboxctl [-addr host:port] status|env|set-env <var> <value>|set-context <device> <context>")
	os.Exit(2)
}
