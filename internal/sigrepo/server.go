package sigrepo

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// Wire protocol: newline-delimited JSON messages over TCP. Clients
// send requests; the server answers each with one response and pushes
// "notify" messages asynchronously for subscriptions. Subscriptions
// carry a cursor (`since`): the server replays every cleared-signature
// event after it before streaming live pushes, so a reconnecting
// gateway resumes loss-free.

// NoReplay is the subscribe cursor meaning "live events only" — the
// semantics of the original cursor-less Subscribe.
const NoReplay = ^uint64(0)

// ErrRemote wraps errors the repository itself returned (validation
// failures, duplicate votes, unknown IDs). Callers use errors.Is to
// distinguish these application-level rejections — which retrying will
// never fix — from transport failures, which a supervised session
// retries after reconnecting.
var ErrRemote = errors.New("sigrepo: remote error")

// ErrClosed reports a client whose connection has terminated.
var ErrClosed = errors.New("sigrepo: connection closed")

// wireRequest is a client → server message.
type wireRequest struct {
	Op          string `json:"op"` // publish | vote | fetch | subscribe | skus
	Identity    string `json:"identity"`
	SKU         string `json:"sku,omitempty"`
	Rule        string `json:"rule,omitempty"`
	Description string `json:"description,omitempty"`
	SigID       string `json:"sig_id,omitempty"`
	Up          bool   `json:"up,omitempty"`
	// Since is the subscribe cursor: replay cleared events after this
	// per-SKU sequence. 0 replays the full cleared history; NoReplay
	// streams live events only.
	Since uint64 `json:"since,omitempty"`
}

// wireResponse is a server → client message.
type wireResponse struct {
	Kind       string      `json:"kind"` // reply | notify
	OK         bool        `json:"ok"`
	Error      string      `json:"error,omitempty"`
	Signature  *Signature  `json:"signature,omitempty"`
	Signatures []Signature `json:"signatures,omitempty"`
	SKUs       []string    `json:"skus,omitempty"`
	Priority   bool        `json:"priority,omitempty"`
	// Seq is the cleared-event sequence: on a subscribe reply, the
	// SKU's head at registration; on a notify, the event's sequence
	// (the cursor value the client persists).
	Seq uint64 `json:"seq,omitempty"`
	// Replay marks a cursor-replayed notify (the client may have seen
	// it before the outage; consumers dedupe by signature ID).
	Replay bool `json:"replay,omitempty"`
}

// Server exposes a Repository over TCP.
type Server struct {
	repo *Repository

	// WriteTimeout bounds each wire write (default 5s). A subscriber
	// that stops reading for longer is reaped rather than allowed to
	// stall the connection's writer.
	WriteTimeout time.Duration
	// NotifyBuffer bounds each connection's pending LIVE-notification
	// ring (default 256). Cursor-replay backlogs never pass through
	// this ring — they are written synchronously on the subscribe
	// request path — so only live pushes to a slow subscriber can be
	// evicted (counted in iotsec_sigrepo_notify_evictions_total). An
	// eviction leaves a sequence gap in the live stream, which the
	// managed client detects and repairs with a fetch resync.
	NotifyBuffer int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps the repository.
func NewServer(repo *Repository) *Server {
	return &Server{repo: repo, conns: make(map[net.Conn]bool)}
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout <= 0 {
		return 5 * time.Second
	}
	return s.WriteTimeout
}

func (s *Server) notifyBuffer() int {
	if s.NotifyBuffer < 1 {
		return 256
	}
	return s.NotifyBuffer
}

// Listen binds and serves on addr, returning the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sigrepo: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	mServerConns.Inc()
	defer func() {
		mServerConns.Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	var writeMu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp wireResponse) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		// A write deadline bounds how long a dead or stalled subscriber
		// can hold the connection's writer; on expiry the conn errors
		// out and the session is reaped.
		_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		err := enc.Encode(resp)
		_ = conn.SetWriteDeadline(time.Time{})
		return err
	}

	// Notification path: repository callbacks must never block (they
	// run under the broadcast fan-out), so they push into a bounded
	// drop-oldest ring and nudge a per-connection writer goroutine.
	// One slow or dead subscriber therefore costs evictions on its own
	// ring, never a stall of the repository or of other subscribers.
	notifyQ := resilience.NewRing[wireResponse](s.notifyBuffer())
	wake := make(chan struct{}, 1)
	writerDone := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-writerDone:
				return
			case <-wake:
			}
			for _, resp := range notifyQ.Drain() {
				if err := send(resp); err != nil {
					// Dead subscriber: drop the conn; serve's read loop
					// unwinds and cancels the subscriptions.
					conn.Close()
					return
				}
			}
		}
	}()
	enqueueNotify := func(n Notification) {
		sig := n.Signature
		if notifyQ.Push(wireResponse{Kind: "notify", OK: true, Signature: &sig,
			Seq: n.Seq, Priority: n.Priority, Replay: n.Replay}) {
			mNotifyEvictions.Inc()
		}
		select {
		case wake <- struct{}{}:
		default:
		}
	}

	var cancels []func()
	defer func() {
		for _, c := range cancels {
			c()
		}
		close(writerDone)
	}()

	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var req wireRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = send(wireResponse{Kind: "reply", Error: "bad request: " + err.Error()})
			continue
		}
		mServerRequests.Inc()
		// Each wire request is a fresh causal chain on the repository
		// side; the root span gives it a trace ID the journal records
		// under.
		ctx, span := telemetry.StartSpan(context.Background(), "sigrepo.server."+req.Op)
		switch req.Op {
		case "publish":
			sig, err := s.repo.Publish(ctx, req.Identity, req.SKU, req.Rule, req.Description)
			if err != nil {
				_ = send(wireResponse{Kind: "reply", Error: err.Error()})
				span.End()
				continue
			}
			_ = send(wireResponse{Kind: "reply", OK: true, Signature: sig})
		case "vote":
			sig, err := s.repo.Vote(ctx, req.Identity, req.SigID, req.Up)
			if err != nil {
				_ = send(wireResponse{Kind: "reply", Error: err.Error()})
				span.End()
				continue
			}
			_ = send(wireResponse{Kind: "reply", OK: true, Signature: sig})
		case "fetch":
			_ = send(wireResponse{Kind: "reply", OK: true, Signatures: s.repo.Fetch(req.SKU)})
		case "skus":
			_ = send(wireResponse{Kind: "reply", OK: true, SKUs: s.repo.SKUs()})
		case "subscribe":
			// Registration + replay snapshot are atomic in the
			// repository, so no clearing can fall between the replayed
			// backlog and the live stream. The reply carries the SKU
			// head; replayed events follow as notify messages so the
			// client's single push path handles both.
			//
			// The replay backlog is written synchronously on this
			// request path — NEVER through the evictable live ring. A
			// cursor replay can be arbitrarily larger than NotifyBuffer
			// (a new gateway backfilling a popular SKU), and a client
			// that advanced its cursor past an evicted replay would
			// lose the signature permanently; backpressure here is the
			// connection itself, bounded per message by the write
			// deadline (a subscriber too slow to absorb its own
			// backfill is reaped and retries from its cursor, which
			// only ever advances past delivered events).
			cancel, replays, head := s.repo.SubscribeSince(req.Identity, req.SKU, req.Since, enqueueNotify)
			cancels = append(cancels, cancel)
			_ = send(wireResponse{Kind: "reply", OK: true, Seq: head})
			for _, n := range replays {
				sig := n.Signature
				if err := send(wireResponse{Kind: "notify", OK: true, Signature: &sig,
					Seq: n.Seq, Priority: n.Priority, Replay: n.Replay}); err != nil {
					conn.Close() // dead mid-replay: unwind; client resumes from its cursor
					break
				}
			}
		default:
			_ = send(wireResponse{Kind: "reply", Error: "unknown op " + req.Op})
		}
		span.End()
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Push is one asynchronous server → client notification: the cleared
// signature plus the cursor to persist.
type Push struct {
	Signature Signature
	// Seq is the per-SKU cleared-event sequence; the highest Seq a
	// client has processed is the cursor it resubscribes with.
	Seq uint64
	// Priority marks contributor-priority delivery.
	Priority bool
	// Replay marks a cursor-replayed event (dedupe by Signature.ID).
	Replay bool
}

// Client talks to a sigrepo Server over one connection. Requests are
// serialized (one in flight at a time); asynchronous notifications are
// delivered to the push handler passed to NewClient (or installed via
// SetOnPush/SetOnNotify before subscribing). When the connection dies,
// Done() closes, Err() reports why, and every in-flight and subsequent
// call fails fast with ErrClosed — the hooks ManagedClient supervises
// reconnection with.
type Client struct {
	identity string
	conn     net.Conn
	enc      *json.Encoder

	// hookMu guards the push hooks: the read goroutine loads them on
	// every notify, so late installation via the setters needs a
	// happens-before edge (handlers passed to NewClient are written
	// before the goroutine starts and need none).
	hookMu   sync.Mutex
	onPush   func(p Push)
	onNotify func(sig Signature, priority bool)

	reqMu     sync.Mutex // serializes call()
	replies   chan wireResponse
	done      chan struct{}
	err       error // set before done closes
	closeOnce sync.Once
}

// DialClient connects to the repository as the given identity. Install
// push hooks with SetOnPush/SetOnNotify before subscribing.
func DialClient(addr, identity string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sigrepo: dial: %w", err)
	}
	return NewClient(conn, identity, nil), nil
}

// NewClient wraps an established connection (ManagedClient dials
// through fault-injection wrappers and hands the conn here). onPush
// (optional) receives asynchronous notifications; taking it as a
// constructor argument pins it in place before the read goroutine
// starts, so pushes can never race the handler installation.
func NewClient(conn net.Conn, identity string, onPush func(Push)) *Client {
	c := &Client{
		identity: identity,
		conn:     conn,
		enc:      json.NewEncoder(conn),
		onPush:   onPush,
		replies:  make(chan wireResponse, 4),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// SetOnPush installs (or replaces) the cursor-aware push handler.
// Call it before Subscribe/SubscribeSince.
func (c *Client) SetOnPush(fn func(Push)) {
	c.hookMu.Lock()
	c.onPush = fn
	c.hookMu.Unlock()
}

// SetOnNotify installs the legacy push hook (no cursor metadata);
// used only when no OnPush handler is set.
func (c *Client) SetOnNotify(fn func(sig Signature, priority bool)) {
	c.hookMu.Lock()
	c.onNotify = fn
	c.hookMu.Unlock()
}

func (c *Client) readLoop() {
	scanner := bufio.NewScanner(c.conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var resp wireResponse
		if err := json.Unmarshal(scanner.Bytes(), &resp); err != nil {
			continue
		}
		if resp.Kind == "notify" {
			if resp.Signature == nil {
				continue
			}
			c.hookMu.Lock()
			onPush, onNotify := c.onPush, c.onNotify
			c.hookMu.Unlock()
			if onPush != nil {
				onPush(Push{Signature: *resp.Signature, Seq: resp.Seq,
					Priority: resp.Priority, Replay: resp.Replay})
			} else if onNotify != nil {
				onNotify(*resp.Signature, resp.Priority)
			}
			continue
		}
		select {
		case c.replies <- resp:
		default:
		}
	}
	// Surface why the session ended instead of exiting silently: the
	// write to c.err happens before close(c.done), so any goroutine
	// that observes Done() closed reads it safely.
	err := scanner.Err()
	if err == nil {
		err = ErrClosed // clean EOF: peer closed or Close() was called
	} else {
		err = fmt.Errorf("%w: %v", ErrClosed, err)
	}
	c.err = err
	close(c.done)
}

// Done closes when the connection terminates (either direction).
func (c *Client) Done() <-chan struct{} { return c.done }

// Err reports why the connection terminated; nil while it is live.
func (c *Client) Err() error {
	select {
	case <-c.done:
		return c.err
	default:
		return nil
	}
}

// call sends one request and waits for its reply. Once the connection
// is dead it fails fast rather than hanging.
func (c *Client) call(req wireRequest) (wireResponse, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	select {
	case <-c.done:
		return wireResponse{}, c.err
	default:
	}
	req.Identity = c.identity
	if err := c.enc.Encode(req); err != nil {
		// A failed write means the conn is unusable; tear it down so
		// the readLoop terminates and Done() observers fire.
		c.Close()
		return wireResponse{}, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	select {
	case resp := <-c.replies:
		if resp.Error != "" {
			return resp, fmt.Errorf("%w: %s", ErrRemote, resp.Error)
		}
		return resp, nil
	case <-c.done:
		return wireResponse{}, c.err
	}
}

// Publish shares a signature.
func (c *Client) Publish(sku, rule, description string) (*Signature, error) {
	resp, err := c.call(wireRequest{Op: "publish", SKU: sku, Rule: rule, Description: description})
	if err != nil {
		return nil, err
	}
	return resp.Signature, nil
}

// Vote casts a verdict on a signature.
func (c *Client) Vote(sigID string, up bool) (*Signature, error) {
	resp, err := c.call(wireRequest{Op: "vote", SigID: sigID, Up: up})
	if err != nil {
		return nil, err
	}
	return resp.Signature, nil
}

// Fetch lists cleared signatures for a SKU.
func (c *Client) Fetch(sku string) ([]Signature, error) {
	resp, err := c.call(wireRequest{Op: "fetch", SKU: sku})
	if err != nil {
		return nil, err
	}
	return resp.Signatures, nil
}

// SKUs lists SKUs known to the repository.
func (c *Client) SKUs() ([]string, error) {
	resp, err := c.call(wireRequest{Op: "skus"})
	if err != nil {
		return nil, err
	}
	return resp.SKUs, nil
}

// Subscribe registers for pushed signatures on a SKU, live events
// only (no replay).
func (c *Client) Subscribe(sku string) error {
	_, err := c.SubscribeSince(sku, NoReplay)
	return err
}

// SubscribeSince registers for pushed signatures on a SKU, replaying
// every cleared event after the `since` cursor first. It returns the
// SKU's event head at registration time.
func (c *Client) SubscribeSince(sku string, since uint64) (head uint64, err error) {
	resp, err := c.call(wireRequest{Op: "subscribe", SKU: sku, Since: since})
	if err != nil {
		return 0, err
	}
	return resp.Seq, nil
}

// Close drops the connection (idempotent).
func (c *Client) Close() {
	c.closeOnce.Do(func() { _ = c.conn.Close() })
}
