package controller

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// FailMode selects what happens to a partition whose local controller
// dies.
type FailMode string

const (
	// FailModeRehome re-assigns the orphaned partition to the
	// least-loaded surviving local controller (falling back to the
	// global controller when none survives).
	FailModeRehome FailMode = "rehome"
	// FailModeGlobal escalates the orphaned partition straight to the
	// global controller: every event pays the global round trip until an
	// operator rebuilds the tier (degraded but simple).
	FailModeGlobal FailMode = "fail-global"
)

// ParseFailMode maps a flag value to a FailMode.
func ParseFailMode(s string) (FailMode, bool) {
	switch FailMode(s) {
	case FailModeRehome:
		return FailModeRehome, true
	case FailModeGlobal:
		return FailModeGlobal, true
	}
	return "", false
}

// SupervisorOptions tune the deadman and checkpoint cadence. The zero
// value is usable: system clock, 500ms heartbeat, 3 misses, 2s
// checkpoints, re-home fail mode.
type SupervisorOptions struct {
	// Clock drives all liveness timing (tests inject a FakeClock).
	Clock resilience.Clock
	// Heartbeat is the deadman probe period (default 500ms).
	Heartbeat time.Duration
	// Misses is how many consecutive failed probes declare a local dead
	// (default 3). Confirmation probes after the first miss follow a
	// deterministic backoff schedule (Heartbeat, 2×, 4×, capped) so a
	// flapping local gets progressively longer grace without unbounding
	// the detection window.
	Misses int
	// CheckpointEvery is the snapshot period (default 2s; <0 disables
	// periodic checkpoints — Checkpoint() still forces one).
	CheckpointEvery time.Duration
	// CheckpointKeep bounds retained checkpoints per partition
	// (default 4).
	CheckpointKeep int
	// FailMode picks re-home vs fail-global (default re-home).
	FailMode FailMode
	// Journal receives the supervisor's own failover events (default
	// journal.Default). View-change REPLAY always reads journal.Default
	// regardless, because View.apply records there.
	Journal *journal.Journal
	// HistoryCap bounds the retained failover history (default 64).
	HistoryCap int
	// QuarantinedOf reports the devices the control plane holds under
	// standing quarantine in a partition — checkpoint material.
	QuarantinedOf func(group int) []string
	// ReadbackQuarantines reports the quarantine drops actually resident
	// in the switch flow tables for a partition (e.g.
	// Steering.IsolatedDevices). Recovery unions it with the checkpoint
	// so a quarantine installed after the last snapshot still gets
	// re-pushed.
	ReadbackQuarantines func(group int) []string
	// RepushQuarantine re-asserts one device's quarantine. Recovery
	// calls it for the full union BEFORE any state restore (fail-closed
	// ordering).
	RepushQuarantine func(ctx context.Context, device string)
	// ProfileGen reports the enforcement plane's installed-profile
	// generation for checkpoints.
	ProfileGen func() uint64
	// Fleet, when set, gets failover state pushed into the rollup plane
	// (SetShardFailover) so /debug/fleet and mboxctl fleet surface it.
	Fleet *FleetAggregator
	// OnFailover observes each completed failover (chaos harnesses wait
	// on it). Called with the supervisor lock held; must not block.
	OnFailover func(FailoverRecord)
}

// FailoverRecord is one completed failover, oldest-detail first in the
// supervisor's bounded history.
type FailoverRecord struct {
	// Group is the partition whose local controller died.
	Group int `json:"group"`
	// DetectedAt is when the deadman declared it dead.
	DetectedAt time.Time `json:"detected_at"`
	// Misses is the failed-probe count at declaration.
	Misses int `json:"misses"`
	// Target names the new home ("shard-NNN" or "global").
	Target string `json:"target"`
	// QuarantinesRepushed counts devices whose quarantine was
	// re-asserted before state restore.
	QuarantinesRepushed int `json:"quarantines_repushed"`
	// VarsRestored counts view variables rebuilt into the new home.
	VarsRestored int `json:"vars_restored"`
	// EventsReplayed counts journal view-changes replayed on top of the
	// checkpoint.
	EventsReplayed int `json:"events_replayed"`
	// Recovery is detection → recovery-complete.
	Recovery time.Duration `json:"recovery_ns"`
	// TraceID links the failover/rehomed/recovered journal events.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// groupState is one supervised partition's deadman state.
type groupState struct {
	lastBeat  time.Time
	misses    int
	probe     *resilience.Backoff
	nextProbe time.Time
	dead      bool
}

// Supervisor runs the deadman + checkpoint loop over a hierarchy's
// local controllers and executes the failover protocol when one dies:
// journal controller-failover, re-push quarantines (fail-closed),
// re-home the partition, journal partition-rehomed and
// recovery-complete on the same trace, and observe the recovery MTTR.
//
// Tick is the whole supervision pass and is safe to drive directly —
// determinism tests call it under a FakeClock instead of Start's
// goroutine.
type Supervisor struct {
	h     *Hierarchy
	opts  SupervisorOptions
	clock resilience.Clock
	j     *journal.Journal

	log     *CheckpointLog
	history *resilience.Ring[FailoverRecord]

	mu       sync.Mutex
	groups   map[int]*groupState
	lastCkpt time.Time

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// Supervise attaches a supervisor to the hierarchy's local controllers.
// It does not start the background loop — call Start, or drive Tick
// manually.
func (h *Hierarchy) Supervise(opts SupervisorOptions) *Supervisor {
	if opts.Clock == nil {
		opts.Clock = resilience.System
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Misses <= 0 {
		opts.Misses = 3
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 2 * time.Second
	}
	if opts.FailMode == "" {
		opts.FailMode = FailModeRehome
	}
	if opts.Journal == nil {
		opts.Journal = journal.Default
	}
	if opts.HistoryCap <= 0 {
		opts.HistoryCap = 64
	}
	s := &Supervisor{
		h:       h,
		opts:    opts,
		clock:   opts.Clock,
		j:       opts.Journal,
		log:     NewCheckpointLog(opts.CheckpointKeep),
		history: resilience.NewRing[FailoverRecord](opts.HistoryCap),
		groups:  make(map[int]*groupState, len(h.locals)),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	now := s.clock.Now()
	s.lastCkpt = now
	for g := range h.locals {
		s.groups[g] = &groupState{lastBeat: now}
	}
	mCtrlSupervised.Set(int64(len(s.groups)))
	return s
}

// Start runs the supervision loop on the configured clock until Stop.
func (s *Supervisor) Start() {
	go func() {
		defer close(s.done)
		t := s.clock.NewTicker(s.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-s.stopCh:
				return
			case <-t.C():
				s.Tick()
			}
		}
	}()
}

// Stop halts the background loop (idempotent; no-op if Start was never
// called — the done channel is only closed by the loop).
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
}

// Tick runs one deterministic supervision pass: probe every supervised
// local, declare deaths, fail over, and take due checkpoints.
func (s *Supervisor) Tick() {
	now := s.clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.sortedGroupsLocked() {
		gs := s.groups[g]
		if gs.dead {
			continue
		}
		if s.h.locals[g].Alive() {
			gs.lastBeat, gs.misses, gs.probe = now, 0, nil
			continue
		}
		// Missed beat. Confirmation probes are paced by a deterministic
		// (jitter-free) backoff so the schedule replays identically.
		if gs.probe != nil && now.Before(gs.nextProbe) {
			continue
		}
		gs.misses++
		mCtrlMissedBeats.Inc()
		if gs.probe == nil {
			gs.probe = resilience.NewBackoff(resilience.BackoffOptions{
				Base: s.opts.Heartbeat, Cap: 4 * s.opts.Heartbeat, NoJitter: true,
			})
		}
		delay, ok := gs.probe.Next()
		if gs.misses >= s.opts.Misses || !ok {
			s.failoverLocked(now, g, gs)
			continue
		}
		gs.nextProbe = now.Add(delay)
	}
	if s.opts.CheckpointEvery > 0 && now.Sub(s.lastCkpt) >= s.opts.CheckpointEvery {
		s.checkpointLocked(now)
	}
}

// Checkpoint forces an immediate snapshot pass over every live
// partition (originals and post-failover replacements).
func (s *Supervisor) Checkpoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkpointLocked(s.clock.Now())
}

// checkpointLocked snapshots each partition whose controller (original
// or replacement) is live. Fail-global partitions have no local state
// to snapshot — the global view is authoritative for them.
func (s *Supervisor) checkpointLocked(now time.Time) {
	s.lastCkpt = now
	rt := s.h.rehomes.Load()
	for _, g := range s.sortedGroupsLocked() {
		var l *Local
		if s.groups[g].dead {
			if rt != nil {
				if ent, ok := rt.targets[g]; ok {
					l = ent.local
				}
			}
		} else if orig := s.h.locals[g]; orig.Alive() {
			l = orig
		}
		if l == nil {
			continue
		}
		// Capture the journal sequence BEFORE the variable snapshot:
		// View.apply commits to the view before journaling, so any
		// view-change at or below seq is already in Vars and replaying
		// everything above seq loses nothing.
		seq, _ := journal.Default.Stats()
		ck := Checkpoint{
			Group:    g,
			TakenAt:  now,
			Seq:      seq,
			Version:  l.View.Version(),
			Vars:     l.View.Vars(),
			Postures: l.Postures(),
		}
		if s.opts.QuarantinedOf != nil {
			ck.Quarantined = append([]string(nil), s.opts.QuarantinedOf(g)...)
			sort.Strings(ck.Quarantined)
		}
		if s.opts.ProfileGen != nil {
			ck.ProfileGen = s.opts.ProfileGen()
		}
		s.log.Append(ck)
		mCtrlCheckpoints.Inc()
	}
}

// failoverLocked executes the recovery protocol for one dead local.
// Ordering is the invariant DESIGN.md §12 documents: journal the
// failure, re-push quarantines (checkpoint ∪ flow-table readback),
// THEN rebuild state and re-home, then close the trace with
// recovery-complete and observe the MTTR.
func (s *Supervisor) failoverLocked(now time.Time, group int, gs *groupState) {
	gs.dead = true
	ctx, span := telemetry.StartSpan(context.Background(), "controller.failover")
	span.SetAttr("group", strconv.Itoa(group))
	defer span.End()

	failGlobal := s.opts.FailMode == FailModeGlobal
	mCtrlFailovers.Inc()
	s.j.Record(ctx, journal.TypeCtrlFailover, journal.Critical, "",
		fmt.Sprintf("local controller %d dead after %d missed heartbeats; re-homing %d devices (%s)",
			group, gs.misses, len(s.h.groupDevices(group)), s.opts.FailMode))

	ck, _ := s.log.Latest(group) // zero checkpoint ⇒ full journal replay

	// Fail-closed: quarantines first, from the union of the last
	// checkpoint and what the switches actually hold.
	quarSet := make(map[string]bool, len(ck.Quarantined))
	for _, dev := range ck.Quarantined {
		quarSet[dev] = true
	}
	if s.opts.ReadbackQuarantines != nil {
		for _, dev := range s.opts.ReadbackQuarantines(group) {
			quarSet[dev] = true
		}
	}
	quar := make([]string, 0, len(quarSet))
	for dev := range quarSet {
		quar = append(quar, dev)
	}
	sort.Strings(quar)
	for _, dev := range quar {
		if s.opts.RepushQuarantine != nil {
			s.opts.RepushQuarantine(ctx, dev)
		}
		mCtrlQuarantineRepush.Inc()
	}

	res := s.h.rehome(ctx, group, failGlobal, ck, s.j, now)

	recovery := s.clock.Now().Sub(now)
	mCtrlRecoverySeconds.Observe(recovery.Seconds())
	s.j.Record(ctx, journal.TypeCtrlRecovered, journal.Info, "",
		fmt.Sprintf("partition %d protected again via %s in %s: %d quarantines re-pushed first, %d vars restored, %d events replayed",
			group, res.Target, recovery, len(quar), res.VarsRestored, res.EventsReplayed))

	rec := FailoverRecord{
		Group: group, DetectedAt: now, Misses: gs.misses, Target: res.Target,
		QuarantinesRepushed: len(quar), VarsRestored: res.VarsRestored,
		EventsReplayed: res.EventsReplayed, Recovery: recovery,
		TraceID: telemetry.TraceID(ctx),
	}
	s.history.Push(rec)
	if s.opts.Fleet != nil {
		s.opts.Fleet.SetShardFailover(fmt.Sprintf("shard-%03d", group), res.Target, now)
	}
	if s.opts.OnFailover != nil {
		s.opts.OnFailover(rec)
	}
}

// sortedGroupsLocked returns supervised groups in deterministic order.
func (s *Supervisor) sortedGroupsLocked() []int {
	out := make([]int, 0, len(s.groups))
	for g := range s.groups {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// History returns the retained failover records, oldest first.
func (s *Supervisor) History() []FailoverRecord {
	return s.history.Snapshot()
}

// Checkpoints exposes the snapshot log (failover-snapshot.json
// artifact body).
func (s *Supervisor) Checkpoints() *CheckpointLog { return s.log }

// ControllerStatus is one partition's supervision state for operators.
type ControllerStatus struct {
	Group   int  `json:"group"`
	Devices int  `json:"devices"`
	Alive   bool `json:"alive"`
	Misses  int  `json:"misses,omitempty"`
	// LastBeat is the last successful liveness probe.
	LastBeat time.Time `json:"last_beat"`
	// LastCheckpoint / CheckpointAgeSecs describe the newest snapshot
	// (absent when none was taken yet).
	LastCheckpoint *time.Time `json:"last_checkpoint,omitempty"`
	CheckpointAge  float64    `json:"checkpoint_age_secs,omitempty"`
	CheckpointSeq  uint64     `json:"checkpoint_seq,omitempty"`
	// RehomedTo / RehomedAt are set once the partition failed over.
	RehomedTo string     `json:"rehomed_to,omitempty"`
	RehomedAt *time.Time `json:"rehomed_at,omitempty"`
}

// SupervisorStatus is the /debug/controllers document.
type SupervisorStatus struct {
	FailMode      FailMode           `json:"fail_mode"`
	HeartbeatSecs float64            `json:"heartbeat_secs"`
	Misses        int                `json:"misses"`
	Partitions    []ControllerStatus `json:"partitions"`
	Failovers     []FailoverRecord   `json:"failovers,omitempty"`
}

// Status snapshots every supervised partition plus the failover
// history.
func (s *Supervisor) Status() SupervisorStatus {
	now := s.clock.Now()
	s.mu.Lock()
	groups := s.sortedGroupsLocked()
	states := make(map[int]groupState, len(groups))
	for g, gs := range s.groups {
		states[g] = *gs
	}
	s.mu.Unlock()

	st := SupervisorStatus{
		FailMode:      s.opts.FailMode,
		HeartbeatSecs: s.opts.Heartbeat.Seconds(),
		Misses:        s.opts.Misses,
		Failovers:     s.History(),
	}
	for _, g := range groups {
		gs := states[g]
		cs := ControllerStatus{
			Group:    g,
			Devices:  len(s.h.groupDevices(g)),
			Alive:    !gs.dead && s.h.locals[g].Alive(),
			Misses:   gs.misses,
			LastBeat: gs.lastBeat,
		}
		if ck, ok := s.log.Latest(g); ok {
			t := ck.TakenAt
			cs.LastCheckpoint = &t
			cs.CheckpointAge = now.Sub(t).Seconds()
			cs.CheckpointSeq = ck.Seq
		}
		if target, ok := s.h.Rehomed(g); ok {
			cs.RehomedTo = target.Target
			at := target.At
			cs.RehomedAt = &at
		}
		st.Partitions = append(st.Partitions, cs)
	}
	return st
}

// Handler serves Status as JSON — mounted at /debug/controllers.
func (s *Supervisor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Status())
	})
}
