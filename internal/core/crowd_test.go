package core

import (
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
	"iotsec/internal/sigrepo"
)

// TestCrowdsourcedSignatureEndToEnd closes the full §4.1 loop: a
// remote deployment publishes a backdoor signature, the community
// clears it by voting, and THIS platform's running IDS µmbox starts
// blocking the attack — no local configuration at all.
func TestCrowdsourcedSignatureEndToEnd(t *testing.T) {
	// The community repository.
	repo := sigrepo.NewRepository("salt")
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Our deployment: a Wemo behind an IDS posture with no rules yet.
	d := policy.NewDomain()
	d.AddDevice("wemo", policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "wemo-ids",
		Device:   "wemo",
		Posture:  policy.Posture{Modules: []policy.ModuleSpec{{Kind: "ids"}}},
		Priority: 1,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.50"), device.Appliance{Name: "lamp"})
	if _, err := p.AddDevice(plug.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	link, err := p.ConnectSigrepo(addr, "our-home")
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	// Pre-signature: the backdoor works (transport-wise).
	attackerIP := packet.MustParseIPv4("10.0.0.66")
	attackerStack := netsim.NewStack("attacker", device.MACFor(attackerIP), attackerIP)
	p.AttachHost(attackerStack)
	t.Cleanup(attackerStack.Stop)
	client := &device.Client{Stack: attackerStack, Timeout: time.Second}
	if _, err := client.Call(plug.IP(), device.Request{Cmd: "OFF", Args: []string{device.PlugBackdoorToken}}); err != nil {
		t.Fatalf("pre-signature backdoor call failed at transport: %v", err)
	}

	// A remote victim publishes; three deployments confirm.
	victim, err := sigrepo.DialClient(addr, "first-victim")
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	sig, err := victim.Publish(plug.Profile.SKU,
		`block tcp any any -> any 80 (msg:"wemo backdoor token"; content:"`+device.PlugBackdoorToken+`"; sid:9001;)`,
		"post-incident analysis")
	if err != nil {
		t.Fatal(err)
	}
	for i, org := range []string{"org-1", "org-2", "org-3"} {
		voter, err := sigrepo.DialClient(addr, org)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := voter.Vote(sig.ID, true); err != nil {
			t.Fatalf("vote %d: %v", i, err)
		}
		voter.Close()
	}

	// The signature propagates and the SAME attack now dies at our
	// µmbox.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, err := client.Call(plug.IP(), device.Request{Cmd: "OFF", Args: []string{device.PlugBackdoorToken}})
		if err != nil {
			break // blocked: signature live
		}
		if time.Now().After(deadline) {
			t.Fatal("community signature never took effect locally")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// And the context escalated off the block alert.
	if !p.WaitForContext("wemo", policy.ContextCompromised, 2*time.Second) {
		t.Error("block alert did not escalate the device context")
	}
}
