package mbox

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// staticElement returns a fixed verdict and records calls.
type staticElement struct {
	name    string
	verdict Verdict
	calls   int
	mu      sync.Mutex
}

func (s *staticElement) Name() string { return s.name }
func (s *staticElement) Process(*Context) Verdict {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return s.verdict
}
func (s *staticElement) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func testCtx(t *testing.T, dir Direction, payload string, dstPort uint16) *Context {
	t.Helper()
	src, dst := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
	tcp := &packet.TCP{SrcPort: 40000, DstPort: dstPort, Seq: 1, Ack: 1, Flags: packet.TCPPsh | packet.TCPAck}
	tcp.SetNetworkForChecksum(src, dst)
	b := packet.NewSerializeBuffer()
	layers := []packet.SerializableLayer{
		&packet.Ethernet{SrcMAC: packet.MACAddress{2, 0, 0, 0, 0, 1}, DstMAC: packet.MACAddress{2, 0, 0, 0, 0, 2}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
		tcp,
	}
	if payload != "" {
		layers = append(layers, packet.NewPayload([]byte(payload)))
	}
	if err := packet.SerializeLayers(b, layers...); err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, b.Len())
	copy(frame, b.Bytes())
	return &Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet), Dir: dir}
}

func TestPipelineOrderAndShortCircuit(t *testing.T) {
	a := &staticElement{name: "a", verdict: Forward}
	b := &staticElement{name: "b", verdict: Drop}
	c := &staticElement{name: "c", verdict: Forward}
	p := NewPipeline(a, b, c)
	if v := p.Process(testCtx(t, ToDevice, "x", 80)); v != Drop {
		t.Errorf("verdict = %v", v)
	}
	if a.callCount() != 1 || b.callCount() != 1 || c.callCount() != 0 {
		t.Errorf("calls = %d %d %d; drop must short-circuit", a.callCount(), b.callCount(), c.callCount())
	}
	stats := p.Stats()
	if stats[1].Dropped != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPipelineLiveReconfiguration(t *testing.T) {
	a := &staticElement{name: "a", verdict: Forward}
	p := NewPipeline(a)
	if got := p.Elements(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("elements = %v", got)
	}
	b := &staticElement{name: "b", verdict: Forward}
	p.Insert(0, b)
	if got := p.Elements(); len(got) != 2 || got[0] != "b" {
		t.Fatalf("after insert: %v", got)
	}
	if !p.Remove("a") {
		t.Fatal("remove failed")
	}
	if p.Remove("nope") {
		t.Fatal("removed nonexistent element")
	}
	p.Replace(a, b)
	if got := p.Elements(); len(got) != 2 || got[0] != "a" {
		t.Fatalf("after replace: %v", got)
	}
	if p.Reconfigs() != 3 {
		t.Errorf("reconfigs = %d", p.Reconfigs())
	}
}

func TestHeaderFilter(t *testing.T) {
	attacker := packet.MustParseIPv4("10.0.0.1")
	f := NewHeaderFilter(Allow, ACLRule{Action: Deny, SrcIP: IPPtr(attacker), DstPort: PortPtr(80)})
	if v := f.Process(testCtx(t, ToDevice, "x", 80)); v != Drop {
		t.Error("matching deny rule should drop")
	}
	if v := f.Process(testCtx(t, ToDevice, "x", 81)); v != Forward {
		t.Error("non-matching frame should use default allow")
	}
	f.SetRules(Deny) // default-deny, no rules
	if v := f.Process(testCtx(t, ToDevice, "x", 9)); v != Drop {
		t.Error("default deny should drop")
	}
}

func TestRateLimiter(t *testing.T) {
	rl := NewRateLimiter(10, 5)
	now := time.Now()
	rl.Clock = func() time.Time { return now }
	passed := 0
	for i := 0; i < 20; i++ {
		if rl.Process(testCtx(t, ToDevice, "x", 80)) == Forward {
			passed++
		}
	}
	if passed != 5 {
		t.Errorf("burst passed %d, want 5", passed)
	}
	// After one second 10 tokens accrue but the bucket caps at its
	// burst capacity of 5.
	now = now.Add(time.Second)
	passed = 0
	for i := 0; i < 20; i++ {
		if rl.Process(testCtx(t, ToDevice, "x", 80)) == Forward {
			passed++
		}
	}
	if passed != 5 {
		t.Errorf("refill passed %d, want capacity-capped 5", passed)
	}
	// A 200ms gap refills exactly 2 tokens.
	now = now.Add(200 * time.Millisecond)
	passed = 0
	for i := 0; i < 5; i++ {
		if rl.Process(testCtx(t, ToDevice, "x", 80)) == Forward {
			passed++
		}
	}
	if passed != 2 {
		t.Errorf("partial refill passed %d, want 2", passed)
	}
}

func TestStatefulFirewall(t *testing.T) {
	fw := NewStatefulFirewall()
	inbound := testCtx(t, ToDevice, "x", 4000)
	if v := fw.Process(inbound); v != Drop {
		t.Error("unsolicited inbound should drop")
	}
	// Device initiates outbound; the reverse flow becomes allowed.
	outbound := testCtx(t, FromDevice, "x", 4000)
	if v := fw.Process(outbound); v != Forward {
		t.Error("outbound should pass")
	}
	// Reply: same canonical flow, reversed endpoints.
	src, dst := packet.MustParseIPv4("10.0.0.2"), packet.MustParseIPv4("10.0.0.1")
	tcp := &packet.TCP{SrcPort: 4000, DstPort: 40000, Flags: packet.TCPPsh | packet.TCPAck}
	tcp.SetNetworkForChecksum(src, dst)
	b := packet.NewSerializeBuffer()
	_ = packet.SerializeLayers(b,
		&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
		tcp, packet.NewPayload([]byte("reply")),
	)
	reply := &Context{Frame: b.Bytes(), Packet: packet.Decode(b.Bytes(), packet.LayerTypeEthernet), Dir: ToDevice}
	if v := fw.Process(reply); v != Forward {
		t.Error("reply on established flow should pass")
	}
	// Open port passes unsolicited inbound.
	fw2 := NewStatefulFirewall(80)
	if v := fw2.Process(testCtx(t, ToDevice, "x", 80)); v != Forward {
		t.Error("open port should pass")
	}
}

func TestDNSGuard(t *testing.T) {
	gw := packet.MustParseIPv4("10.0.0.254")
	g := &DNSGuard{AllowedClients: map[packet.IPv4Address]bool{gw: true}, MaxResponseBytes: 200}

	mkUDP := func(srcIP string, srcPort, dstPort uint16, size int, dir Direction) *Context {
		src, dst := packet.MustParseIPv4(srcIP), packet.MustParseIPv4("10.0.0.2")
		udp := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
		udp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		payload := make([]byte, size)
		_ = packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolUDP},
			udp, packet.NewPayload(payload),
		)
		frame := make([]byte, b.Len())
		copy(frame, b.Bytes())
		return &Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet), Dir: dir}
	}

	if v := g.Process(mkUDP("10.0.9.9", 5353, 53, 30, ToDevice)); v != Drop {
		t.Error("outsider query should drop")
	}
	if v := g.Process(mkUDP("10.0.0.254", 5353, 53, 30, ToDevice)); v != Forward {
		t.Error("whitelisted query should pass")
	}
	if v := g.Process(mkUDP("10.0.0.2", 53, 5353, 500, FromDevice)); v != Drop {
		t.Error("oversized response should drop")
	}
	if v := g.Process(mkUDP("10.0.0.2", 53, 5353, 100, FromDevice)); v != Forward {
		t.Error("small response should pass")
	}
	q, r := g.Dropped()
	if q != 1 || r != 1 {
		t.Errorf("dropped = %d %d", q, r)
	}
}

func TestIDSElement(t *testing.T) {
	rules, err := ids.ParseRules(`block tcp any any -> any 80 (msg:"default creds"; content:"admin:admin"; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	var alerts []ids.Alert
	e := &IDSElement{Engine: ids.NewEngine(rules), OnAlert: func(a ids.Alert) { alerts = append(alerts, a) }}
	if v := e.Process(testCtx(t, ToDevice, "auth: admin:admin", 80)); v != Drop {
		t.Error("block rule should drop")
	}
	if len(alerts) != 1 {
		t.Errorf("alerts = %v", alerts)
	}
	if v := e.Process(testCtx(t, ToDevice, "benign", 80)); v != Forward {
		t.Error("benign payload should pass")
	}
}

// --- end-to-end: real device behind an inline µmbox ---

// wire builds client ↔ mbox ↔ device and returns the pieces.
func wire(t *testing.T, m *Mbox, dev *device.Device) *device.Client {
	t.Helper()
	n := netsim.NewNetwork()
	clientIP := packet.MustParseIPv4("10.0.0.100")
	clientStack := netsim.NewStack("client", device.MACFor(clientIP), clientIP)
	clientPort := clientStack.Attach(n)
	devPort, err := dev.Attach(n)
	if err != nil {
		t.Fatal(err)
	}
	south, north := m.AttachInline(n)
	n.Connect(devPort, south, netsim.LinkOptions{})
	n.Connect(north, clientPort, netsim.LinkOptions{})
	n.Start()
	t.Cleanup(func() {
		clientStack.Stop()
		dev.Stop()
		n.Stop()
	})
	return &device.Client{Stack: clientStack, Timeout: time.Second}
}

func TestPasswordProxyEndToEnd(t *testing.T) {
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	proxy := NewPasswordProxy("homeadmin", "str0ng!", "admin", "admin")
	m := NewMbox("mb-cam", NewPipeline(proxy))
	client := wire(t, m, cam.Device)

	// The factory default — the attack of Figure 4 — is now refused
	// at the proxy, with an immediate reset.
	_, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "admin", Pass: "admin"})
	if err == nil {
		t.Fatal("factory credentials traversed the proxy")
	}
	if !errors.Is(err, netsim.ErrReset) && !errors.Is(err, netsim.ErrTimeout) && !errors.Is(err, netsim.ErrClosed) {
		t.Logf("note: refused with %v", err)
	}

	// The administrator-chosen credentials work even though the
	// device itself has never heard of them.
	resp, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "str0ng!"})
	if err != nil {
		t.Fatalf("new credentials failed: %v", err)
	}
	if !resp.OK {
		t.Fatalf("device rejected translated request: %+v", resp)
	}

	accepted, rejected := proxy.Counters()
	if accepted != 1 || rejected != 1 {
		t.Errorf("proxy counters = %d accepted %d rejected", accepted, rejected)
	}

	// Live rotation.
	proxy.SetCredentials("homeadmin", "newpass")
	if _, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "str0ng!"}); err == nil {
		t.Error("old credentials survived rotation")
	}
	if resp, err := client.Call(cam.IP(), device.Request{Cmd: "SNAPSHOT", User: "homeadmin", Pass: "newpass"}); err != nil || !resp.OK {
		t.Errorf("rotated credentials failed: %v %+v", err, resp)
	}
}

func TestContextGateEndToEnd(t *testing.T) {
	plug := device.NewSmartPlug("wemo", packet.MustParseIPv4("10.0.0.11"), device.Appliance{
		Name: "oven", PowerVar: "oven_power", Watts: 1800,
	})
	var personHome sync.Map
	personHome.Store("v", false)
	gate := NewContextGate(func(string) bool {
		v, _ := personHome.Load("v")
		return v.(bool)
	}, "ON")
	m := NewMbox("mb-wemo", NewPipeline(gate))
	client := wire(t, m, plug.Device)

	// Nobody home: even the backdoor cannot turn the oven on
	// (Figure 5's remote attacker).
	_, err := client.Call(plug.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}})
	if err == nil {
		t.Fatal("ON traversed the gate while away")
	}
	if plug.Get("power") == "on" {
		t.Fatal("plug turned on despite gate")
	}
	if gate.Blocked() == 0 {
		t.Error("gate did not count the block")
	}

	// OFF is not guarded: allowed even while away (fail-safe
	// direction).
	if resp, err := client.Call(plug.IP(), device.Request{Cmd: "OFF", Args: []string{device.PlugBackdoorToken}}); err != nil || !resp.OK {
		t.Fatalf("OFF should pass: %v %+v", err, resp)
	}

	// Person comes home: ON now allowed.
	personHome.Store("v", true)
	resp, err := client.Call(plug.IP(), device.Request{Cmd: "ON", Args: []string{device.PlugBackdoorToken}})
	if err != nil || !resp.OK {
		t.Fatalf("ON while home failed: %v %+v", err, resp)
	}
	if plug.Get("power") != "on" {
		t.Error("plug not on")
	}
}

func TestManagerLaunchPlacementAndMetrics(t *testing.T) {
	mgr := NewManager(Server{Name: "s1", Slots: 2}, Server{Name: "s2", Slots: 1})
	mgr.TimeScale = 0.001

	for i, name := range []string{"a", "b", "c"} {
		if _, err := mgr.Launch(context.Background(), name, PlatformMicroVM, NewPipeline()); err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
	}
	if _, err := mgr.Launch(context.Background(), "d", PlatformMicroVM, NewPipeline()); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("over-capacity launch: %v", err)
	}
	if _, err := mgr.Launch(context.Background(), "a", PlatformMicroVM, NewPipeline()); !errors.Is(err, ErrDuplicateMbox) {
		t.Errorf("duplicate launch: %v", err)
	}
	total, used := mgr.Capacity()
	if total != 3 || used != 3 {
		t.Errorf("capacity = %d/%d", used, total)
	}
	if err := mgr.Terminate("b"); err != nil {
		t.Fatal(err)
	}
	if _, used = mgr.Capacity(); used != 2 {
		t.Errorf("used after terminate = %d", used)
	}
	// Freed slot is reusable.
	if _, err := mgr.Launch(context.Background(), "e", PlatformProcess, NewPipeline()); err != nil {
		t.Fatal(err)
	}
	boots, mean, _ := mgr.Metrics()
	if boots != 4 {
		t.Errorf("boots = %d", boots)
	}
	if mean <= 0 {
		t.Errorf("mean boot = %v", mean)
	}
	// Reconfigure requires a live instance.
	if err := mgr.Reconfigure(context.Background(), "e", &staticElement{name: "x", verdict: Forward}); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Reconfigure(context.Background(), "ghost"); !errors.Is(err, ErrUnknownMbox) {
		t.Errorf("reconfigure ghost: %v", err)
	}
}

func TestBootLatencyOrdering(t *testing.T) {
	if !(BootLatency(PlatformProcess) < BootLatency(PlatformMicroVM) &&
		BootLatency(PlatformMicroVM) < BootLatency(PlatformFullVM)) {
		t.Error("boot latency ordering violated")
	}
}

func TestCommandOf(t *testing.T) {
	if got := commandOf([]byte("IOT/1 SNAPSHOT\nauth: a:b\n")); got != "SNAPSHOT" {
		t.Errorf("commandOf = %q", got)
	}
	if got := commandOf([]byte{0x1, 0x2}); got != "<raw>" {
		t.Errorf("commandOf raw = %q", got)
	}
}

func TestProtectedIPScoping(t *testing.T) {
	// A deny-everything µmbox scoped to one device must pass foreign
	// traffic flooded onto its leg untouched.
	m := NewMbox("mb", NewPipeline(NewHeaderFilter(Deny)))
	m.SetProtectedIP(packet.MustParseIPv4("10.0.0.5"))

	n := netsim.NewNetwork()
	south, north := m.AttachInline(n)
	inSink, outSink := &sinkNode{name: "in"}, &sinkNode{name: "out"}
	n.Connect(n.NewPort(inSink, 1), south, netsim.LinkOptions{})
	outPort := n.NewPort(outSink, 1)
	n.Connect(outPort, north, netsim.LinkOptions{})
	n.Start()
	defer n.Stop()

	mkFrame := func(dstIP string) []byte {
		src, dst := packet.MustParseIPv4("10.0.0.100"), packet.MustParseIPv4(dstIP)
		tcp := &packet.TCP{SrcPort: 1, DstPort: 80, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		b := packet.NewSerializeBuffer()
		_ = packet.SerializeLayers(b,
			&packet.Ethernet{EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
			tcp, packet.NewPayload([]byte("x")),
		)
		out := make([]byte, b.Len())
		copy(out, b.Bytes())
		return out
	}

	// Foreign traffic (dst 10.0.0.9) passes despite the deny-all.
	outPort.Peer() // ensure wiring
	northPeer := north.Peer()
	_ = northPeer
	outToDevice := mkFrame("10.0.0.9")
	outPort.Send(outToDevice)
	time.Sleep(20 * time.Millisecond)
	if got := inSink.count(); got != 1 {
		t.Errorf("foreign frame not passed through: %d", got)
	}
	// Protected traffic (dst 10.0.0.5) is policed: dropped.
	outPort.Send(mkFrame("10.0.0.5"))
	time.Sleep(20 * time.Millisecond)
	if got := inSink.count(); got != 1 {
		t.Errorf("protected frame escaped the deny pipeline: %d", got)
	}
}

// sinkNode is a minimal frame counter.
type sinkNode struct {
	name string
	mu   sync.Mutex
	n    int
}

func (s *sinkNode) NodeName() string { return s.name }
func (s *sinkNode) HandleFrame(_ *netsim.Port, _ netsim.Frame) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
func (s *sinkNode) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
