package forensics

import (
	"context"
	"fmt"
	"testing"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// newTestCapturer wires a capturer to a private journal and registry
// under a frozen clock; tests drive it with Sync + Advance.
func newTestCapturer(t *testing.T, j *journal.Journal, opt Options) (*Capturer, *resilience.FakeClock) {
	t.Helper()
	clock := resilience.NewFakeClock(time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC))
	opt.Clock = clock
	opt.Registry = telemetry.NewRegistry()
	c := NewCapturer(j, opt)
	t.Cleanup(c.Close)
	return c, clock
}

// driveChain journals a complete detect→policy→enforce chain on trace.
func driveChain(j *journal.Journal, trace uint64, device string) {
	j.RecordTrace(trace, journal.TypeAnomaly, journal.Warn, device, "rate anomaly")
	j.RecordTrace(trace, journal.TypePosture, journal.Info, device, "posture quarantine")
	j.RecordTrace(trace, journal.TypeFlowMod, journal.Info, device, "drop rule")
	j.RecordTrace(trace, journal.TypeMboxReconfig, journal.Info, device, "pipeline swap")
}

// TestCaptureOpensAndSeals: an anomaly opens an incident, the chain
// accumulates, the quiet period seals it into the store, and the
// sealed record reports a complete loop.
func TestCaptureOpensAndSeals(t *testing.T) {
	j := journal.New(256)
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, clock := newTestCapturer(t, j, Options{Store: store, Shard: "shard-a"})

	driveChain(j, 42, "cam")
	c.Sync()
	if st := c.Stats(); st.Open != 1 || st.Captured != 0 {
		t.Fatalf("after chain: open=%d captured=%d, want 1/0 (quiet period not elapsed)", st.Open, st.Captured)
	}

	clock.Advance(3 * time.Second)
	c.Sync()
	st := c.Stats()
	if st.Open != 0 || st.Captured != 1 {
		t.Fatalf("after quiet period: open=%d captured=%d, want 0/1", st.Open, st.Captured)
	}
	inc, ok := store.Get(IncidentID(42))
	if !ok {
		t.Fatal("sealed incident not in the store")
	}
	if inc.Kind != KindAnomaly || inc.Device != "cam" || inc.Shard != "shard-a" {
		t.Fatalf("incident classified as %s/%s/%s, want anomaly/cam/shard-a", inc.Kind, inc.Device, inc.Shard)
	}
	if len(inc.Events) != 4 {
		t.Fatalf("captured %d events, want the full 4-event chain", len(inc.Events))
	}
	if !inc.Complete {
		t.Fatal("detect→policy→enforce chain not marked complete")
	}
	if inc.Severity != journal.Warn {
		t.Fatalf("severity %s, want the chain max (warn)", inc.Severity)
	}
}

// TestCaptureBackfillsFromRing: events journaled on a trace BEFORE the
// incident-opening event (the device-event that led to the anomaly)
// are backfilled from the ring when the incident opens.
func TestCaptureBackfillsFromRing(t *testing.T) {
	j := journal.New(256)
	c, clock := newTestCapturer(t, j, Options{})

	j.RecordTrace(7, journal.TypeDeviceEvent, journal.Debug, "wemo", "precursor reading")
	j.RecordTrace(7, journal.TypeViewChange, journal.Debug, "wemo", "context shift")
	c.Sync() // neither opens an incident
	if st := c.Stats(); st.Open != 0 {
		t.Fatalf("routine trace events opened %d incidents", st.Open)
	}

	j.RecordTrace(7, journal.TypeProfileViolation, journal.Warn, "wemo", "unauthorized service")
	c.Sync()
	inc, ok := c.Get(IncidentID(7))
	if !ok {
		t.Fatal("violation did not open an incident")
	}
	if len(inc.Events) != 3 {
		t.Fatalf("open incident has %d events, want 3 (2 backfilled + opener)", len(inc.Events))
	}
	if inc.Events[0].Type != journal.TypeDeviceEvent {
		t.Fatalf("first event is %s, want the backfilled device-event", inc.Events[0].Type)
	}
	if inc.Kind != KindProfileViolation {
		t.Fatalf("kind %s, want profile-violation", inc.Kind)
	}
	_ = clock
}

// TestCaptureSurvivesRingEviction is the point of the subsystem: a
// chain pinned into an incident outlives the journal ring overwriting
// every one of its events.
func TestCaptureSurvivesRingEviction(t *testing.T) {
	j := journal.New(32) // deliberately tiny ring, like iotsecd -journal-cap 32
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, clock := newTestCapturer(t, j, Options{Store: store})

	driveChain(j, 99, "cam")
	c.Sync() // chain pinned into the open incident

	// Flood the ring with routine traffic until the chain is evicted.
	for i := 0; i < 100; i++ {
		j.Record(context.Background(), journal.TypeDeviceEvent, journal.Debug, "thermostat", "routine")
	}
	if left := j.Snapshot(journal.Filter{TraceID: 99}); len(left) != 0 {
		t.Fatalf("test setup: %d chain events still in the ring, want 0 (raise the flood)", len(left))
	}

	clock.Advance(3 * time.Second)
	c.Sync()
	inc, ok := store.Get(IncidentID(99))
	if !ok {
		t.Fatal("incident lost with the ring")
	}
	if len(inc.Events) != 4 || !inc.Complete {
		t.Fatalf("captured %d events (complete=%v), want the full 4-event chain despite eviction", len(inc.Events), inc.Complete)
	}
}

// TestCaptureRoutineStaysRingOnly: traced but non-incident chains (a
// normal device-event → view-change tick) never become incidents.
func TestCaptureRoutineStaysRingOnly(t *testing.T) {
	j := journal.New(256)
	c, clock := newTestCapturer(t, j, Options{})
	for trace := uint64(1); trace <= 20; trace++ {
		j.RecordTrace(trace, journal.TypeDeviceEvent, journal.Debug, "cam", "routine")
		j.RecordTrace(trace, journal.TypeViewChange, journal.Debug, "cam", "routine")
	}
	c.Sync()
	clock.Advance(3 * time.Second)
	c.Sync()
	if st := c.Stats(); st.Open != 0 || st.Captured != 0 {
		t.Fatalf("routine traffic produced open=%d captured=%d incidents", st.Open, st.Captured)
	}
}

// TestCaptureMaxOpenDrops: opening events beyond MaxOpen are counted
// and dropped, never block.
func TestCaptureMaxOpenDrops(t *testing.T) {
	j := journal.New(256)
	c, _ := newTestCapturer(t, j, Options{MaxOpen: 2})
	for trace := uint64(1); trace <= 5; trace++ {
		j.RecordTrace(trace, journal.TypeAnomaly, journal.Warn, "cam", "burst")
	}
	c.Sync()
	st := c.Stats()
	if st.Open != 2 {
		t.Fatalf("open=%d, want the MaxOpen cap of 2", st.Open)
	}
	if st.OpenDrops != 3 {
		t.Fatalf("OpenDrops=%d, want 3 (loss surfaced, never silent)", st.OpenDrops)
	}
}

// TestCaptureMaxEventsTruncates: a chain longer than MaxEvents keeps
// its head and counts the overflow.
func TestCaptureMaxEventsTruncates(t *testing.T) {
	j := journal.New(256)
	c, clock := newTestCapturer(t, j, Options{MaxEvents: 5})
	j.RecordTrace(3, journal.TypeAnomaly, journal.Warn, "cam", "opener")
	for i := 0; i < 10; i++ {
		j.RecordTrace(3, journal.TypeFlowMod, journal.Info, "cam", fmt.Sprintf("rule %d", i))
	}
	c.Sync()
	_ = clock
	inc, ok := c.Get(IncidentID(3))
	if !ok {
		t.Fatal("incident not captured")
	}
	if len(inc.Events) != 5 {
		t.Fatalf("kept %d events, want the MaxEvents cap of 5", len(inc.Events))
	}
	if inc.Truncated != 6 {
		t.Fatalf("Truncated=%d, want 6", inc.Truncated)
	}
	if inc.Events[0].Detail != "opener" {
		t.Fatal("truncation dropped the chain head; it must keep the oldest events")
	}
}

// TestCaptureCloseFlushes: Close force-seals open incidents into the
// store — the shutdown path that makes in-flight chains survive a
// restart.
func TestCaptureCloseFlushes(t *testing.T) {
	j := journal.New(256)
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, _ := newTestCapturer(t, j, Options{Store: store})
	driveChain(j, 5, "cam")
	c.Close() // no quiet period elapsed
	inc, ok := store.Get(IncidentID(5))
	if !ok {
		t.Fatal("open incident lost at shutdown")
	}
	if len(inc.Events) != 4 {
		t.Fatalf("flushed %d events, want 4", len(inc.Events))
	}
}

// TestTraceEventsMergesRingOpenAndStore: the per-shard assembly feed
// unions all three views and dedupes by sequence.
func TestTraceEventsMergesRingOpenAndStore(t *testing.T) {
	j := journal.New(32)
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, clock := newTestCapturer(t, j, Options{Store: store})

	// Sealed chain: evicted from the ring, lives only in the store.
	driveChain(j, 11, "cam")
	c.Sync()
	clock.Advance(3 * time.Second)
	c.Sync()
	for i := 0; i < 100; i++ {
		j.Record(context.Background(), journal.TypeDeviceEvent, journal.Debug, "x", "flood")
	}
	c.Sync()
	clock.Advance(3 * time.Second)
	c.Sync()

	// Re-activity on the same trace: new events live in ring + a fresh
	// open incident; the stored record holds the original four.
	j.RecordTrace(11, journal.TypeAnomaly, journal.Warn, "cam", "recurrence")
	c.Sync()

	events := c.TraceEvents(11)
	if len(events) != 5 {
		t.Fatalf("TraceEvents merged %d events, want 5 (4 stored + 1 live)", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatal("TraceEvents not in sequence order")
		}
	}
	if c.TraceEvents(0) != nil {
		t.Fatal("trace 0 must return nothing (untraced events are not a chain)")
	}
}

// TestCaptureDigestsOpenWins: an incident both stored and re-opened
// surfaces once, with the open (live) view winning.
func TestCaptureDigestsOpenWins(t *testing.T) {
	j := journal.New(256)
	store, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, clock := newTestCapturer(t, j, Options{Store: store})

	driveChain(j, 8, "cam")
	c.Sync()
	clock.Advance(3 * time.Second)
	c.Sync() // sealed

	j.RecordTrace(8, journal.TypeAnomaly, journal.Critical, "cam", "recurrence")
	c.Sync() // re-opened

	ds := c.Digests()
	if len(ds) != 1 {
		t.Fatalf("Digests lists %d records for one trace, want 1", len(ds))
	}
	if !ds[0].Open() {
		t.Fatal("open view must win over the stored record")
	}
	if ds[0].Severity != journal.Critical {
		t.Fatalf("digest severity %s, want the live critical", ds[0].Severity)
	}
}
