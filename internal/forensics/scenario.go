package forensics

import (
	"encoding/json"
	"fmt"
	"time"

	"iotsec/internal/journal"
)

// ScenarioVersion is bumped when the scenario shape changes
// incompatibly; Load rejects versions it does not understand.
const ScenarioVersion = 1

// DefaultReplaySLO bounds a replayed detect→enforce (or
// failover→recovered) chain when the export does not carry one.
const DefaultReplaySLO = 5 * time.Second

// Trigger is the condensed cause of the incident: what the replay
// harness re-injects to re-drive the chain.
type Trigger struct {
	// Type is the opening journal event type.
	Type journal.Type `json:"type"`
	// Detail is the opening event's detail line.
	Detail string `json:"detail,omitempty"`
}

// Scenario is a self-contained, replayable incident export: enough to
// rebuild an equivalent device and policy, re-inject the trigger, and
// assert the same chain stages re-fire within the SLO — ROADMAP item
// 4's "every discovered chain becomes a regression scenario" in file
// form. It is what mboxctl incidents export writes and iotsim -replay
// reads.
type Scenario struct {
	Version int `json:"version"`
	// Incident and TraceID tie the scenario back to its capture.
	Incident string `json:"incident_id"`
	TraceID  uint64 `json:"trace_id,omitempty"`
	// Kind selects the replay harness (detection kinds re-drive the
	// anomaly path; controller-failover re-drives a supervised kill).
	Kind string `json:"kind"`
	// Device and SKU rebuild the victim device.
	Device string `json:"device"`
	SKU    string `json:"sku,omitempty"`
	Shard  string `json:"shard,omitempty"`
	// Trigger is re-injected to start the chain.
	Trigger Trigger `json:"trigger"`
	// ExpectedStages is the ordered set of chain stages the replay must
	// re-observe (journal.Stage buckets for detection kinds; the three
	// failover event types for failovers).
	ExpectedStages []string `json:"expected_stages"`
	// SLOSeconds bounds the replayed chain end to end.
	SLOSeconds float64 `json:"slo_seconds"`
	// Events is the originally captured chain, for human diffing of a
	// replay against the real thing.
	Events []journal.Event `json:"events,omitempty"`
}

// SLO returns the scenario's chain deadline.
func (s *Scenario) SLO() time.Duration {
	if s.SLOSeconds <= 0 {
		return DefaultReplaySLO
	}
	return time.Duration(s.SLOSeconds * float64(time.Second))
}

// failoverStages is a failover chain's expected event-type order.
var failoverStages = []string{
	string(journal.TypeCtrlFailover),
	string(journal.TypeCtrlRehomed),
	string(journal.TypeCtrlRecovered),
}

// ExportScenario condenses a captured incident into a replayable
// scenario. slo <= 0 uses DefaultReplaySLO.
func ExportScenario(inc *Incident, slo time.Duration) *Scenario {
	if slo <= 0 {
		slo = DefaultReplaySLO
	}
	s := &Scenario{
		Version:    ScenarioVersion,
		Incident:   inc.ID,
		TraceID:    inc.TraceID,
		Kind:       inc.Kind,
		Device:     inc.Device,
		SKU:        inc.SKU,
		Shard:      inc.Shard,
		SLOSeconds: slo.Seconds(),
		Events:     append([]journal.Event(nil), inc.Events...),
	}
	for _, e := range inc.Events {
		if kind, ok := KindOf(e.Type); ok && kind == inc.Kind {
			s.Trigger = Trigger{Type: e.Type, Detail: e.Detail}
			break
		}
	}
	if s.Kind == KindFailover {
		s.ExpectedStages = append([]string(nil), failoverStages...)
		return s
	}
	seen := make(map[string]bool)
	for _, e := range inc.Events {
		stage := journal.Stage(e.Type)
		if stage == "other" || seen[stage] {
			continue
		}
		seen[stage] = true
		s.ExpectedStages = append(s.ExpectedStages, stage)
	}
	return s
}

// Validate rejects scenarios a replay harness cannot honor.
func (s *Scenario) Validate() error {
	if s.Version != ScenarioVersion {
		return fmt.Errorf("forensics: scenario version %d (want %d)", s.Version, ScenarioVersion)
	}
	switch s.Kind {
	case KindAnomaly, KindProfileViolation, KindRogueQuarantine, KindSLOBurn:
		if s.Device == "" {
			return fmt.Errorf("forensics: %s scenario without a device", s.Kind)
		}
	case KindFailover:
	default:
		return fmt.Errorf("forensics: unknown scenario kind %q", s.Kind)
	}
	if len(s.ExpectedStages) == 0 {
		return fmt.Errorf("forensics: scenario with no expected stages")
	}
	return nil
}

// LoadScenario parses and validates a scenario document.
func LoadScenario(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("forensics: scenario parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
