package profile

import (
	"sync"
	"testing"
	"time"

	"iotsec/internal/packet"
	"iotsec/internal/telemetry"
)

var (
	camMAC   = packet.MACAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x10}
	plugMAC  = packet.MACAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x11}
	hostMAC  = packet.MACAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x20}
	rogueMAC = packet.MACAddress{0x02, 0x00, 0x00, 0x00, 0x00, 0x66}

	camIP   = packet.MustParseIPv4("10.0.0.10")
	plugIP  = packet.MustParseIPv4("10.0.0.11")
	hostIP  = packet.MustParseIPv4("10.0.0.200")
	cloudIP = packet.MustParseIPv4("192.0.2.50")
)

// udpFrame serializes a full Ethernet/IPv4/UDP frame for tap
// injection.
func udpFrame(t *testing.T, srcMAC, dstMAC packet.MACAddress, srcIP, dstIP packet.IPv4Address, srcPort, dstPort uint16) []byte {
	t.Helper()
	udp := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetworkForChecksum(srcIP, dstIP)
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: srcMAC, DstMAC: dstMAC, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolUDP},
		udp,
		packet.NewPayload([]byte("x")),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out
}

func arpFrame(t *testing.T, srcMAC packet.MACAddress, srcIP, targetIP packet.IPv4Address) []byte {
	t.Helper()
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: srcMAC, DstMAC: packet.BroadcastMAC, EtherType: packet.EtherTypeARP},
		&packet.ARP{Operation: packet.ARPRequest, SenderMAC: srcMAC, SenderIP: srcIP, TargetIP: targetIP},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out
}

func camIdentity() Identity {
	return Identity{Name: "cam", SKU: "cam-fw1", MAC: camMAC, IP: camIP}
}

// TestEngineLearnDistill drives a training window through the engine
// tap path and checks per-SKU distillation, including the
// zero-observed-flows device producing an empty (deny-everything)
// profile instead of panicking.
func TestEngineLearnDistill(t *testing.T) {
	e := NewEngine(Options{})
	e.Register(camIdentity())
	e.Register(Identity{Name: "plug", SKU: "cam-fw1", MAC: plugMAC, IP: plugIP})
	e.Register(Identity{Name: "mute", SKU: "mute-fw1",
		MAC: packet.MACAddress{0x02, 0, 0, 0, 0, 0x12}, IP: packet.MustParseIPv4("10.0.0.12")})
	e.StartLearning()

	// cam serves UDP 5683 (request in, reply out); plug checks in to
	// the cloud on UDP 9000. Same SKU → one merged profile.
	e.Observe("host", "cam", udpFrame(t, hostMAC, camMAC, hostIP, camIP, 40000, 5683))
	e.Observe("cam", "host", udpFrame(t, camMAC, hostMAC, camIP, hostIP, 5683, 40000))
	e.Observe("plug", "sw", udpFrame(t, plugMAC, hostMAC, plugIP, cloudIP, 41000, 9000))

	profiles := e.FinishLearning(1)
	prof := profiles["cam-fw1"]
	if prof == nil {
		t.Fatalf("no cam-fw1 profile: %v", profiles)
	}
	if len(prof.Services) != 2 {
		t.Fatalf("cam-fw1 services = %+v, want served 5683 + initiated 9000", prof.Services)
	}
	if !prof.Allows("udp", 5683, 40000, hostIP) {
		t.Error("served reply not allowed")
	}
	if !prof.Allows("udp", 41000, 9000, cloudIP) {
		t.Error("cloud check-in not allowed")
	}
	if prof.Devices != 2 {
		t.Errorf("Devices = %d, want 2 (merged)", prof.Devices)
	}
	if prof.MaxRate <= 0 {
		t.Errorf("MaxRate = %v, want a positive envelope", prof.MaxRate)
	}

	// The silent device still yields a (deny-everything) profile.
	mute := profiles["mute-fw1"]
	if mute == nil {
		t.Fatal("zero-observed-flows SKU produced no profile")
	}
	if len(mute.Services) != 0 || mute.Services == nil {
		t.Errorf("silent profile services = %#v, want empty non-nil", mute.Services)
	}
	if err := mute.Validate(); err != nil {
		t.Errorf("silent profile invalid: %v", err)
	}
	// And FinishLearning folded everything into the accepted set.
	if _, ok := e.Profile("mute-fw1"); !ok {
		t.Error("distilled profile not accepted")
	}
}

func TestEngineViolationKindsAndDedupe(t *testing.T) {
	var mu sync.Mutex
	var got []Violation
	e := NewEngine(Options{OnViolation: func(v Violation) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	}})
	e.Register(camIdentity())
	e.AcceptProfile(&Profile{SKU: "cam-fw1", Version: 1, Services: []Service{
		{Proto: "udp", Port: 5683},
	}})
	if _, _, err := e.Enforce("cam"); err != nil {
		t.Fatal(err)
	}

	// Allowed reply, then ARP: no violations.
	e.Observe("cam", "host", udpFrame(t, camMAC, hostMAC, camIP, hostIP, 5683, 40000))
	e.Observe("cam", "host", arpFrame(t, camMAC, camIP, hostIP))
	// Host-originated traffic is never the device's violation.
	e.Observe("host", "cam", udpFrame(t, hostMAC, camMAC, hostIP, camIP, 7777, 8888))

	// Unauthorized service, twice: one callback, two violation frames.
	bad := udpFrame(t, camMAC, hostMAC, camIP, hostIP, 7000, 4444)
	e.Observe("cam", "host", bad)
	e.Observe("cam", "host", bad)
	// Address hop: registered cam MAC sourcing a foreign address.
	e.Observe("cam", "host", udpFrame(t, camMAC, hostMAC, plugIP, hostIP, 7000, 5683))

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("violations = %+v, want exactly 2 (dedupe)", got)
	}
	if got[0].Kind != ViolationService || got[1].Kind != ViolationAddressHop {
		t.Fatalf("kinds = %s, %s", got[0].Kind, got[1].Kind)
	}
	st := e.Stats()
	if st.ViolationFrames != 3 {
		t.Errorf("violation frames = %d, want 3", st.ViolationFrames)
	}
	if len(e.Violations()) != 2 {
		t.Errorf("violation ring = %+v", e.Violations())
	}
	if health, _ := e.Health(); health != telemetry.HealthDegraded {
		t.Errorf("health with live violations = %v, want degraded", health)
	}
}

func TestEngineRateEnvelope(t *testing.T) {
	now := time.Unix(1000, 0)
	var fired int
	e := NewEngine(Options{
		Clock:       func() time.Time { return now },
		OnViolation: func(v Violation) { fired++ },
	})
	e.Register(camIdentity())
	e.AcceptProfile(&Profile{SKU: "cam-fw1", Version: 1, MaxRate: 5, Services: []Service{
		{Proto: "udp", Port: 5683},
	}})
	if _, _, err := e.Enforce("cam"); err != nil {
		t.Fatal(err)
	}
	ok := udpFrame(t, camMAC, hostMAC, camIP, hostIP, 5683, 40000)
	for i := 0; i < 8; i++ {
		e.Observe("cam", "host", ok)
	}
	if fired != 1 {
		t.Fatalf("rate violations in one epoch = %d, want exactly 1", fired)
	}
	// A new second resets the envelope accounting.
	now = now.Add(2 * time.Second)
	for i := 0; i < 3; i++ {
		e.Observe("cam", "host", ok)
	}
	if fired != 1 {
		t.Fatalf("violations after quiet epoch = %d, want still 1", fired)
	}
}

func TestEngineRogueLockdown(t *testing.T) {
	var mu sync.Mutex
	var rogues []string
	e := NewEngine(Options{
		Lockdown: true,
		OnRogue: func(mac packet.MACAddress, srcNode string) {
			mu.Lock()
			rogues = append(rogues, mac.String()+"@"+srcNode)
			mu.Unlock()
		},
	})
	e.Register(camIdentity())
	e.RegisterHostMAC(hostMAC)

	// Registered device and known host: not rogues.
	e.Observe("cam", "sw", udpFrame(t, camMAC, hostMAC, camIP, hostIP, 1, 2))
	e.Observe("host", "sw", udpFrame(t, hostMAC, camMAC, hostIP, camIP, 1, 2))
	// Unknown MAC: flagged once, however many frames it sends.
	rogue := udpFrame(t, rogueMAC, hostMAC, packet.MustParseIPv4("10.0.0.66"), hostIP, 1, 2)
	e.Observe("intruder", "sw", rogue)
	e.Observe("intruder", "sw", rogue)

	mu.Lock()
	defer mu.Unlock()
	if len(rogues) != 1 || rogues[0] != rogueMAC.String()+"@intruder" {
		t.Fatalf("rogue reports = %v", rogues)
	}
	if got := e.Rogues(); len(got) != 1 {
		t.Fatalf("Rogues() = %v", got)
	}
	if s := e.Stats(); s.Rogues != 1 {
		t.Errorf("stats rogues = %d", s.Rogues)
	}
}

func TestEngineAcceptProfileVersionSemantics(t *testing.T) {
	e := NewEngine(Options{})
	v1 := &Profile{SKU: "cam-fw1", Version: 1, Services: []Service{{Proto: "udp", Port: 5683}}}
	if _, changed := e.AcceptProfile(v1); !changed {
		t.Fatal("fresh install not flagged as change")
	}
	// Same version merges: a new service is a change, a replay is not.
	if _, changed := e.AcceptProfile(v1); changed {
		t.Fatal("idempotent replay flagged as change")
	}
	same := &Profile{SKU: "cam-fw1", Version: 1, Services: []Service{{Proto: "tcp", Port: 80}}}
	eff, changed := e.AcceptProfile(same)
	if !changed || len(eff.Services) != 2 {
		t.Fatalf("same-version merge: changed=%v services=%+v", changed, eff.Services)
	}
	// Higher version replaces outright (firmware drift).
	v2 := &Profile{SKU: "cam-fw1", Version: 2, Services: []Service{{Proto: "udp", Port: 9000, Initiated: true}}}
	eff, changed = e.AcceptProfile(v2)
	if !changed || len(eff.Services) != 1 || eff.Version != 2 {
		t.Fatalf("v2 did not replace: %+v", eff)
	}
	// Stale crowd replays of v1 are ignored.
	eff, changed = e.AcceptProfile(v1)
	if changed || eff.Version != 2 {
		t.Fatalf("stale v1 regressed the profile: changed=%v %+v", changed, eff)
	}
	// Invalid profiles are refused outright.
	if eff, _ := e.AcceptProfile(&Profile{SKU: ""}); eff != nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestEngineEnforceErrors(t *testing.T) {
	e := NewEngine(Options{})
	if _, _, err := e.Enforce("ghost"); err == nil {
		t.Fatal("enforce of unknown device accepted")
	}
	e.Register(camIdentity())
	if _, _, err := e.Enforce("cam"); err == nil {
		t.Fatal("enforce without a SKU profile accepted")
	}
	e.AcceptProfile(&Profile{SKU: "cam-fw1", Version: 1})
	mods, prof, err := e.Enforce("cam")
	if err != nil {
		t.Fatal(err)
	}
	if prof.SKU != "cam-fw1" || len(mods) == 0 {
		t.Fatalf("enforce returned %d mods, profile %+v", len(mods), prof)
	}
	if got := e.EnforcedDevices(); len(got) != 1 || got[0] != "cam" {
		t.Fatalf("EnforcedDevices = %v", got)
	}
	if !e.Unenforce("cam") || e.Unenforce("cam") {
		t.Fatal("Unenforce not idempotent-correct")
	}
}
