package controller

import (
	"testing"
	"time"
)

func TestReplicaLagVisibility(t *testing.T) {
	r := NewReplica(100 * time.Millisecond)
	base := time.Now()
	r.Offer(Update{Key: "occupancy", Value: "away", Version: 1}, base)

	// Before the lag elapses the update is invisible.
	r.AdvanceTo(base.Add(50 * time.Millisecond))
	if _, _, ok := r.Get("occupancy"); ok {
		t.Fatal("update visible before lag")
	}
	if r.Staleness() != 1 {
		t.Errorf("staleness = %d", r.Staleness())
	}
	// After the lag it appears.
	r.AdvanceTo(base.Add(100 * time.Millisecond))
	v, ver, ok := r.Get("occupancy")
	if !ok || v != "away" || ver != 1 {
		t.Errorf("get = %q v%d %v", v, ver, ok)
	}
}

func TestReplicaVersionOrderingUnderReordering(t *testing.T) {
	r := NewReplica(10 * time.Millisecond)
	base := time.Now()
	// Offers arrive out of order (network reordering); the replica
	// must still end with the highest version.
	r.Offer(Update{Key: "k", Value: "new", Version: 5}, base)
	r.Offer(Update{Key: "k", Value: "old", Version: 3}, base)
	r.AdvanceTo(base.Add(time.Second))
	v, ver, _ := r.Get("k")
	if v != "new" || ver != 5 {
		t.Errorf("replica regressed: %q v%d", v, ver)
	}
	// A later-arriving stale version never overwrites.
	r.Offer(Update{Key: "k", Value: "ancient", Version: 2}, base)
	r.AdvanceTo(base.Add(2 * time.Second))
	if v, _, _ := r.Get("k"); v != "new" {
		t.Errorf("stale overwrite: %q", v)
	}
}

func TestReplicaFollowStoreLive(t *testing.T) {
	s := NewStore()
	r := NewReplica(5 * time.Millisecond)
	stop := r.FollowStore(s)
	defer stop()

	s.Put("x", "1")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _, ok := r.Get("x"); ok && v == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never converged")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicaInOrderOffersStayOrdered(t *testing.T) {
	// The common case: offers arrive in version order (store watch),
	// so AdvanceTo's dirty-flag sort never fires — results must be
	// identical to the always-sort behavior.
	r := NewReplica(10 * time.Millisecond)
	base := time.Now()
	for i := 1; i <= 100; i++ {
		r.Offer(Update{Key: "k", Value: "v" + string(rune('0'+i%10)), Version: uint64(i)}, base.Add(time.Duration(i)*time.Millisecond))
	}
	// Partial advance: only the first half is visible.
	r.AdvanceTo(base.Add(60 * time.Millisecond))
	_, ver, ok := r.Get("k")
	if !ok || ver != 50 {
		t.Fatalf("partial advance: v%d %v, want v50", ver, ok)
	}
	r.AdvanceTo(base.Add(time.Hour))
	_, ver, _ = r.Get("k")
	if ver != 100 {
		t.Fatalf("full advance: v%d, want v100", ver)
	}
	if r.Staleness() != 0 {
		t.Fatalf("staleness = %d after full drain", r.Staleness())
	}
}

// BenchmarkReplicaAdvanceToPending10k is the satellite regression
// guard: AdvanceTo over 10^4 pending in-order updates must scan, not
// re-sort, the queue every tick.
func BenchmarkReplicaAdvanceToPending10k(b *testing.B) {
	r := NewReplica(time.Hour) // nothing becomes visible: steady 10k backlog
	base := time.Now()
	for i := 0; i < 10_000; i++ {
		r.Offer(Update{Key: "k", Value: "v", Version: uint64(i + 1)}, base.Add(time.Duration(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AdvanceTo(base)
	}
}
