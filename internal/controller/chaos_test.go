package controller

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/journal"
	"iotsec/internal/netsim"
	"iotsec/internal/openflow"
	"iotsec/internal/packet"
	"iotsec/internal/resilience"
	"iotsec/internal/telemetry"
)

// dumpJournalOnFailure exports the forensic journal as NDJSON to
// $IOTSEC_CHAOS_JOURNAL when the test fails, so CI can upload the
// disconnect→reconnect→replay timeline as an artifact.
func dumpJournalOnFailure(t *testing.T) {
	path := os.Getenv("IOTSEC_CHAOS_JOURNAL")
	if path == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("chaos journal dump: %v", err)
			return
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, e := range journal.Default.Snapshot(journal.Filter{}) {
			_ = enc.Encode(e)
		}
		t.Logf("chaos journal dumped to %s", path)
	})
	dumpMetricsOnFailure(t)
}

// dumpMetricsOnFailure scrapes the process registry in Prometheus
// text format to $IOTSEC_CHAOS_METRICS when the test fails, pairing
// the forensic timeline artifact with the metric state (session
// counts, flow-mod totals, MTTR histograms) at the moment of failure.
func dumpMetricsOnFailure(t *testing.T) {
	path := os.Getenv("IOTSEC_CHAOS_METRICS")
	if path == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("chaos metrics dump: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintf(f, "# chaos metrics snapshot: %s\n", t.Name())
		if err := telemetry.Default.WritePrometheus(f); err != nil {
			t.Logf("chaos metrics dump: %v", err)
			return
		}
		t.Logf("chaos metrics dumped to %s", path)
	})
}

// waitChaosGoroutines polls until the goroutine count returns to
// (roughly) the baseline, catching leaked supervisors/heartbeats.
func waitChaosGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), base)
}

// flakyDialer returns an AgentOptions.Dial that wraps every transport
// in the shared fault plan.
func flakyDialer(plan *resilience.FaultPlan) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		return resilience.WrapConn(c, plan), nil
	}
}

// TestChaosControllerRestart is the fault-injection scenario the
// resilience work exists for: two switches hold a quarantine, the
// controller endpoint is killed mid-scenario and restarted on the same
// address, and the system must reconverge — quarantine drop rules
// present on every switch DURING the outage (fail-static serves the
// installed table) and AFTER it (reconnect re-push), even when one
// switch loses its whole table while disconnected, and even under
// probabilistic connection kills. No goroutines may leak.
func TestChaosControllerRestart(t *testing.T) {
	dumpJournalOnFailure(t)
	base := runtime.NumGoroutine()

	steering := NewSteering(nil)
	steering.SetHeartbeat(50*time.Millisecond, 2)
	addr, err := steering.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	plan := resilience.NewFaultPlan(101)
	plan.SetLatency(time.Millisecond, time.Millisecond)
	backoff := resilience.BackoffOptions{Base: 5 * time.Millisecond, Cap: 25 * time.Millisecond, Seed: 9}

	sw1 := netsim.NewSwitch("edge1", 61)
	sw1.SetMissBehavior(netsim.MissDrop)
	sw2 := netsim.NewSwitch("edge2", 62)
	sw2.SetMissBehavior(netsim.MissDrop)
	a1 := netsim.SuperviseAgent(sw1, addr, netsim.AgentOptions{Backoff: backoff, Dial: flakyDialer(plan)})
	a2 := netsim.SuperviseAgent(sw2, addr, netsim.AgentOptions{Backoff: backoff, Dial: flakyDialer(plan)})

	waitSwitches := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(steering.Endpoint().Switches()) != want {
			if time.Now().After(deadline) {
				t.Fatalf("connected switches = %v, want %d", steering.Endpoint().Switches(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitSwitches(2)

	// Quarantine a device: priority-400 drop rules on every switch.
	ctx := context.Background()
	mac := device.MACFor(packet.MustParseIPv4("10.0.0.66"))
	steering.Isolate(ctx, "cam", mac)
	waitQuarantineRules(t, sw1, 2)
	waitQuarantineRules(t, sw2, 2)

	// --- Controller crash ---
	steering.Interrupt()
	deadline := time.Now().Add(5 * time.Second)
	for a1.Connected() || a2.Connected() {
		if time.Now().After(deadline) {
			t.Fatal("agents did not observe the controller crash")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// DURING the outage the enforcement must hold: fail-static keeps
	// serving the installed table, so the drop rules are still there.
	if got := quarantineRules(sw1); got != 2 {
		t.Fatalf("sw1 quarantine rules during outage = %d, want 2 (fail-static must keep enforcing)", got)
	}
	if got := quarantineRules(sw2); got != 2 {
		t.Fatalf("sw2 quarantine rules during outage = %d, want 2", got)
	}

	// Worst case: sw2 loses its entire table while disconnected (power
	// cycle). Reconnect must restore the quarantine from controller
	// state.
	sw2.Table().Delete(openflow.MatchAll())
	if got := quarantineRules(sw2); got != 0 {
		t.Fatalf("table wipe left %d rules", got)
	}

	// --- Controller restart on the same address ---
	if _, err := steering.Listen(addr); err != nil {
		t.Fatalf("re-listen after interrupt: %v", err)
	}
	waitSwitches(2)
	waitQuarantineRules(t, sw1, 2)
	waitQuarantineRules(t, sw2, 2) // restored from steering.isolated
	if !steering.Isolated("cam") {
		t.Fatal("quarantine record lost across the restart")
	}

	// --- Probabilistic kill burst: sessions die at random; the
	// supervisors must keep reconverging. ---
	reconBefore := a1.Reconnects() + a2.Reconnects()
	plan.SetKillRate(0.25)
	deadline = time.Now().Add(10 * time.Second)
	for a1.Reconnects()+a2.Reconnects() < reconBefore+2 {
		if time.Now().After(deadline) {
			t.Fatal("kill burst produced no reconnects")
		}
		time.Sleep(5 * time.Millisecond)
	}
	plan.SetKillRate(0)
	// After the storm, the world reconverges: both switches connected
	// and still enforcing the quarantine.
	waitSwitches(2)
	waitQuarantineRules(t, sw1, 2)
	waitQuarantineRules(t, sw2, 2)

	// Release propagates once the fabric is healthy again.
	steering.Release(ctx, "cam", mac)
	waitQuarantineRules(t, sw1, 0)
	waitQuarantineRules(t, sw2, 0)

	// --- Teardown: nothing may leak. ---
	a1.Stop()
	a2.Stop()
	a1.Wait()
	a2.Wait()
	if err := steering.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	waitChaosGoroutines(t, base)
}

// TestSteeringSurvivesAgentGivingUp pins the MaxElapsed budget path: a
// supervisor whose outage outlives its budget stops cleanly instead of
// spinning forever.
func TestSteeringSurvivesAgentGivingUp(t *testing.T) {
	sw := netsim.NewSwitch("edge", 63)
	agent := netsim.SuperviseAgent(sw, "127.0.0.1:1", netsim.AgentOptions{
		Backoff: resilience.BackoffOptions{
			Base: time.Millisecond, Cap: 5 * time.Millisecond,
			MaxElapsed: 30 * time.Millisecond, Seed: 3,
		},
	})
	done := make(chan struct{})
	go func() { agent.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not give up after its reconnect budget")
	}
	if agent.Connected() {
		t.Fatal("agent claims connected after giving up")
	}
}
