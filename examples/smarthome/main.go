// Smarthome: the full Figure 3 scenario — the FSM policy abstraction
// reacting to two different attacks on a fire-alarm + window-actuator
// deployment, narrated step by step.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

func main() {
	// The Figure 3 policy, verbatim:
	//   FireAlarm suspicious  -> block "open" messages to the window
	//   Window suspicious     -> robot-check in front of the window
	domain := policy.NewDomain()
	domain.AddDevice("firealarm", policy.ContextNormal, policy.ContextSuspicious)
	domain.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	fsm := policy.NewFSM(domain)
	fsm.AddRule(policy.Rule{
		Name:       "alarm-suspicious-blocks-window-open",
		Conditions: []policy.Condition{policy.DeviceIs("firealarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})
	fsm.AddRule(policy.Rule{
		Name:       "window-suspicious-robot-check",
		Conditions: []policy.Condition{policy.DeviceIs("window", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{Modules: []policy.ModuleSpec{{Kind: "robot-check"}}},
		Priority:   10,
	})

	platform, err := core.New(core.Options{Policy: fsm, ChallengeSolution: "tulip"})
	if err != nil {
		log.Fatal(err)
	}
	platform.Global.View.Observe(func(_ context.Context, c controller.ViewChange) {
		fmt.Printf("    [controller] %s = %s (%s)\n", c.Var, c.Value, c.Reason)
	})

	alarm := device.NewFireAlarm("firealarm", packet.MustParseIPv4("10.0.0.20"))
	window := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.21"))
	for _, d := range []*device.Device{alarm.Device, window.Device} {
		if _, err := platform.AddDevice(d); err != nil {
			log.Fatal(err)
		}
	}
	attackerIP := packet.MustParseIPv4("10.0.0.66")
	attacker := netsim.NewStack("attacker", device.MACFor(attackerIP), attackerIP)
	platform.AttachHost(attacker)
	platform.Start()
	defer platform.Stop()
	client := &device.Client{Stack: attacker, Timeout: time.Second}

	show := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	show("state: FireAlarm:<%s> Window:<%s>",
		platform.Global.View.DeviceContext("firealarm"),
		platform.Global.View.DeviceContext("window"))

	show("\n--- attack 1: the fire alarm's maintenance backdoor ---")
	if _, err := client.Call(alarm.IP(), device.Request{Cmd: "TEST", Args: []string{device.AlarmBackdoorToken}}); err != nil {
		log.Fatal(err)
	}
	platform.WaitForContext("firealarm", policy.ContextSuspicious, 2*time.Second)
	time.Sleep(20 * time.Millisecond)
	show("state: FireAlarm:<%s> Window:<%s>",
		platform.Global.View.DeviceContext("firealarm"),
		platform.Global.View.DeviceContext("window"))

	show("attacker now sends OPEN to the window (with the correct PIN!)...")
	if _, err := client.Call(window.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword}); err != nil {
		show("  -> BLOCKED: %v", err)
	} else {
		show("  -> opened?! enforcement failed")
	}
	show("window state: %s", window.Get("window"))

	show("\nthe administrator investigates, patches the alarm's exposure, and clears it:")
	platform.Global.View.SetDeviceContext(context.Background(), "firealarm", policy.ContextNormal, "admin cleared after investigation")
	time.Sleep(20 * time.Millisecond)
	show("state: FireAlarm:<%s> Window:<%s> — the OPEN block lifts automatically",
		platform.Global.View.DeviceContext("firealarm"),
		platform.Global.View.DeviceContext("window"))

	show("\n--- attack 2: brute-forcing the window's 4-digit PIN ---")
	for i := 0; i < 5; i++ {
		_, _ = client.Call(window.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: fmt.Sprintf("%04d", 9000+i)})
	}
	platform.WaitForContext("window", policy.ContextSuspicious, 2*time.Second)
	time.Sleep(20 * time.Millisecond)

	show("the script continues with the RIGHT PIN...")
	if _, err := client.Call(window.IP(), device.Request{Cmd: "OPEN", User: "admin", Pass: device.WindowPassword}); err != nil {
		show("  -> BLOCKED by robot check: %v", err)
	}
	show("a human answers the challenge...")
	resp, err := client.Call(window.IP(), device.Request{
		Cmd: "OPEN", User: "admin", Pass: device.WindowPassword, Args: []string{"captcha:tulip"},
	})
	if err != nil || !resp.OK {
		log.Fatalf("  -> challenged open failed: %v %+v", err, resp)
	}
	show("  -> window opened for the verified human (state: %s)", window.Get("window"))
}
