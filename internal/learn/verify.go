package learn

import (
	"sort"

	"iotsec/internal/policy"
)

// SafetyReport is the outcome of checking one invariant under
// enforcement.
type SafetyReport struct {
	// Holds is true when no attack within the search bound reaches
	// the bad state.
	Holds bool
	// Witness is a concrete violating attack path when Holds is
	// false.
	Witness []AttackStep
	// Exhausted is true when the bounded search covered the whole
	// reachable space (false = bound hit; treat Holds with care).
	Exhausted bool
}

// MitigationsFromPostures converts the policy's per-device postures
// into the abstract world's enforcement: blocked commands become
// unavailable transitions; isolation blocks every command on the
// device.
func MitigationsFromPostures(w *World, postures map[string]policy.Posture) []Mitigation {
	var out []Mitigation
	devices := w.Instances()
	sort.Strings(devices)
	for _, dev := range devices {
		p, ok := postures[dev]
		if !ok {
			continue
		}
		inst, _ := w.Instance(dev)
		if p.Isolate {
			for _, cmd := range inst.Model.Commands() {
				out = append(out, Mitigation{Device: dev, Cmd: cmd})
			}
			continue
		}
		for _, cmd := range p.BlockCommands {
			out = append(out, Mitigation{Device: dev, Cmd: cmd})
		}
	}
	return out
}

// CheckSafety verifies that the bad state is unreachable under the
// given policy postures — the model-based policy correctness check
// §3.2 calls for: instead of eyeballing the exponential state space,
// ask the attack-graph search for a counterexample.
func CheckSafety(search *AttackSearch, postures map[string]policy.Posture, bad func(*World) bool) SafetyReport {
	blocked := MitigationsFromPostures(search.Build(), postures)
	witness, exhausted := search.FindAttackWithMitigations(bad, blocked)
	return SafetyReport{
		Holds:     witness == nil && exhausted,
		Witness:   witness,
		Exhausted: exhausted,
	}
}

// VerifyPolicyStates runs CheckSafety for the postures the FSM
// assigns in each of the given states, returning the states whose
// enforcement still admits the bad outcome. This is how an operator
// audits a policy before deploying it: "in which world states can the
// attacker still open the window?"
func VerifyPolicyStates(search *AttackSearch, fsm *policy.FSM, states []policy.State, bad func(*World) bool) map[string]SafetyReport {
	out := make(map[string]SafetyReport, len(states))
	for _, s := range states {
		postures := fsm.Lookup(s)
		out[s.Key()] = CheckSafety(search, postures, bad)
	}
	return out
}
