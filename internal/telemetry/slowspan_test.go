package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSlowSpanHookFiresRegardlessOfSampling arms a threshold on a
// heavily-sampled store and verifies every slow span reaches the hook,
// sampled or not.
func TestSlowSpanHookFiresRegardlessOfSampling(t *testing.T) {
	st := NewSpanStore(16, 1000) // only 1 in 1000 root spans sampled

	var mu sync.Mutex
	var seen []FinishedSpan
	st.SetSlowThreshold(time.Nanosecond, func(fs FinishedSpan) {
		mu.Lock()
		seen = append(seen, fs)
		mu.Unlock()
	})

	// First root is sampled, second is not; both exceed 1ns.
	for i := 0; i < 2; i++ {
		_, sp := st.StartSpan(context.Background(), "slow.op")
		time.Sleep(time.Microsecond)
		sp.End()
	}

	mu.Lock()
	got := len(seen)
	mu.Unlock()
	if got != 2 {
		t.Fatalf("slow hook fired %d times, want 2", got)
	}
	if n := st.SlowSpans(); n != 2 {
		t.Errorf("SlowSpans() = %d, want 2", n)
	}
	for _, fs := range seen {
		if fs.Name != "slow.op" || fs.Duration <= 0 || fs.TraceID == 0 {
			t.Errorf("malformed slow span record: %+v", fs)
		}
	}
}

// TestSlowSpanThresholdFiltersFast verifies fast spans stay below an
// armed high threshold and that disarming stops reporting entirely.
func TestSlowSpanThresholdFiltersFastAndDisarms(t *testing.T) {
	st := NewSpanStore(16, 1)

	var fired sync.Map
	st.SetSlowThreshold(time.Hour, func(fs FinishedSpan) { fired.Store(fs.ID, true) })
	_, sp := st.StartSpan(context.Background(), "fast.op")
	sp.End()
	count := 0
	fired.Range(func(_, _ any) bool { count++; return true })
	if count != 0 {
		t.Errorf("fast span reported as slow %d times", count)
	}
	if n := st.SlowSpans(); n != 0 {
		t.Errorf("SlowSpans() = %d, want 0", n)
	}

	// Arm low, then disarm; the span ended after disarm must not fire.
	st.SetSlowThreshold(time.Nanosecond, func(fs FinishedSpan) { fired.Store(fs.ID, true) })
	st.SetSlowThreshold(0, nil)
	_, sp2 := st.StartSpan(context.Background(), "post.disarm")
	time.Sleep(time.Microsecond)
	sp2.End()
	count = 0
	fired.Range(func(_, _ any) bool { count++; return true })
	if count != 0 {
		t.Errorf("disarmed hook fired %d times", count)
	}
}

// TestRuntimeStatsCollector checks the iotsec_runtime_* gauges show up
// in both the snapshot and the Prometheus rendering, and that
// re-registration stays idempotent.
func TestRuntimeStatsCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterRuntimeStats()
	r.RegisterRuntimeStats() // must replace, not duplicate

	want := map[string]bool{
		"iotsec_runtime_goroutines":       false,
		"iotsec_runtime_heap_alloc_bytes": false,
		"iotsec_runtime_gc_runs_total":    false,
		"iotsec_runtime_uptime_seconds":   false,
	}
	counts := map[string]int{}
	snap := r.Snapshot(0)
	for _, m := range snap.Metrics {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
			counts[m.Name]++
		}
		if m.Name == "iotsec_runtime_goroutines" && (len(m.Samples) != 1 || m.Samples[0].Value < 1) {
			t.Errorf("goroutines gauge samples = %+v", m.Samples)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("runtime metric %s missing from snapshot", name)
		}
		if counts[name] > 1 {
			t.Errorf("runtime metric %s emitted %d times after re-registration", name, counts[name])
		}
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "# TYPE iotsec_runtime_goroutines gauge") {
		t.Errorf("prometheus output missing goroutines gauge:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE iotsec_runtime_gc_runs_total counter") {
		t.Errorf("prometheus output missing gc counter")
	}
}
