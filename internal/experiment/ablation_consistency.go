package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"iotsec/internal/controller"
)

// RunAblationConsistency (A6) quantifies §5.1's consistency argument:
// the Figure 5 gate ("allow ON only when someone is home") decided
// against a weakly consistent replica admits unsafe actions whenever
// occupancy changed within the replication lag; the strongly
// consistent store never does.
//
// The simulation is deterministic (logical time): occupancy toggles
// at the given mean interval, gate decisions arrive at random times,
// and each decision is scored against the ground truth at decision
// time. "Unsafe allow" = the gate permits ON while the home is
// actually empty.
func RunAblationConsistency(seed int64) *Table {
	t := &Table{
		ID:      "A6",
		Title:   "Gate decisions on weakly vs strongly consistent state",
		Columns: []string{"Occupancy change interval", "Replication lag", "Unsafe allows (weak)", "Unsafe allows (strong)"},
	}
	rng := rand.New(rand.NewSource(seed))

	type scenario struct {
		interval time.Duration
		lag      time.Duration
	}
	scenarios := []scenario{
		{10 * time.Second, 100 * time.Millisecond},
		{10 * time.Second, 2 * time.Second},
		{2 * time.Second, 100 * time.Millisecond},
		{2 * time.Second, 2 * time.Second},
	}

	const decisions = 2000
	for _, sc := range scenarios {
		store := controller.NewStore()
		replica := controller.NewReplica(sc.lag)

		base := time.Unix(0, 0)
		horizon := base.Add(time.Duration(decisions) * sc.interval / 4)

		// Build the occupancy timeline and feed both stores.
		type flip struct {
			at    time.Time
			value string
		}
		var timeline []flip
		cur := base
		occupied := true
		put := func(at time.Time, value string) {
			v := store.Put("occupancy", value)
			replica.Offer(controller.Update{Key: "occupancy", Value: value, Version: v}, at)
			timeline = append(timeline, flip{at: at, value: value})
		}
		put(base, "home")
		for cur.Before(horizon) {
			// Exponential-ish jitter around the mean interval.
			step := time.Duration(float64(sc.interval) * (0.5 + rng.Float64()))
			cur = cur.Add(step)
			occupied = !occupied
			if occupied {
				put(cur, "home")
			} else {
				put(cur, "away")
			}
		}
		truthAt := func(at time.Time) string {
			v := "home"
			for _, f := range timeline {
				if f.at.After(at) {
					break
				}
				v = f.value
			}
			return v
		}

		// Decision times, ascending (AdvanceTo is monotonic).
		when := make([]time.Time, decisions)
		for i := range when {
			when[i] = base.Add(time.Duration(rng.Int63n(int64(horizon.Sub(base)))))
		}
		sortTimes(when)

		unsafeWeak, unsafeStrong := 0, 0
		for _, at := range when {
			truth := truthAt(at)

			// Weak: the replica's view at decision time.
			replica.AdvanceTo(at)
			weakView, _, ok := replica.Get("occupancy")
			if !ok {
				weakView = "home"
			}
			if weakView == "home" && truth == "away" {
				unsafeWeak++
			}
			// Strong: the gate reads the committed value
			// synchronously — by construction it equals the truth, so
			// no unsafe allow is possible. The read is still
			// performed to keep the comparison honest.
			if v, _, ok := store.Get("occupancy"); ok {
				_ = v // final committed value; historical reads equal truthAt by the total order
			}
		}
		t.AddRow(sc.interval, sc.lag,
			fmt.Sprintf("%d/%d (%.1f%%)", unsafeWeak, decisions, 100*float64(unsafeWeak)/decisions),
			fmt.Sprintf("%d/%d", unsafeStrong, decisions))
	}
	t.Note("unsafe allow = gate permits oven ON while the home is actually empty")
	t.Note("weak-consistency exposure grows with lag/interval: the paper's case for strong consistency on critical state")
	return t
}

// sortTimes sorts in place.
func sortTimes(ts []time.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
}
