package packet

import "encoding/binary"

// internetChecksum computes the RFC 1071 ones-complement checksum over
// data, folding with the given initial partial sum.
func internetChecksum(data []byte, initial uint32) uint16 {
	sum := initial
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum computes the partial sum of the IPv4 pseudo-header
// used by TCP and UDP checksums.
func pseudoHeaderSum(src, dst IPv4Address, protocol uint8, length uint16) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(protocol)
	sum += uint32(length)
	return sum
}
