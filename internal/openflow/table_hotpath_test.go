package openflow

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"iotsec/internal/packet"
)

// randMatch draws a match with a random subset of concrete fields,
// biased toward values from small pools so random packets actually hit.
func randMatch(rng *rand.Rand) Match {
	m := MatchAll()
	if rng.Intn(3) == 0 {
		m = m.WithInPort(uint16(rng.Intn(4)))
	}
	if rng.Intn(4) == 0 {
		m = m.WithEthSrc(packet.MACAddress{2, 0, 0, 0, 0, byte(rng.Intn(4))})
	}
	if rng.Intn(4) == 0 {
		m = m.WithEthDst(packet.MACAddress{2, 0, 0, 0, 0, byte(rng.Intn(4))})
	}
	if rng.Intn(3) == 0 {
		ip := packet.IPv4Address{10, 0, byte(rng.Intn(3)), byte(rng.Intn(6))}
		masks := []uint8{32, 32, 24, 16, 8, 0}
		m = m.WithSrcIP(ip, masks[rng.Intn(len(masks))])
	}
	if rng.Intn(3) == 0 {
		ip := packet.IPv4Address{10, 0, byte(rng.Intn(3)), byte(rng.Intn(6))}
		masks := []uint8{32, 32, 24, 16}
		m = m.WithDstIP(ip, masks[rng.Intn(len(masks))])
	}
	if rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			m = m.WithProto(packet.IPProtocolTCP)
		} else {
			m = m.WithProto(packet.IPProtocolUDP)
		}
	}
	if rng.Intn(4) == 0 {
		m = m.WithTpSrc(uint16(1000 + rng.Intn(4)))
	}
	if rng.Intn(4) == 0 {
		m = m.WithTpDst([]uint16{80, 443, 53, 8080}[rng.Intn(4)])
	}
	return m
}

// randPacket serializes a random frame from the same pools randMatch
// draws from; a few percent are ARP (no IP layer at all).
func randPacket(t testing.TB, rng *rand.Rand) *packet.Packet {
	t.Helper()
	src := packet.MACAddress{2, 0, 0, 0, 0, byte(rng.Intn(4))}
	dst := packet.MACAddress{2, 0, 0, 0, 0, byte(rng.Intn(4))}
	srcIP := packet.IPv4Address{10, 0, byte(rng.Intn(3)), byte(rng.Intn(6))}
	dstIP := packet.IPv4Address{10, 0, byte(rng.Intn(3)), byte(rng.Intn(6))}
	b := packet.NewSerializeBuffer()
	var err error
	switch rng.Intn(10) {
	case 0: // ARP: exercises the "no IP/transport layer" paths
		err = packet.SerializeLayers(b,
			&packet.Ethernet{SrcMAC: src, DstMAC: dst, EtherType: packet.EtherTypeARP},
			&packet.ARP{Operation: packet.ARPRequest, SenderMAC: src, SenderIP: srcIP, TargetIP: dstIP},
		)
	case 1, 2, 3: // UDP
		udp := &packet.UDP{SrcPort: uint16(1000 + rng.Intn(4)), DstPort: []uint16{80, 443, 53, 8080}[rng.Intn(4)]}
		udp.SetNetworkForChecksum(srcIP, dstIP)
		err = packet.SerializeLayers(b,
			&packet.Ethernet{SrcMAC: src, DstMAC: dst, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolUDP},
			udp,
		)
	default: // TCP
		tcp := &packet.TCP{SrcPort: uint16(1000 + rng.Intn(4)), DstPort: []uint16{80, 443, 53, 8080}[rng.Intn(4)], Flags: packet.TCPSyn}
		tcp.SetNetworkForChecksum(srcIP, dstIP)
		err = packet.SerializeLayers(b,
			&packet.Ethernet{SrcMAC: src, DstMAC: dst, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolTCP},
			tcp,
		)
	}
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return packet.Decode(b.Bytes(), packet.LayerTypeEthernet)
}

// TestLookupEquivalenceOracle drives the tuple-space index against the
// linear-scan reference over randomized tables and packets: the indexed
// lookup must return the identical winning entry (same priority, same
// tie-break toward earlier install) on every packet.
func TestLookupEquivalenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1dc))
	const tables = 25
	const packetsPerTable = 500 // 25 × 500 = 12,500 ≥ 10⁴ lookups
	for ti := 0; ti < tables; ti++ {
		tbl := NewFlowTable()
		entries := 1 + rng.Intn(60)
		for i := 0; i < entries; i++ {
			tbl.Insert(FlowEntry{
				Match:    randMatch(rng),
				Priority: uint16(rng.Intn(8)), // few levels → many ties
				Cookie:   uint64(i + 1),       // identifies the entry
				Actions:  []Action{Output(uint16(i))},
			})
		}
		// Random churn so the oracle also sees post-delete state.
		if rng.Intn(2) == 0 {
			tbl.Delete(randMatch(rng))
		}
		for pi := 0; pi < packetsPerTable; pi++ {
			p := randPacket(t, rng)
			inPort := uint16(rng.Intn(4))
			want, wantOK := tbl.lookupLinear(p, inPort)
			got, gotOK := tbl.Lookup(p, inPort, 64)
			if wantOK != gotOK {
				t.Fatalf("table %d packet %d: indexed ok=%v, linear ok=%v (pkt %s)", ti, pi, gotOK, wantOK, p)
			}
			if !gotOK {
				continue
			}
			if got.Cookie != want.Cookie || got.Priority != want.Priority || got.Match != want.Match {
				t.Fatalf("table %d packet %d: indexed chose cookie=%d prio=%d %q; linear chose cookie=%d prio=%d %q",
					ti, pi, got.Cookie, got.Priority, got.Match, want.Cookie, want.Priority, want.Match)
			}
		}
	}
}

// TestInsertPreservesCounters covers the quarantine re-push path: the
// agent re-installs the same drop rule on every sync, which must not
// zero the hit counters (OpenFlow modify semantics).
func TestInsertPreservesCounters(t *testing.T) {
	tbl := NewFlowTable()
	drop := FlowEntry{
		Match:    MatchAll().WithEthSrc(packet.MACAddress{2, 0, 0, 0, 0, 9}),
		Priority: 400,
		Cookie:   42,
	}
	tbl.Insert(drop)
	p := makeTCPFrom(t, packet.MACAddress{2, 0, 0, 0, 0, 9})
	for i := 0; i < 5; i++ {
		if _, ok := tbl.Lookup(p, 1, 100); !ok {
			t.Fatal("expected hit")
		}
	}
	// Controller re-pushes the identical rule (e.g. quarantine
	// re-sync after reconnect).
	drop.Actions = []Action{} // same match+priority, refreshed actions
	tbl.Insert(drop)
	pk, by := tbl.Entries()[0].Stats()
	if pk != 5 || by != 500 {
		t.Fatalf("counters after re-push: packets=%d bytes=%d, want 5/500", pk, by)
	}
	// A replacement still resets timeouts from "now" and keeps the
	// original tie-break position.
	if n := tbl.Len(); n != 1 {
		t.Fatalf("len=%d after replace, want 1", n)
	}
}

func makeTCPFrom(t *testing.T, src packet.MACAddress) *packet.Packet {
	t.Helper()
	tcp := &packet.TCP{SrcPort: 1234, DstPort: 80, Flags: packet.TCPSyn}
	srcIP := packet.MustParseIPv4("10.0.0.9")
	dstIP := packet.MustParseIPv4("10.0.0.1")
	tcp.SetNetworkForChecksum(srcIP, dstIP)
	b := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: src, DstMAC: packet.MACAddress{2, 0, 0, 0, 0, 1}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: srcIP, DstIP: dstIP, Protocol: packet.IPProtocolTCP},
		tcp,
	); err != nil {
		t.Fatal(err)
	}
	return packet.Decode(b.Bytes(), packet.LayerTypeEthernet)
}

// TestCompactionClearsTail verifies Delete/Expire nil the compacted
// slice tail so evicted entries are not pinned against GC.
func TestCompactionClearsTail(t *testing.T) {
	tbl := NewFlowTable()
	for i := 0; i < 8; i++ {
		tbl.Insert(FlowEntry{
			Match:    MatchAll().WithTpDst(uint16(1000 + i)),
			Priority: 10,
			Cookie:   uint64(i + 1),
		})
	}
	if removed := tbl.DeleteByCookie(3); removed != 1 {
		t.Fatalf("removed=%d, want 1", removed)
	}
	tbl.Delete(MatchAll().WithTpDst(1005))
	tail := tbl.nodes[len(tbl.nodes):cap(tbl.nodes)]
	for i, n := range tail {
		if n != nil {
			t.Fatalf("backing-array tail slot %d still holds %v after compaction", i, n.FlowEntry.String())
		}
	}
	// Expire-driven compaction must clear the tail too.
	tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(2000), Priority: 1, HardTimeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if exp := tbl.Expire(time.Now()); len(exp) != 1 {
		t.Fatalf("expired %d entries, want 1", len(exp))
	}
	tail = tbl.nodes[len(tbl.nodes):cap(tbl.nodes)]
	for i, n := range tail {
		if n != nil {
			t.Fatalf("tail slot %d still set after Expire", i)
		}
	}
}

// TestGenerationCounter: the generation advances on structural changes
// only, so Entries() snapshots can be cached against it.
func TestGenerationCounter(t *testing.T) {
	tbl := NewFlowTable()
	g0 := tbl.Generation()
	tbl.Insert(FlowEntry{Match: MatchAll(), Priority: 1})
	g1 := tbl.Generation()
	if g1 == g0 {
		t.Fatal("Insert did not advance the generation")
	}
	p := makeTCPFrom(t, packet.MACAddress{2, 0, 0, 0, 0, 9})
	tbl.Lookup(p, 0, 64)
	if tbl.Generation() != g1 {
		t.Fatal("Lookup hit advanced the generation")
	}
	// The cached Entries order must still expose fresh counters.
	if pk, _ := tbl.Entries()[0].Stats(); pk != 1 {
		t.Fatalf("cached snapshot shows %d packets, want 1", pk)
	}
	tbl.Lookup(p, 0, 64)
	if pk, _ := tbl.Entries()[0].Stats(); pk != 2 {
		t.Fatalf("cached snapshot shows stale counters after second hit")
	}
	tbl.Delete(MatchAll())
	if tbl.Generation() == g1 {
		t.Fatal("Delete did not advance the generation")
	}
}

// TestFlowTableConcurrentStress hammers Lookup/Insert/Delete/Expire/
// Entries from many goroutines; run under -race this proves the RLock +
// atomic-counter scheme is sound.
func TestFlowTableConcurrentStress(t *testing.T) {
	tbl := NewFlowTable()
	for i := 0; i < 32; i++ {
		tbl.Insert(FlowEntry{
			Match:    MatchAll().WithTpDst(uint16(80 + i%8)),
			Priority: uint16(i % 4),
			Cookie:   uint64(i + 1),
		})
	}
	pkts := make([]*packet.Packet, 8)
	rng := rand.New(rand.NewSource(7))
	for i := range pkts {
		pkts[i] = randPacket(t, rng)
	}

	const goroutines = 8
	const opsPerG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				switch rng.Intn(10) {
				case 0:
					tbl.Insert(FlowEntry{
						Match:    MatchAll().WithTpDst(uint16(80 + rng.Intn(8))),
						Priority: uint16(rng.Intn(4)),
						Cookie:   uint64(rng.Intn(32) + 1),
					})
				case 1:
					tbl.DeleteByCookie(uint64(rng.Intn(32) + 1))
				case 2:
					tbl.Expire(time.Now())
				case 3:
					tbl.Entries()
				default:
					tbl.Lookup(pkts[rng.Intn(len(pkts))], uint16(rng.Intn(4)), 64)
				}
			}
		}(g)
	}
	wg.Wait()

	// The table must still agree with the linear reference afterwards.
	for _, p := range pkts {
		want, wantOK := tbl.lookupLinear(p, 0)
		got, gotOK := tbl.Lookup(p, 0, 64)
		if wantOK != gotOK || (gotOK && got.Match != want.Match) {
			t.Fatalf("post-stress divergence: indexed (%v,%v) vs linear (%v,%v)", got, gotOK, want, wantOK)
		}
	}
}

// BenchmarkFlowTableLookupParallel measures lookup scalability under
// concurrent readers (the serialization bug this PR fixes would flatline
// this benchmark).
func BenchmarkFlowTableLookupParallel(b *testing.B) {
	tbl := NewFlowTable()
	for i := 0; i < 1000; i++ {
		tbl.Insert(FlowEntry{Match: MatchAll().WithTpDst(uint16(i + 1)), Priority: uint16(i % 7)})
	}
	rng := rand.New(rand.NewSource(1))
	p := randPacket(b, rng)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tbl.Lookup(p, 0, 64)
		}
	})
}

var _ = fmt.Sprintf // keep fmt linked for debug helpers
