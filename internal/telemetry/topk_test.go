package telemetry

import (
	"fmt"
	"testing"
)

// TestTopKEvictionUnderChurn: with K=4 and a churning long tail, true
// heavy hitters must survive and reported counts must respect the
// space-saving bound (true ≤ reported ≤ true + Err).
func TestTopKEvictionUnderChurn(t *testing.T) {
	tk := NewStandaloneTopK(4)
	trueCounts := map[string]uint64{}
	offer := func(key string, n uint64) {
		tk.Offer(key, n)
		trueCounts[key] += n
	}

	// Two real heavy hitters interleaved with 200 one-shot keys.
	for i := 0; i < 200; i++ {
		offer("heavy-a", 5)
		offer("heavy-b", 3)
		offer(fmt.Sprintf("tail-%03d", i), 1)
	}

	if got := tk.Len(); got > 4 {
		t.Fatalf("TopK holds %d keys, capacity 4", got)
	}
	snap := tk.Snapshot()
	found := map[string]TopKEntry{}
	for _, e := range snap.Entries {
		found[e.Key] = e
	}
	for _, want := range []string{"heavy-a", "heavy-b"} {
		e, ok := found[want]
		if !ok {
			t.Fatalf("heavy hitter %s evicted; entries: %+v", want, snap.Entries)
		}
		if e.Count < trueCounts[want] {
			t.Fatalf("%s reported %d < true %d (space-saving never undercounts)", want, e.Count, trueCounts[want])
		}
		if e.Count-e.Err > trueCounts[want] {
			t.Fatalf("%s lower bound %d exceeds true %d", want, e.Count-e.Err, trueCounts[want])
		}
	}
	// Entries sorted by descending count, heavy-a first.
	if snap.Entries[0].Key != "heavy-a" {
		t.Fatalf("entries not sorted by count: %+v", snap.Entries)
	}
	if snap.Offers != tk.Offers() || snap.Offers == 0 {
		t.Fatalf("offers mismatch: snap %d, live %d", snap.Offers, tk.Offers())
	}
}

// TestTopKDecay: halving ages out former heavy hitters so current
// ones take over, and zero-count keys vanish.
func TestTopKDecay(t *testing.T) {
	tk := NewStandaloneTopK(4)
	tk.Offer("old-heavy", 100)
	tk.Offer("small", 1)
	tk.Decay() // old-heavy 50, small 0 (dropped)
	if tk.Len() != 1 {
		t.Fatalf("decay kept %d keys, want 1", tk.Len())
	}
	// A new heavy hitter overtakes after repeated decay.
	for i := 0; i < 6; i++ {
		tk.Offer("new-heavy", 40)
		tk.Decay()
	}
	snap := tk.Snapshot()
	if snap.Entries[0].Key != "new-heavy" {
		t.Fatalf("churned heavy hitter did not take over: %+v", snap.Entries)
	}
}

// TestTopKMerge: merging shard summaries sums per key, keeps top K of
// the union, and accumulates error bounds.
func TestTopKMerge(t *testing.T) {
	a := NewStandaloneTopK(4)
	b := NewStandaloneTopK(4)
	a.Offer("x", 10)
	a.Offer("y", 5)
	b.Offer("x", 7)
	b.Offer("z", 20)

	m := MergeTopK(2, a.Snapshot(), b.Snapshot())
	if len(m.Entries) != 2 {
		t.Fatalf("merged entries = %d, want 2", len(m.Entries))
	}
	if m.Entries[0].Key != "z" || m.Entries[0].Count != 20 {
		t.Fatalf("top entry = %+v, want z/20", m.Entries[0])
	}
	if m.Entries[1].Key != "x" || m.Entries[1].Count != 17 {
		t.Fatalf("second entry = %+v, want x/17", m.Entries[1])
	}
	if m.Offers != a.Offers()+b.Offers() {
		t.Fatalf("merged offers = %d, want %d", m.Offers, a.Offers()+b.Offers())
	}
}

// TestTopKRegistered: a registry-registered TopK scrapes as a bounded
// gauge family labeled by key.
func TestTopKRegistered(t *testing.T) {
	reg := NewRegistry()
	tk := reg.NewTopK("iotsec_test_top_talkers", "Top talkers.", 8)
	tk.Offer("dev-1", 3)
	tk.Offer("dev-2", 1)
	samples := tk.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].Labels[0].Value != "dev-1" || samples[0].Value != 3 {
		t.Fatalf("first sample = %+v", samples[0])
	}
	// Re-registration under the same name returns the existing one.
	again := reg.NewTopK("iotsec_test_top_talkers", "Top talkers.", 8)
	if again != tk {
		t.Fatal("re-registration returned a different TopK")
	}
}
