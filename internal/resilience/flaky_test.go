package resilience

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory connection, the first
// wrapped with the plan.
func pipePair(t *testing.T, plan *FaultPlan) (*FlakyConn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	fc := WrapConn(a, plan)
	t.Cleanup(func() { _ = fc.Close(); _ = b.Close() })
	return fc, b
}

func TestFlakyConnPassthrough(t *testing.T) {
	fc, peer := pipePair(t, NewFaultPlan(1))
	go func() { _, _ = peer.Write([]byte("ping")) }()
	buf := make([]byte, 4)
	n, err := fc.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("Read = (%q, %v), want (ping, nil)", buf[:n], err)
	}
}

// TestFlakyConnReadPartitionBlocks verifies a one-way partition makes
// reads hang silently until the conn closes — the half-dead session
// shape heartbeats exist to detect.
func TestFlakyConnReadPartitionBlocks(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.PartitionReads(true)
	fc, peer := pipePair(t, plan)
	go func() { _, _ = peer.Write([]byte("lost")) }()

	done := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 4))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("partitioned read returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	_ = fc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("partitioned read error = %v, want net.ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("partitioned read did not unblock on close")
	}
}

// TestFlakyConnWritePartitionBlackholes verifies a blackholed write
// direction reports success without delivering.
func TestFlakyConnWritePartitionBlackholes(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.PartitionWrites(true)
	fc, peer := pipePair(t, plan)
	n, err := fc.Write([]byte("void"))
	if n != 4 || err != nil {
		t.Fatalf("blackholed Write = (%d, %v), want (4, nil)", n, err)
	}
	_ = peer.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := peer.Read(make([]byte, 4)); err == nil {
		t.Fatal("peer received data across a write partition")
	}
}

// TestFlakyConnKillDeterministic verifies kill sampling is driven by
// the seeded source: with rate 1 every I/O fails with
// ErrInjectedFailure and the conn is closed.
func TestFlakyConnKillDeterministic(t *testing.T) {
	plan := NewFaultPlan(7)
	plan.SetKillRate(1)
	fc, _ := pipePair(t, plan)
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("Write under kill rate 1 = %v, want ErrInjectedFailure", err)
	}
	// The kill closed the underlying conn.
	if _, err := fc.Conn.Write([]byte("x")); err == nil {
		t.Fatal("underlying conn still writable after injected kill")
	}
}

func TestFlakyConnLatency(t *testing.T) {
	plan := NewFaultPlan(1)
	plan.SetLatency(0, 25*time.Millisecond)
	fc, peer := pipePair(t, plan)
	go func() { _, _ = peer.Read(make([]byte, 4)) }()
	start := time.Now()
	if _, err := fc.Write([]byte("slow")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write completed in %v, want >= 25ms injected latency", d)
	}
}

// TestFlakyListener verifies accepted conns inherit the plan.
func TestFlakyListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(3)
	plan.PartitionWrites(true)
	fln := WrapListener(ln, plan)
	defer fln.Close()

	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			_, _ = c.Read(make([]byte, 8))
		}
	}()
	c, err := fln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*FlakyConn); !ok {
		t.Fatalf("Accept returned %T, want *FlakyConn", c)
	}
	if n, err := c.Write([]byte("gone")); n != 4 || err != nil {
		t.Fatalf("write through partitioned accepted conn = (%d, %v), want blackholed success", n, err)
	}
}
