package resilience

import (
	"sort"
	"sync"
	"time"
)

// Clock abstracts wall-clock time and tickers so liveness machinery
// (heartbeat loops, reapers) can be driven by a frozen clock in tests.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// NewTicker delivers a tick roughly every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the minimal ticker surface behind Clock.
type Ticker interface {
	// C is the tick channel.
	C() <-chan time.Time
	// Stop releases the ticker.
	Stop()
}

// System is the real-time clock.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) NewTicker(d time.Duration) Ticker {
	return systemTicker{time.NewTicker(d)}
}

type systemTicker struct{ t *time.Ticker }

func (t systemTicker) C() <-chan time.Time { return t.t.C }
func (t systemTicker) Stop()               { t.t.Stop() }

// FakeClock is a manually advanced clock: time only moves when
// Advance is called, firing any tickers that come due. Ticks are
// delivered on buffered channels with non-blocking sends, matching
// time.Ticker's coalescing behaviour for slow receivers.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*fakeTicker
}

// NewFakeClock builds a frozen clock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// NewTicker implements Clock.
func (c *FakeClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		d = time.Nanosecond
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTicker{clock: c, period: d, next: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock forward by d, firing due tickers in
// chronological order. A ticker more than one period overdue fires
// once per elapsed period (coalesced by the channel buffer, like
// time.Ticker).
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		// Fire the earliest due ticker until none are due.
		due := make([]*fakeTicker, 0, len(c.tickers))
		for _, t := range c.tickers {
			if !t.stopped && !t.next.After(target) {
				due = append(due, t)
			}
		}
		if len(due) == 0 {
			break
		}
		sort.Slice(due, func(i, j int) bool { return due[i].next.Before(due[j].next) })
		t := due[0]
		c.now = t.next
		t.next = t.next.Add(t.period)
		select {
		case t.ch <- c.now:
		default:
		}
	}
	c.now = target
	c.mu.Unlock()
}

type fakeTicker struct {
	clock   *FakeClock
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *fakeTicker) C() <-chan time.Time { return t.ch }

func (t *fakeTicker) Stop() {
	t.clock.mu.Lock()
	t.stopped = true
	t.clock.mu.Unlock()
}
