package controller

import (
	"context"
	"fmt"
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// buildFleetHierarchy makes n devices in shards of shardSize, each
// device carrying one self-targeting local rule on its own "_attr"
// env var (posture flips zero↔Block as the attr alternates a/b).
func buildFleetHierarchy(n, shardSize int, sink PostureSink) (*Hierarchy, []string) {
	devs := make([]string, n)
	for i := range devs {
		devs[i] = fmt.Sprintf("dev%06d", i)
	}
	d := policy.NewDomain()
	f := policy.NewFSM(d)
	for _, dev := range devs {
		d.AddDevice(dev, policy.ContextNormal, policy.ContextSuspicious)
		d.AddEnvVar(dev+"_attr", "a", "b")
		f.AddRule(policy.Rule{
			Name:       "local-" + dev,
			Conditions: []policy.Condition{policy.EnvIs(dev+"_attr", "b")},
			Device:     dev,
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   5,
		})
	}
	// Star edges within each block of shardSize keep blocks together.
	var edges []InteractionEdge
	for i, dev := range devs {
		if anchor := i - i%shardSize; anchor != i {
			edges = append(edges, InteractionEdge{A: devs[anchor], B: dev, Weight: 1})
		}
	}
	part := Partition(devs, edges, shardSize)
	envLocality := make(map[string]int, n)
	for _, dev := range devs {
		envLocality[dev+"_attr"] = part.GroupOf(dev)
	}
	return NewHierarchy(f, part, envLocality, sink), devs
}

// TestFleetAggregatorMergeAndStaleness: shard rollups merge into the
// fleet view; a shard that stops reporting surfaces as stale, keeps
// its cumulative totals, and only drops out of the event rate.
func TestFleetAggregatorMergeAndStaleness(t *testing.T) {
	agg := NewFleetAggregator(10 * time.Second)
	now := time.Unix(1000, 0)
	agg.SetClock(func() time.Time { return now })

	a := NewShardStats("shard-a", nil)
	b := NewShardStats("shard-b", nil)
	a.SetDevices(3)
	a.SetSKUDevices(map[string]int{"cam-v1": 2, "plug-v2": 1})
	b.SetDevices(2)
	b.SetSKUDevices(map[string]int{"cam-v1": 2})
	for i := 0; i < 10; i++ {
		a.RecordEvent("dev-a1")
		a.ObserveE2E("dev-a1", 0.002)
	}
	a.RecordEscalation()
	b.RecordEvent("dev-b1")
	b.RecordViolation("dev-b1")
	b.ObserveE2E("dev-b1", 0.5)

	if err := agg.Report(a.Rollup(now)); err != nil {
		t.Fatalf("report a: %v", err)
	}
	if err := agg.Report(b.Rollup(now)); err != nil {
		t.Fatalf("report b: %v", err)
	}

	v := agg.View()
	if v.Fleet.Shards != 2 || v.Fleet.StaleShards != 0 {
		t.Fatalf("shards=%d stale=%d", v.Fleet.Shards, v.Fleet.StaleShards)
	}
	if v.Fleet.Events != 11 || v.Fleet.Escalations != 1 || v.Fleet.Violations != 1 {
		t.Fatalf("fleet totals: %+v", v.Fleet)
	}
	if v.Fleet.Devices != 5 || v.Fleet.SKUDevices["cam-v1"] != 4 || v.Fleet.SKUDevices["plug-v2"] != 1 {
		t.Fatalf("device rollup: %+v", v.Fleet)
	}
	if v.Fleet.MTTR.Count != 11 {
		t.Fatalf("merged MTTR count = %d", v.Fleet.MTTR.Count)
	}
	if len(v.Fleet.TopProducers) == 0 || v.Fleet.TopProducers[0].Key != "dev-a1" {
		t.Fatalf("top producers: %+v", v.Fleet.TopProducers)
	}
	if len(v.Fleet.TopViolators) != 1 || v.Fleet.TopViolators[0].Key != "dev-b1" {
		t.Fatalf("top violators: %+v", v.Fleet.TopViolators)
	}

	// Only shard-a keeps reporting; shard-b goes quiet past the
	// staleness deadline.
	now = now.Add(11 * time.Second)
	a.RecordEvent("dev-a2")
	if err := agg.Report(a.Rollup(now)); err != nil {
		t.Fatalf("report a2: %v", err)
	}
	v = agg.View()
	if v.Fleet.StaleShards != 1 {
		t.Fatalf("stale shards = %d, want 1", v.Fleet.StaleShards)
	}
	var staleB *ShardSummary
	for i := range v.Shards {
		if v.Shards[i].Source == "shard-b" {
			staleB = &v.Shards[i]
		}
	}
	if staleB == nil || !staleB.Stale {
		t.Fatalf("shard-b not surfaced as stale: %+v", v.Shards)
	}
	// Stale shard keeps its cumulative history and device counts...
	if staleB.Events != 1 || v.Fleet.Events != 12 || v.Fleet.Devices != 5 {
		t.Fatalf("stale shard dropped from aggregates: %+v", v.Fleet)
	}
	// ...but contributes nothing to the instantaneous rate.
	if staleB.EventsPerSec != 0 {
		t.Fatalf("stale shard still in the rate: %+v", staleB)
	}
}

// TestFleetAggregatorSeqIdempotence: re-pushing the same rollup (a
// retry) must not double-count; out-of-order rollups are dropped.
func TestFleetAggregatorSeqIdempotence(t *testing.T) {
	agg := NewFleetAggregator(0)
	s := NewShardStats("shard-x", nil)
	s.RecordEvent("d1")
	s.RecordEvent("d2")
	r1 := s.Rollup(time.Unix(0, 0))

	if err := agg.Report(r1); err != nil {
		t.Fatalf("report: %v", err)
	}
	if err := agg.Report(r1); err != nil { // retried push
		t.Fatalf("re-report: %v", err)
	}
	v := agg.View()
	if v.Fleet.Events != 2 {
		t.Fatalf("retry double-counted: events = %d, want 2", v.Fleet.Events)
	}
	reports, dups, _ := agg.Stats()
	if reports != 1 || dups != 1 {
		t.Fatalf("reports=%d dups=%d, want 1/1", reports, dups)
	}
}

// TestFleetAggregatorBoundsMismatchSurfaces: a shard pushing a
// histogram with different bounds is rejected (counted, errored) and
// the merged state stays intact.
func TestFleetAggregatorBoundsMismatchSurfaces(t *testing.T) {
	agg := NewFleetAggregator(0)
	good := NewShardStats("shard-good", nil)
	good.ObserveE2E("d", 0.01)
	if err := agg.Report(good.Rollup(time.Unix(0, 0))); err != nil {
		t.Fatalf("report good: %v", err)
	}
	bad := NewShardStats("shard-good", []float64{1, 2, 3}) // same source, wrong bounds
	bad.ObserveE2E("d", 0.01)
	r := bad.Rollup(time.Unix(1, 0))
	r.Seq = 99
	if err := agg.Report(r); err == nil {
		t.Fatal("bounds mismatch did not error")
	}
	_, _, mergeErrs := agg.Stats()
	if mergeErrs != 1 {
		t.Fatalf("merge errors = %d, want 1", mergeErrs)
	}
	if got := agg.MergedMTTR().Count; got != 1 {
		t.Fatalf("merged count after rejected push = %d, want 1", got)
	}
}

// TestFleetMergedQuantilesMatchDirect: the fleet-merged MTTR
// distribution must reproduce a direct (unsharded) measurement of the
// same observations — quantiles agree exactly, well within the
// one-bucket acceptance bound.
func TestFleetMergedQuantilesMatchDirect(t *testing.T) {
	agg := NewFleetAggregator(0)
	direct := telemetry.NewStandaloneHistogram(nil)
	shards := make([]*ShardStats, 8)
	for i := range shards {
		shards[i] = NewShardStats(fmt.Sprintf("shard-%d", i), nil)
	}
	vals := []float64{12e-6, 80e-6, 300e-6, 900e-6, 2e-3, 9e-3, 40e-3, 120e-3, 0.8, 3}
	for i := 0; i < 5000; i++ {
		v := vals[i%len(vals)]
		direct.Observe(v)
		shards[i%len(shards)].ObserveE2E("dev", v)
	}
	now := time.Unix(0, 0)
	for _, s := range shards {
		if err := agg.Report(s.Rollup(now)); err != nil {
			t.Fatalf("report: %v", err)
		}
	}
	merged := agg.MergedMTTR()
	if merged.Count != direct.Count() {
		t.Fatalf("merged count = %d, direct = %d", merged.Count, direct.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := merged.Quantile(q), direct.Quantile(q); got != want {
			t.Fatalf("q%.2f: merged %v, direct %v", q, got, want)
		}
	}
}

// TestHierarchyFleetRollups drives a small sharded hierarchy with the
// rollup plane attached end to end: events land in per-shard stats,
// rollup deltas reach the global aggregator, and the fleet view
// reflects them.
func TestHierarchyFleetRollups(t *testing.T) {
	h, devs := buildFleetHierarchy(32, 8, nil)
	if h.Locals() != 4 {
		t.Fatalf("locals = %d, want 4", h.Locals())
	}
	agg := h.Global.Fleet()
	plane := h.StartFleetRollups(agg, time.Hour) // Stop() flushes; no tick needed
	stats := h.FleetStats()
	if len(stats) != 4 {
		t.Fatalf("fleet stats for %d shards, want 4", len(stats))
	}

	vals := [2]string{"b", "a"}
	for round := 0; round < 2; round++ {
		for _, dev := range devs {
			h.HandleDeviceEvent(context.Background(), device.Event{
				Device: dev, Kind: device.EventStateChange, Detail: "attr=" + vals[round],
			})
		}
	}
	// Feed one e2e observation so MTTR shows up.
	for _, s := range stats {
		s.ObserveE2E(devs[0], 0.004)
	}
	plane.Stop()

	v := agg.View()
	if v.Fleet.Shards != 4 {
		t.Fatalf("fleet shards = %d, want 4", v.Fleet.Shards)
	}
	if v.Fleet.Events != uint64(2*len(devs)) {
		t.Fatalf("fleet events = %d, want %d", v.Fleet.Events, 2*len(devs))
	}
	if v.Fleet.Devices != float64(len(devs)) {
		t.Fatalf("fleet devices = %v, want %d", v.Fleet.Devices, len(devs))
	}
	if v.Fleet.Escalations != 0 {
		t.Fatalf("purely local fleet escalated %d events", v.Fleet.Escalations)
	}
	if v.Fleet.MTTR.Count != 4 {
		t.Fatalf("fleet MTTR count = %d, want 4", v.Fleet.MTTR.Count)
	}
	if len(v.Fleet.TopProducers) == 0 {
		t.Fatal("no top producers in fleet view")
	}
	// Second EnableFleetStats returns the same set (idempotent).
	again := h.EnableFleetStats()
	if len(again) != 4 || again[0] != stats[0] {
		t.Fatal("EnableFleetStats not idempotent")
	}
}

// TestScopedLocalDomains: local controllers must not carry the whole
// fleet's device domain — local reconciles are O(shard), which is the
// property the 10⁵-device harness leans on.
func TestScopedLocalDomains(t *testing.T) {
	h, _ := buildFleetHierarchy(64, 8, nil)
	for g, l := range h.locals {
		if got := len(l.fsm.Domain.Devices()); got != 8 {
			t.Fatalf("local %d domain holds %d devices, want 8 (shard-scoped)", g, got)
		}
	}
}

func benchmarkHierarchyEvent(b *testing.B, attach bool) {
	h, devs := buildFleetHierarchy(256, 8, nil)
	if attach {
		h.EnableFleetStats()
	}
	vals := [2]string{"a", "b"}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev := devs[i%len(devs)]
		h.HandleDeviceEvent(ctx, device.Event{
			Device: dev,
			Kind:   device.EventStateChange,
			Detail: "attr=" + vals[(i/len(devs))%2],
		})
	}
}

// The rollup plane's hot-path budget: attached must stay within 5% of
// detached (BENCH_4 verifies from these two).
func BenchmarkHierarchyEventDetached(b *testing.B) { benchmarkHierarchyEvent(b, false) }
func BenchmarkHierarchyEventAttached(b *testing.B) { benchmarkHierarchyEvent(b, true) }
