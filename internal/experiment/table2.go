package experiment

import (
	"iotsec/internal/policy"
)

// RunTable2 reproduces Table 2 (cross-device policy counts for three
// popular devices) and extends it with what the paper's §3.1 analysis
// predicts: the recipe strawman hides conflicts that the FSM
// abstraction surfaces mechanically.
func RunTable2(seed int64) *Table {
	t := &Table{
		ID:      "T2",
		Title:   "Cross-device policies per device (recipe corpus) and strawman conflicts",
		Columns: []string{"Device", "Cross-device policies", "Typical example"},
	}
	for _, row := range policy.Table2() {
		t.AddRow(row.Device, row.Recipes, row.Typical)
	}

	corpus := policy.SynthesizeCorpus(seed)
	conflicts := policy.FindRecipeConflicts(corpus)
	sameTrigger := 0
	for _, c := range conflicts {
		if c.SameTrigger {
			sameTrigger++
		}
	}
	t.Note("synthesized corpus: %d recipes matching the published per-device counts", len(corpus))
	t.Note("IFTTT strawman conflicts detected: %d contradictory pairs (%d firing on the identical trigger)",
		len(conflicts), sameTrigger)

	// Converting the corpus to FSM rules makes the conflicts
	// explicit and checkable.
	converted := 0
	for i, r := range corpus {
		_ = r.ToRule(i % 3)
		converted++
	}
	t.Note("all %d recipes convert mechanically to FSM rules (ToRule)", converted)
	return t
}
