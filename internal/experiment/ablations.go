package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/learn"
	"iotsec/internal/mbox"
	"iotsec/internal/policy"
	"iotsec/internal/sigrepo"
)

// RunAblationStatePruning (A1) quantifies the §3.2 state explosion
// and how far the two pruning strategies shrink it as deployments
// scale.
func RunAblationStatePruning() *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Policy state space: brute force vs independence vs posture-equivalence",
		Columns: []string{"Devices", "Full |S|", "Independence-pruned", "Posture classes"},
	}
	for _, nDevices := range []int{5, 10, 20, 40, 80} {
		d := policy.NewDomain()
		for i := 0; i < nDevices; i++ {
			d.AddDevice(fmt.Sprintf("dev%03d", i), policy.ContextNormal, policy.ContextSuspicious, policy.ContextCompromised)
		}
		d.AddEnvVar("occupancy", "away", "home")
		d.AddEnvVar("smoke", "no", "yes")
		d.AddEnvVar("temperature", "low", "normal", "high")

		// A realistic policy references a handful of devices — the
		// rest are independent.
		f := policy.NewFSM(d)
		f.AddRule(policy.Rule{
			Name:       "fig3",
			Conditions: []policy.Condition{policy.DeviceIs("dev000", policy.ContextSuspicious)},
			Device:     "dev001",
			Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
			Priority:   10,
		})
		f.AddRule(policy.Rule{
			Name:       "fig5",
			Conditions: []policy.Condition{policy.EnvIs("occupancy", "away")},
			Device:     "dev002",
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   10,
		})
		f.AddRule(policy.Rule{
			Name:       "quarantine",
			Conditions: []policy.Condition{policy.DeviceIs("dev003", policy.ContextCompromised)},
			Device:     "dev003",
			Posture:    policy.Posture{Isolate: true},
			Priority:   20,
		})
		_, report := f.Compile(1 << 16)
		t.AddRow(nDevices,
			policy.FormatCount(report.FullStates),
			policy.FormatCount(report.IndependentStates),
			report.EquivalenceClasses)
	}
	t.Note("policy references 4 devices + 1 env var regardless of deployment size; pruning makes lookup size deployment-independent")
	return t
}

// RunAblationHierarchy (A2) compares flat (everything global) vs
// hierarchical event handling as deployments scale and interactions
// stay local. The event mix is drawn from the injected seed so runs
// are reproducible and comparable across configurations.
func RunAblationHierarchy(globalRTT time.Duration, seed int64) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "Flat vs hierarchical control plane (modeled global RTT " + globalRTT.String() + ")",
		Columns: []string{"Devices", "Events", "Flat latency", "Hier. escalated", "Hier. latency"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, nDevices := range []int{8, 32, 128} {
		devices := make([]string, nDevices)
		d := policy.NewDomain()
		for i := range devices {
			devices[i] = fmt.Sprintf("dev%03d", i)
			d.AddDevice(devices[i], policy.ContextNormal, policy.ContextSuspicious)
			d.AddEnvVar(devices[i]+"_attr", "a", "b")
		}
		// Interaction edges: strongly local pairs.
		var edges []controller.InteractionEdge
		for i := 0; i+1 < nDevices; i += 2 {
			edges = append(edges, controller.InteractionEdge{A: devices[i], B: devices[i+1], Weight: 100})
		}
		part := controller.Partition(devices, edges, 2)

		// Policy: each pair has a local rule; plus one global rule
		// over two devices in different partitions.
		f := policy.NewFSM(d)
		envLocality := map[string]int{}
		for i := 0; i+1 < nDevices; i += 2 {
			f.AddRule(policy.Rule{
				Name:       fmt.Sprintf("local-%d", i),
				Conditions: []policy.Condition{policy.EnvIs(devices[i]+"_attr", "b")},
				Device:     devices[i+1],
				Posture:    policy.Posture{BlockCommands: []string{"ON"}},
				Priority:   5,
			})
			envLocality[devices[i]+"_attr"] = part.GroupOf(devices[i])
		}
		f.AddRule(policy.Rule{
			Name: "global",
			Conditions: []policy.Condition{
				policy.DeviceIs(devices[0], policy.ContextSuspicious),
				policy.DeviceIs(devices[nDevices-1], policy.ContextSuspicious),
			},
			Device:   devices[0],
			Posture:  policy.Posture{Isolate: true},
			Priority: 9,
		})

		const events = 500
		// Flat: every event pays the global RTT.
		flatLatency := time.Duration(events) * globalRTT

		// Event mix: mostly routine state changes (local policy
		// consequences), plus occasional security events (backdoor
		// probes) on random devices — only those touching the
		// globally referenced devices escalate.
		h := controller.NewHierarchy(f, part, envLocality, nil)
		for e := 0; e < events; e++ {
			dev := devices[rng.Intn(nDevices)]
			if e%5 == 0 {
				h.HandleDeviceEvent(context.Background(), device.Event{Device: dev, Kind: device.EventBackdoorAccess, Detail: "probe"})
				continue
			}
			h.HandleDeviceEvent(context.Background(), device.Event{
				Device: dev,
				Kind:   device.EventStateChange,
				Detail: fmt.Sprintf("attr=%s", []string{"a", "b"}[rng.Intn(2)]),
			})
		}
		local, escalated := h.Metrics()
		_ = local
		hierLatency := time.Duration(escalated) * globalRTT
		t.AddRow(nDevices, events,
			flatLatency.Round(time.Millisecond),
			fmt.Sprintf("%d/%d", escalated, events),
			hierLatency.Round(time.Millisecond))
	}
	t.Note("local events are handled by the partition controller at function-call latency")
	return t
}

// RunAblationMicroMbox (A3) compares the µmbox platform choices: boot
// latency, per-device customization, and live reconfiguration.
func RunAblationMicroMbox() (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "µmbox platform: boot latency and agility",
		Columns: []string{"Platform", "Modeled boot", "100 per-device instances", "Live reconfig"},
	}
	for _, k := range []mbox.PlatformKind{mbox.PlatformFullVM, mbox.PlatformMicroVM, mbox.PlatformProcess} {
		mgr := mbox.NewManager(mbox.Server{Name: "s0", Slots: 256})
		mgr.TimeScale = 0 // account, don't sleep
		for i := 0; i < 100; i++ {
			if _, err := mgr.Launch(context.Background(), fmt.Sprintf("mb-%d", i), k, mbox.NewPipeline(&mbox.Logger{})); err != nil {
				return nil, err
			}
		}
		boots, mean, _ := mgr.Metrics()
		total := mean * time.Duration(boots)
		// Live reconfiguration cost: mean wall-clock of a pipeline
		// swap (averaged: a single swap is tens of nanoseconds).
		inst, _ := mgr.Instance("mb-0")
		const swaps = 1000
		start := time.Now()
		for i := 0; i < swaps; i++ {
			inst.Mbox.Pipeline().Replace(&mbox.Logger{}, mbox.NewRateLimiter(10, 10))
		}
		reconf := time.Since(start) / swaps
		t.AddRow(string(k), mboxBootMillis(k), total, reconf)
	}
	t.Note("full VMs cannot give every device its own customized security function; micro-VMs and processes can")
	return t, nil
}

// RunAblationFuzzCoverage (A4) compares model fuzzing against passive
// observation for cross-device interaction discovery. The fuzzer's
// command sampling uses the injected seed.
func RunAblationFuzzCoverage(seed int64) *Table {
	t := &Table{
		ID:      "A4",
		Title:   "Interaction discovery: model fuzzing vs passive observation",
		Columns: []string{"Trials", "Fuzz coverage", "Passive coverage"},
	}
	// Ground truth from two-command chains: deeper reachable
	// interactions (e.g. effects only visible from non-initial
	// configurations) that single probes miss.
	truth := learn.ExhaustiveInteractions(ablationWorld, 2, 3)
	for _, trials := range []int{3, 10, 50, 200} {
		fuzz := learn.NewFuzzer(ablationWorld, seed).Run(trials)
		passive := learn.PassiveObserve(ablationWorld, trials)
		t.AddRow(trials,
			fmt.Sprintf("%.0f%%", 100*learn.Coverage(fuzz, truth)),
			fmt.Sprintf("%.0f%%", 100*learn.Coverage(passive, truth)))
	}
	t.Note("ground truth: %d interactions from exhaustive enumeration over two-command chains", len(truth))
	return t
}

// ablationWorld builds the standard abstract smart home for A4.
func ablationWorld() *learn.World {
	lib := learn.StandardLibrary()
	w := learn.NewWorld(map[string]string{
		"temperature": "normal", "light": "dark", "smoke": "no",
		"window": "closed", "door": "locked", "alarm_sounding": "no",
	})
	for _, spec := range []struct{ name, class string }{
		{"plug", "plug"}, {"window", "window"}, {"bulb", "bulb"},
		{"lightsensor", "light-sensor"}, {"firealarm", "fire-alarm"},
		{"oven", "oven"}, {"lock", "lock"},
	} {
		m, ok := lib.Get(spec.class)
		if !ok {
			panic("missing model " + spec.class)
		}
		w.AddInstance(spec.name, m)
	}
	return w
}

// RunAblationReputation (A5) measures signature quality with and
// without the reputation/voting defense under adversarial
// contributors.
func RunAblationReputation(seed int64) *Table {
	t := &Table{
		ID:      "A5",
		Title:   "Crowdsourced signature quality: reputation voting vs accept-all",
		Columns: []string{"Scheme", "Good sigs live", "Poison sigs live", "Poison acceptance"},
	}
	rng := rand.New(rand.NewSource(seed))

	run := func(withVoting bool) (goodLive, poisonLive int) {
		repo := sigrepo.NewRepository("salt")
		honest := []string{"org-a", "org-b", "org-c", "org-d"}
		attackers := []string{"evil-x", "evil-y"}
		goodRule := `alert tcp any any -> any 80 (msg:"real attack"; content:"backdoor-token"; sid:%d;)`
		// Poison: a block rule that matches normal traffic (here: the
		// benign STATUS verb) — accepted blindly it causes denial of
		// service.
		poisonRule := `block tcp any any -> any 80 (msg:"poison"; content:"STATUS"; sid:%d;)`

		var goodIDs, poisonIDs []string
		for i := 0; i < 10; i++ {
			sig, err := repo.Publish(context.Background(), honest[i%len(honest)], "sku-x", fmt.Sprintf(goodRule, 100+i), "seen in logs")
			if err == nil {
				goodIDs = append(goodIDs, sig.ID)
			}
		}
		for i := 0; i < 10; i++ {
			sig, err := repo.Publish(context.Background(), attackers[i%len(attackers)], "sku-x", fmt.Sprintf(poisonRule, 200+i), "trust me")
			if err == nil {
				poisonIDs = append(poisonIDs, sig.ID)
			}
		}
		if withVoting {
			// Honest orgs test signatures against their traffic and
			// vote accordingly; attackers upvote their own poison
			// from sock puppets. Voter accountability burns the
			// socks' reputation after their first refuted
			// endorsements, so later poison can no longer clear
			// quarantine; we measure after the system has seen one
			// wave (the publish loop above is the second wave —
			// warm the reputations with a first wave here).
			warm := func(id string, poison bool) {
				if poison {
					_, _ = repo.Vote(context.Background(), "sock-1", id, true)
					_, _ = repo.Vote(context.Background(), "sock-2", id, true)
				}
				for _, voter := range honest {
					if rng.Float64() < 0.9 {
						_, _ = repo.Vote(context.Background(), voter, id, !poison)
					}
				}
			}
			for i := 0; i < 6; i++ {
				if sig, err := repo.Publish(context.Background(), honest[i%len(honest)], "sku-warm", fmt.Sprintf(goodRule, 300+i), ""); err == nil {
					warm(sig.ID, false)
				}
				if sig, err := repo.Publish(context.Background(), attackers[i%len(attackers)], "sku-warm", fmt.Sprintf(poisonRule, 400+i), ""); err == nil {
					warm(sig.ID, true)
				}
			}
			for _, id := range goodIDs {
				warm(id, false)
			}
			for _, id := range poisonIDs {
				warm(id, true)
			}
		} else {
			// Accept-all: every published signature goes live
			// immediately (clear threshold zero).
			repo2 := sigrepo.NewRepository("salt")
			repo2.ClearScore = -1e9
			goodIDs, poisonIDs = goodIDs[:0], poisonIDs[:0]
			for i := 0; i < 10; i++ {
				if sig, err := repo2.Publish(context.Background(), honest[i%len(honest)], "sku-x", fmt.Sprintf(goodRule, 100+i), ""); err == nil {
					goodIDs = append(goodIDs, sig.ID)
					_, _ = repo2.Vote(context.Background(), "anyone", sig.ID, true)
				}
			}
			for i := 0; i < 10; i++ {
				if sig, err := repo2.Publish(context.Background(), attackers[i%len(attackers)], "sku-x", fmt.Sprintf(poisonRule, 200+i), ""); err == nil {
					poisonIDs = append(poisonIDs, sig.ID)
					_, _ = repo2.Vote(context.Background(), "anyone", sig.ID, true)
				}
			}
			repo = repo2
		}
		for _, sig := range repo.Fetch("sku-x") {
			if strings.Contains(sig.Rule, "poison") {
				poisonLive++
			} else {
				goodLive++
			}
		}
		return goodLive, poisonLive
	}

	gl, pl := run(false)
	t.AddRow("accept-all (no voting)", fmt.Sprintf("%d/10", gl), fmt.Sprintf("%d/10", pl), fmt.Sprintf("%.0f%%", 100*float64(pl)/10))
	gl, pl = run(true)
	t.AddRow("reputation voting", fmt.Sprintf("%d/10", gl), fmt.Sprintf("%d/10", pl), fmt.Sprintf("%.0f%%", 100*float64(pl)/10))
	t.Note("poison = block rules matching benign traffic (crowdsourced denial of service)")
	return t
}
