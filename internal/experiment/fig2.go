package experiment

import (
	"context"
	"fmt"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/mbox"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// RunFigure2 exercises the whole Figure 2 architecture end to end and
// reports its operational metrics: tunnel overhead (request latency
// through the µmbox vs bare), dynamic µmbox launch cost per platform
// kind, and event→enforcement latency (device event to µmbox
// reconfiguration applied).
func RunFigure2() (*Table, error) {
	t := &Table{
		ID:      "F2",
		Title:   "IoTSec architecture: tunnel, dynamic µmbox launch, event-driven enforcement",
		Columns: []string{"Metric", "Value"},
	}

	// --- Request latency bare vs through the µmbox tunnel ---
	bare, err := measureRequestLatency(false)
	if err != nil {
		return nil, err
	}
	tunneled, err := measureRequestLatency(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("mgmt request latency (bare)", fmt.Sprintf("%.2fms", ms(bare)))
	t.AddRow("mgmt request latency (via µmbox)", fmt.Sprintf("%.2fms", ms(tunneled)))
	t.AddRow("tunnel overhead", fmt.Sprintf("%.2fms", ms(tunneled-bare)))

	// --- The same tunnel programmed by real FLOW_MODs over the
	// southbound wire (SDN steering) ---
	steered, err := measureSteeredLatency()
	if err != nil {
		return nil, err
	}
	t.AddRow("mgmt request latency (SDN-steered tunnel)", fmt.Sprintf("%.2fms", ms(steered)))

	// --- Dynamic µmbox launch (modeled boot latencies) ---
	for _, k := range []mbox.PlatformKind{mbox.PlatformProcess, mbox.PlatformMicroVM, mbox.PlatformFullVM} {
		t.AddRow("µmbox boot ("+string(k)+", modeled)", mboxBootMillis(k))
	}

	// --- Event → enforcement latency ---
	lat, err := measureEnforcementLatency()
	if err != nil {
		return nil, err
	}
	t.AddRow("device event -> posture enforced", fmt.Sprintf("%.2fms", ms(lat)))
	t.Note("tunnel path: client -> uplink switch -> µmbox -> device and back")
	return t, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// measureRequestLatency times authorized SNAPSHOT round trips.
func measureRequestLatency(viaIoTSec bool) (time.Duration, error) {
	const samples = 20
	if !viaIoTSec {
		raw := newRawLab()
		defer raw.stop()
		cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
		if err := raw.add(cam.Device); err != nil {
			return 0, err
		}
		raw.start()
		client := &device.Client{Stack: raw.attacker.Stack, Timeout: time.Second}
		return timeCalls(client, cam.IP(), "admin", "admin", samples)
	}
	prot, err := newProtectedLab(policyFor("cam", device.CameraProfile()))
	if err != nil {
		return 0, err
	}
	defer prot.stop()
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := prot.platform.AddDevice(cam.Device); err != nil {
		return 0, err
	}
	prot.platform.Start()
	client := &device.Client{Stack: prot.attacker.Stack, Timeout: time.Second}
	// Through the proxy the administrator credentials are required.
	return timeCalls(client, cam.IP(), "homeadmin", "Str0ng!pass", samples)
}

// timeCalls measures the mean latency of authorized SNAPSHOT calls.
func timeCalls(client *device.Client, ip packet.IPv4Address, user, pass string, samples int) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < samples; i++ {
		start := time.Now()
		resp, err := client.Call(ip, device.Request{Cmd: "SNAPSHOT", User: user, Pass: pass})
		if err != nil {
			return 0, fmt.Errorf("latency sample %d: %w", i, err)
		}
		if !resp.OK {
			return 0, fmt.Errorf("latency sample %d refused: %s", i, resp.Data)
		}
		total += time.Since(start)
	}
	return total / time.Duration(samples), nil
}

// measureSteeredLatency builds the SDN-steered variant of the tunnel:
// the switch starts empty (drop-on-miss) and the steering controller
// programs the detour with FLOW_MODs over a real TCP southbound
// session.
func measureSteeredLatency() (time.Duration, error) {
	steering := controller.NewSteering(nil)
	addr, err := steering.Listen("127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer steering.Close()

	n := netsim.NewNetwork()
	sw := netsim.NewSwitch("edge", 7)
	sw.SetMissBehavior(netsim.MissDrop)
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	camPort, err := cam.Device.Attach(n)
	if err != nil {
		return 0, err
	}
	n.Connect(camPort, sw.AttachPort(n, 1), netsim.LinkOptions{})
	proxy := mbox.NewPasswordProxy("homeadmin", "Str0ng!pass", "admin", "admin")
	mb := mbox.NewMbox("mb-cam", mbox.NewPipeline(proxy))
	south, north := mb.AttachInline(n)
	n.Connect(north, sw.AttachPort(n, 2), netsim.LinkOptions{})
	n.Connect(south, sw.AttachPort(n, 3), netsim.LinkOptions{})
	clientIP := packet.MustParseIPv4("10.0.0.100")
	clientStack := netsimStack("client", clientIP)
	n.Connect(clientStack.Attach(n), sw.AttachPort(n, 4), netsim.LinkOptions{})
	n.Start()
	defer n.Stop()
	defer cam.Stop()
	defer clientStack.Stop()

	agent, err := netsim.ConnectAgent(sw, addr)
	if err != nil {
		return 0, err
	}
	defer agent.Stop()
	if !steering.WaitForSwitch(2 * time.Second) {
		return 0, fmt.Errorf("fig2: switch never connected to steering controller")
	}
	steering.AddDevice(context.Background(), controller.SteeredDevice{
		Name: "cam", MAC: cam.MAC(), DevicePort: 1, MboxNorthPort: 2, MboxSouthPort: 3,
	})

	client := &device.Client{Stack: clientStack, Timeout: time.Second}
	return timeCalls(client, cam.IP(), "homeadmin", "Str0ng!pass", 20)
}

// measureEnforcementLatency times backdoor event → window OPEN
// blocked.
func measureEnforcementLatency() (time.Duration, error) {
	d := policy.NewDomain()
	d.AddDevice("alarm", policy.ContextNormal, policy.ContextSuspicious)
	d.AddDevice("window", policy.ContextNormal, policy.ContextSuspicious)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "fig3",
		Conditions: []policy.Condition{policy.DeviceIs("alarm", policy.ContextSuspicious)},
		Device:     "window",
		Posture:    policy.Posture{BlockCommands: []string{"OPEN"}},
		Priority:   10,
	})
	prot, err := newProtectedLab(f)
	if err != nil {
		return 0, err
	}
	defer prot.stop()
	alarm := device.NewFireAlarm("alarm", packet.MustParseIPv4("10.0.0.20"))
	win := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.21"))
	if _, err := prot.platform.AddDevice(alarm.Device); err != nil {
		return 0, err
	}
	if _, err := prot.platform.AddDevice(win.Device); err != nil {
		return 0, err
	}
	prot.platform.Start()

	before, _ := prot.platform.Metrics()
	start := time.Now()
	if r := prot.attacker.TryBackdoor(alarm.IP(), "TEST", device.AlarmBackdoorToken); !r.Success {
		return 0, fmt.Errorf("backdoor probe failed: %+v", r)
	}
	// Wait for the posture change to land; the poll granularity is
	// measurement overhead that adds directly onto the reported
	// enforcement latency, so the wait spins rather than sleeps.
	if waitUntil(func() bool {
		now, _ := prot.platform.Metrics()
		return now > before
	}, 2*time.Second) {
		return time.Since(start), nil
	}
	return 0, fmt.Errorf("enforcement never landed")
}
