package experiment

import (
	"fmt"
	"runtime"
	"time"

	"iotsec/internal/attack"
	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/mbox"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// rawLab is an undefended deployment: devices and an attacker on one
// flooding switch — "the current world" halves of Figures 4 and 5.
type rawLab struct {
	net      *netsim.Network
	sw       *netsim.Switch
	attacker *attack.Attacker
	hosts    []*netsim.Stack
	devices  []*device.Device
	nextPort uint16
}

func newRawLab() *rawLab {
	l := &rawLab{
		net:      netsim.NewNetwork(),
		sw:       netsim.NewSwitch("uplink", 1),
		nextPort: 1,
	}
	l.sw.SetMissBehavior(netsim.MissFlood)
	ip := packet.MustParseIPv4("10.0.0.66")
	st := netsim.NewStack("attacker", device.MACFor(ip), ip)
	l.connect(st.Attach(l.net))
	l.hosts = append(l.hosts, st)
	l.attacker = attack.NewAttacker(st)
	return l
}

func (l *rawLab) connect(p *netsim.Port) {
	sp := l.sw.AttachPort(l.net, l.nextPort)
	l.nextPort++
	l.net.Connect(p, sp, netsim.LinkOptions{})
}

func (l *rawLab) add(d *device.Device) error {
	p, err := d.Attach(l.net)
	if err != nil {
		return err
	}
	l.connect(p)
	l.devices = append(l.devices, d)
	return nil
}

// addHost attaches an extra plain host.
func (l *rawLab) addHost(ip string) *netsim.Stack {
	addr := packet.MustParseIPv4(ip)
	st := netsim.NewStack("host-"+ip, device.MACFor(addr), addr)
	l.connect(st.Attach(l.net))
	l.hosts = append(l.hosts, st)
	return st
}

func (l *rawLab) start() { l.net.Start() }
func (l *rawLab) stop() {
	for _, h := range l.hosts {
		h.Stop()
	}
	for _, d := range l.devices {
		d.Stop()
	}
	l.net.Stop()
}

// protectedLab is the same deployment behind IoTSec.
type protectedLab struct {
	platform *core.Platform
	attacker *attack.Attacker
	hosts    []*netsim.Stack
}

// newProtectedLab builds a platform with the given policy and the
// attacker attached.
func newProtectedLab(fsm *policy.FSM) (*protectedLab, error) {
	p, err := core.New(core.Options{Policy: fsm, BootTimeScale: 0.001})
	if err != nil {
		return nil, err
	}
	ip := packet.MustParseIPv4("10.0.0.66")
	st := netsim.NewStack("attacker", device.MACFor(ip), ip)
	p.AttachHost(st)
	return &protectedLab{
		platform: p,
		attacker: attack.NewAttacker(st),
		hosts:    []*netsim.Stack{st},
	}, nil
}

func (l *protectedLab) stop() {
	for _, h := range l.hosts {
		h.Stop()
	}
	l.platform.Stop()
}

// standardPosture returns the hardening posture IoTSec applies to a
// device class by default: a password proxy when the SKU has factory
// credentials, a stateful firewall plus DNS guard for resolver abuse,
// and an open-access gate (context gate denying all mutating
// commands) for credential-less devices.
func standardPosture(profile device.Profile) policy.Posture {
	var p policy.Posture
	if profile.HasVuln(device.VulnDefaultCredentials) || profile.HasVuln(device.VulnExposedKey) {
		p.Modules = append(p.Modules, policy.ModuleSpec{
			Kind:   "password-proxy",
			Config: map[string]string{"user": "homeadmin", "pass": "Str0ng!pass"},
		})
	}
	if profile.HasVuln(device.VulnOpenDNSResolver) {
		p.Modules = append(p.Modules, policy.ModuleSpec{Kind: "dns-guard"})
	}
	if profile.HasVuln(device.VulnOpenAccess) {
		// Mutating commands require explicit admin context; here we
		// simply block the dangerous verbs.
		p.BlockCommands = append(p.BlockCommands, "SET", "RELAY", "SET_CALIBRATION", "TUNE", "UPDATE", "SCAN_NET")
	}
	if profile.HasVuln(device.VulnBackdoor) {
		p.Modules = append(p.Modules, policy.ModuleSpec{Kind: "ids"})
	}
	if profile.HasVuln(device.VulnWeakPassword) {
		p.Modules = append(p.Modules, policy.ModuleSpec{Kind: "robot-check"})
	}
	p.Modules = append(p.Modules, policy.ModuleSpec{Kind: "stateful-fw"})
	return p
}

// policyFor builds a single-device always-on policy from the standard
// posture.
func policyFor(devName string, profile device.Profile) *policy.FSM {
	d := policy.NewDomain()
	d.AddDevice(devName)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:     "standard-" + devName,
		Device:   devName,
		Posture:  standardPosture(profile),
		Priority: 1,
	})
	return f
}

// policyForMany builds an always-on standard-posture policy over
// several devices.
func policyForMany(profiles map[string]device.Profile) *policy.FSM {
	d := policy.NewDomain()
	for name := range profiles {
		d.AddDevice(name)
	}
	f := policy.NewFSM(d)
	for name, profile := range profiles {
		f.AddRule(policy.Rule{
			Name:     "standard-" + name,
			Device:   name,
			Posture:  standardPosture(profile),
			Priority: 1,
		})
	}
	return f
}

// netsimStack builds a plain host stack at the address.
func netsimStack(name string, ip packet.IPv4Address) *netsim.Stack {
	return netsim.NewStack(name, device.MACFor(ip), ip)
}

// settle gives asynchronous plumbing a moment.
func settle() { time.Sleep(20 * time.Millisecond) }

// waitUntil polls cond to true within the timeout. The first couple of
// milliseconds are yield-spun so sub-millisecond events are observed
// promptly (time.Sleep rounds short waits up to the kernel tick); after
// that it degrades to millisecond sleeps until the deadline.
func waitUntil(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	spinUntil := time.Now().Add(2 * time.Millisecond)
	for {
		if cond() {
			return true
		}
		now := time.Now()
		if now.After(deadline) {
			return false
		}
		if now.Before(spinUntil) {
			runtime.Gosched()
		} else {
			time.Sleep(time.Millisecond)
		}
	}
}

// mboxBootMillis formats a platform boot latency.
func mboxBootMillis(k mbox.PlatformKind) string {
	return fmt.Sprintf("%.0fms", float64(mbox.BootLatency(k))/float64(time.Millisecond))
}
