package controller

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"iotsec/internal/forensics"
	"iotsec/internal/journal"
)

// fakeIncidentSource is a canned shard feed.
type fakeIncidentSource struct {
	digests []forensics.Digest
	events  map[uint64][]journal.Event
}

func (f *fakeIncidentSource) Digests() []forensics.Digest { return f.digests }
func (f *fakeIncidentSource) TraceEvents(traceID uint64) []journal.Event {
	return f.events[traceID]
}

// TestFleetIncidentsMergesPushAndPull: pushed digest sets and live
// sources merge into one fleet view, live winning per shard, shard
// names stamped, newest-opened first.
func TestFleetIncidentsMergesPushAndPull(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	agg := NewFleetAggregator(0)

	// shard-a: push-only (a remote shard between rollup flushes).
	agg.ReportIncidents("shard-a", []forensics.Digest{
		{ID: forensics.IncidentID(1), TraceID: 1, Kind: forensics.KindAnomaly, OpenedAt: base},
	})
	// shard-b: live source; its push is stale and must be superseded.
	agg.ReportIncidents("shard-b", []forensics.Digest{
		{ID: forensics.IncidentID(9), TraceID: 9, Kind: forensics.KindAnomaly, OpenedAt: base},
	})
	agg.AttachIncidentSource("shard-b", &fakeIncidentSource{
		digests: []forensics.Digest{
			{ID: forensics.IncidentID(2), TraceID: 2, Kind: forensics.KindProfileViolation, OpenedAt: base.Add(time.Minute)},
		},
	})

	ds := agg.FleetIncidents()
	if len(ds) != 2 {
		t.Fatalf("fleet view has %d incidents, want 2 (live supersedes shard-b's stale push)", len(ds))
	}
	if ds[0].ID != forensics.IncidentID(2) {
		t.Fatalf("first incident %s, want the newest-opened", ds[0].ID)
	}
	if ds[0].Shard != "shard-b" || ds[1].Shard != "shard-a" {
		t.Fatalf("shard stamps wrong: %s/%s", ds[0].Shard, ds[1].Shard)
	}
	for _, d := range ds {
		if d.TraceID == 9 {
			t.Fatal("stale pushed digest survived a live source")
		}
	}
}

// TestFleetAssembleTimelinePullsAllShards: timeline assembly pulls
// per-shard events and merges them into one causally ordered story.
func TestFleetAssembleTimelinePulls(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	agg := NewFleetAggregator(0)
	agg.AttachIncidentSource("shard-a", &fakeIncidentSource{events: map[uint64][]journal.Event{
		7: {
			{Seq: 100, TraceID: 7, Wall: base, Type: journal.TypeAnomaly, Device: "cam"},
			{Seq: 101, TraceID: 7, Wall: base.Add(time.Millisecond), Type: journal.TypePosture, Device: "cam"},
		},
	}})
	agg.AttachIncidentSource("shard-b", &fakeIncidentSource{events: map[uint64][]journal.Event{
		7: {
			{Seq: 2, TraceID: 7, Wall: base.Add(2 * time.Millisecond), Type: journal.TypeFlowMod, Device: "cam"},
		},
	}})
	agg.AttachIncidentSource("shard-idle", &fakeIncidentSource{})

	tl := agg.AssembleTimeline(7)
	if len(tl.Events) != 3 {
		t.Fatalf("assembled %d events, want 3", len(tl.Events))
	}
	if len(tl.Shards) != 2 {
		t.Fatalf("contributing shards %v, want 2", tl.Shards)
	}
	if tl.Events[0].Type != journal.TypeAnomaly || tl.Events[2].Type != journal.TypeFlowMod {
		t.Fatalf("merge order wrong: %s", tl.Chain())
	}
}

// TestFleetIncidentsHandler: /debug/fleet/incidents serves the merged
// digest list, and ?trace= the assembled timeline.
func TestFleetIncidentsHandler(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	agg := NewFleetAggregator(0)
	agg.AttachIncidentSource("shard-a", &fakeIncidentSource{
		digests: []forensics.Digest{{ID: forensics.IncidentID(4), TraceID: 4, Kind: forensics.KindAnomaly, OpenedAt: base}},
		events: map[uint64][]journal.Event{
			4: {{Seq: 1, TraceID: 4, Wall: base, Type: journal.TypeAnomaly, Device: "cam"}},
		},
	})
	h := agg.IncidentsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet/incidents", nil))
	var list FleetIncidentsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list response: %v", err)
	}
	if list.Total != 1 || len(list.Incidents) != 1 {
		t.Fatalf("list total=%d len=%d, want 1/1", list.Total, len(list.Incidents))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet/incidents?trace=4", nil))
	var tl forensics.FleetTimeline
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatalf("timeline response: %v", err)
	}
	if tl.TraceID != 4 || len(tl.Events) != 1 || tl.Events[0].Shard != "shard-a" {
		t.Fatalf("timeline wrong: %+v", tl)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/fleet/incidents?trace=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace param returned %d, want 400", rec.Code)
	}
}
