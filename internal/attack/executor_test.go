package attack

import (
	"testing"
	"time"

	"iotsec/internal/core"
	"iotsec/internal/device"
	"iotsec/internal/envsim"
	"iotsec/internal/learn"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

// planWorld builds the abstract model the planner reasons over:
// plug-powered heater + IFTTT window.
func planWorld() *learn.World {
	lib := learn.StandardLibrary()
	w := learn.NewWorld(map[string]string{
		"temperature": "normal", "window": "closed",
	})
	plugModel, _ := lib.Get("plug")
	windowModel, _ := lib.Get("window")
	w.AddInstance("plug", plugModel)
	w.AddInstance("window", windowModel)
	return w
}

// plan finds the §2.1 multi-stage attack in the abstract world.
func plan(t *testing.T) []learn.AttackStep {
	t.Helper()
	search := &learn.AttackSearch{
		Build:      planWorld,
		Vulnerable: map[string]bool{"plug": true},
		MaxDepth:   8,
	}
	path, _ := search.FindAttack(learn.GoalEnv("window", "open"))
	if path == nil {
		t.Fatal("planner found no attack")
	}
	return path
}

// liveDeployment builds the concrete emulated smart home, optionally
// under the IoTSec mitigation derived from the plan.
func liveDeployment(t *testing.T, mitigated bool) (*core.Platform, *Executor, *device.WindowActuator) {
	t.Helper()
	d := policy.NewDomain()
	d.AddDevice("plug")
	d.AddDevice("window")
	d.AddEnvVar(envsim.VarOccupancy, "away", "home")
	f := policy.NewFSM(d)
	if mitigated {
		// The mitigation CheckSafety derives: block plug.ON while
		// away.
		f.AddRule(policy.Rule{
			Name:       "no-heat-while-away",
			Conditions: []policy.Condition{policy.EnvIs(envsim.VarOccupancy, "away")},
			Device:     "plug",
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   10,
		})
	}
	p, err := core.New(core.Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	// The window opens itself when hot (the IFTTT recipe), modeled by
	// an environment observer driving the actuator.
	plug := device.NewSmartPlug("plug", packet.MustParseIPv4("10.0.0.30"), device.Appliance{
		Name: "heater", PowerVar: "heater_power", Watts: 2000, HeatVar: "hvac_heat_rate", HeatRate: 0.05,
	})
	win := device.NewWindowActuator("window", packet.MustParseIPv4("10.0.0.31"))
	if _, err := p.AddDevice(plug.Device); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddDevice(win.Device); err != nil {
		t.Fatal(err)
	}
	// IFTTT recipe: when the room is hot, open the window (a hub
	// would issue the command; we model its physical effect).
	p.Env.AddObserver(func(s envsim.Snapshot, _ map[string]float64) {
		if s.Get(envsim.VarTemperature) > 27 && win.Get("window") == "closed" {
			win.Set("window", "open")
			p.Env.Set(envsim.VarWindowOpen, 1)
		}
	})
	p.Env.Set(envsim.VarOccupancy, 0)
	p.Start()
	t.Cleanup(p.Stop)
	p.RunEnvironment(1)

	attackerIP := packet.MustParseIPv4("10.0.0.66")
	st := netsim.NewStack("attacker", device.MACFor(attackerIP), attackerIP)
	p.AttachHost(st)
	t.Cleanup(st.Stop)

	exec := &Executor{
		Attacker: NewAttacker(st),
		Env:      p.Env,
		Targets: map[string]TargetInfo{
			"plug":   {IP: plug.IP(), BackdoorToken: device.PlugBackdoorToken},
			"window": {IP: win.IP(), User: "admin", Pass: device.WindowPassword},
		},
	}
	return p, exec, win
}

func TestAbstractPlanExecutesAgainstBareDeployment(t *testing.T) {
	path := plan(t)
	_, exec, win := liveDeployment(t, false)
	time.Sleep(20 * time.Millisecond)

	result := exec.Execute(path)
	if !result.Succeeded() {
		t.Fatalf("plan failed at %q after %d/%d steps", result.FailedStep, result.StepsSucceeded, result.StepsAttempted)
	}
	if win.Get("window") != "open" {
		t.Fatalf("window = %q; the physical break-in chain did not complete", win.Get("window"))
	}
}

func TestAbstractPlanBlockedByDerivedMitigation(t *testing.T) {
	path := plan(t)
	p, exec, win := liveDeployment(t, true)
	time.Sleep(20 * time.Millisecond)

	result := exec.Execute(path)
	if result.Succeeded() {
		t.Fatalf("plan succeeded despite the mitigation (window=%q)", win.Get("window"))
	}
	if win.Get("window") == "open" {
		t.Fatal("window opened anyway")
	}
	if p.Env.Get(envsim.VarTemperature) > 27 {
		t.Errorf("room heated to %.1f despite blocked plug", p.Env.Get(envsim.VarTemperature))
	}
}
