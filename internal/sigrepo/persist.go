package sigrepo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// snapshotState is the on-disk form of a repository.
type snapshotState struct {
	NextID     int                        `json:"next_id"`
	Signatures []Signature                `json:"signatures"`
	Votes      map[string]map[string]bool `json:"votes"`
	Reputation map[string]float64         `json:"reputation"`
	// Seqs is the per-SKU cleared-event sequence head; Events the
	// bounded replay log. Persisting both means subscriber cursors
	// remain valid across repository restarts (the tentpole's
	// restart-from-snapshot requirement).
	Seqs   map[string]uint64         `json:"seqs,omitempty"`
	Events map[string][]clearedEvent `json:"events,omitempty"`
}

// ExportJSON writes the repository's full state (signatures including
// quarantine status and scores, votes, contributor reputations).
func (r *Repository) ExportJSON(w io.Writer) error {
	r.mu.Lock()
	state := snapshotState{
		NextID: r.nextID,
		Votes:  make(map[string]map[string]bool, len(r.votes)),
	}
	for _, s := range r.byID {
		state.Signatures = append(state.Signatures, *s)
	}
	for id, votes := range r.votes {
		if _, live := r.byID[id]; !live {
			continue
		}
		cp := make(map[string]bool, len(votes))
		for k, v := range votes {
			cp[k] = v
		}
		state.Votes[id] = cp
	}
	state.Seqs = make(map[string]uint64, len(r.seqs))
	for sku, seq := range r.seqs {
		state.Seqs[sku] = seq
	}
	state.Events = make(map[string][]clearedEvent, len(r.events))
	for sku, log := range r.events {
		state.Events[sku] = append([]clearedEvent(nil), log...)
	}
	r.mu.Unlock()

	r.rep.mu.Lock()
	state.Reputation = make(map[string]float64, len(r.rep.score))
	for k, v := range r.rep.score {
		state.Reputation[k] = v
	}
	r.rep.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(state)
}

// ImportJSON replaces the repository's state with a previously
// exported snapshot. Subscriptions are not part of the state (they
// belong to live connections).
func (r *Repository) ImportJSON(rd io.Reader) error {
	var state snapshotState
	if err := json.NewDecoder(rd).Decode(&state); err != nil {
		return fmt.Errorf("sigrepo: import: %w", err)
	}
	r.mu.Lock()
	r.nextID = state.NextID
	r.bySKU = make(map[string][]*Signature)
	r.byID = make(map[string]*Signature)
	r.votes = make(map[string]map[string]bool)
	r.dedup = make(map[string]string)
	for i := range state.Signatures {
		s := state.Signatures[i]
		cp := s
		r.byID[s.ID] = &cp
		r.bySKU[s.SKU] = append(r.bySKU[s.SKU], &cp)
		r.contrib[s.Contributor] = true
		// Rebuild the idempotent-republish index: only live rows are in
		// the snapshot, so every one indexes.
		r.dedup[dedupKey(s.Contributor, s.SKU, s.Rule)] = s.ID
	}
	for id, votes := range state.Votes {
		if _, live := r.byID[id]; !live {
			continue
		}
		cp := make(map[string]bool, len(votes))
		for k, v := range votes {
			cp[k] = v
		}
		r.votes[id] = cp
	}
	// Signatures without recorded votes still need a vote map.
	for id := range r.byID {
		if r.votes[id] == nil {
			r.votes[id] = make(map[string]bool)
		}
	}
	// Restore (or, for pre-cursor snapshots, rebuild) the cleared-event
	// sequences and replay log.
	r.seqs = make(map[string]uint64, len(state.Seqs))
	for sku, seq := range state.Seqs {
		r.seqs[sku] = seq
	}
	r.events = make(map[string][]clearedEvent, len(state.Events))
	for sku, log := range state.Events {
		r.events[sku] = append([]clearedEvent(nil), log...)
	}
	// Legacy upgrade: snapshots written before cursors existed carry
	// cleared signatures with ClearSeq 0 and no Seqs/Events. Assign
	// sequences in submission order so replays are deterministic, and
	// floor each SKU head at its highest recorded ClearSeq.
	for sku, sigs := range r.bySKU {
		var unseq []*Signature
		for _, s := range sigs {
			if s.Quarantined {
				continue
			}
			if s.ClearSeq > r.seqs[sku] {
				r.seqs[sku] = s.ClearSeq
			}
			if s.ClearSeq == 0 {
				unseq = append(unseq, s)
			}
		}
		sort.Slice(unseq, func(i, j int) bool { return unseq[i].Submitted.Before(unseq[j].Submitted) })
		for _, s := range unseq {
			r.seqs[sku]++
			s.ClearSeq = r.seqs[sku]
		}
		if len(r.events[sku]) == 0 {
			// Rebuild the replay log from the cleared set.
			var cleared []*Signature
			for _, s := range sigs {
				if !s.Quarantined && s.ClearSeq > 0 {
					cleared = append(cleared, s)
				}
			}
			sort.Slice(cleared, func(i, j int) bool { return cleared[i].ClearSeq < cleared[j].ClearSeq })
			log := make([]clearedEvent, 0, len(cleared))
			for _, s := range cleared {
				log = append(log, clearedEvent{Seq: s.ClearSeq, SigID: s.ID})
			}
			if bound := r.eventLogCap(); len(log) > bound {
				log = log[len(log)-bound:]
			}
			if len(log) > 0 {
				r.events[sku] = log
			}
		}
	}
	r.mu.Unlock()

	r.rep.mu.Lock()
	r.rep.score = make(map[string]float64, len(state.Reputation))
	for k, v := range state.Reputation {
		r.rep.score[k] = v
	}
	r.rep.mu.Unlock()
	return nil
}

// SaveFile / LoadFile are path conveniences for the daemon.
func (r *Repository) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.ExportJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores state from a snapshot file.
func (r *Repository) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.ImportJSON(f)
}
