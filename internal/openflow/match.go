// Package openflow implements an OpenFlow-1.0-inspired southbound
// interface: a match→action flow-rule model, priority-ordered flow
// tables with idle/hard timeouts, and a compact binary wire protocol a
// controller uses to program remote switches (FLOW_MOD), receive
// unmatched traffic (PACKET_IN) and inject packets (PACKET_OUT).
//
// The paper's IoTSec controller (§5.1) programs per-device tunnels and
// µmbox steering through exactly this interface.
package openflow

import (
	"fmt"
	"strings"

	"iotsec/internal/packet"
)

// Wildcard bits: a set bit means the corresponding field is ignored.
const (
	WInPort uint32 = 1 << iota
	WEthSrc
	WEthDst
	WEtherType
	WSrcIP
	WDstIP
	WProto
	WTpSrc
	WTpDst

	// WAll wildcards every field (match everything).
	WAll = WInPort | WEthSrc | WEthDst | WEtherType | WSrcIP | WDstIP | WProto | WTpSrc | WTpDst
)

// Match is a packet classifier over L1–L4 header fields. Fields whose
// wildcard bit is set are ignored. IPv4 prefixes match on SrcMask /
// DstMask leading bits (32 = exact).
type Match struct {
	Wildcards uint32
	InPort    uint16
	EthSrc    packet.MACAddress
	EthDst    packet.MACAddress
	EtherType packet.EtherType
	SrcIP     packet.IPv4Address
	DstIP     packet.IPv4Address
	SrcMask   uint8
	DstMask   uint8
	Proto     packet.IPProtocol
	TpSrc     uint16
	TpDst     uint16
}

// MatchAll matches every packet.
func MatchAll() Match { return Match{Wildcards: WAll, SrcMask: 32, DstMask: 32} }

// MatchDevice matches all IPv4 traffic to or from nothing in
// particular; callers narrow it with the With* helpers.
func MatchIPv4() Match {
	m := MatchAll()
	m.Wildcards &^= WEtherType
	m.EtherType = packet.EtherTypeIPv4
	return m
}

// WithInPort narrows the match to one ingress port.
func (m Match) WithInPort(p uint16) Match {
	m.Wildcards &^= WInPort
	m.InPort = p
	return m
}

// WithEthSrc narrows the match to one source MAC.
func (m Match) WithEthSrc(mac packet.MACAddress) Match {
	m.Wildcards &^= WEthSrc
	m.EthSrc = mac
	return m
}

// WithEthDst narrows the match to one destination MAC.
func (m Match) WithEthDst(mac packet.MACAddress) Match {
	m.Wildcards &^= WEthDst
	m.EthDst = mac
	return m
}

// WithSrcIP narrows the match to an IPv4 source prefix.
func (m Match) WithSrcIP(ip packet.IPv4Address, prefixLen uint8) Match {
	m.Wildcards &^= WSrcIP | WEtherType
	m.EtherType = packet.EtherTypeIPv4
	m.SrcIP, m.SrcMask = ip, prefixLen
	return m
}

// WithDstIP narrows the match to an IPv4 destination prefix.
func (m Match) WithDstIP(ip packet.IPv4Address, prefixLen uint8) Match {
	m.Wildcards &^= WDstIP | WEtherType
	m.EtherType = packet.EtherTypeIPv4
	m.DstIP, m.DstMask = ip, prefixLen
	return m
}

// WithProto narrows the match to one IP protocol.
func (m Match) WithProto(p packet.IPProtocol) Match {
	m.Wildcards &^= WProto | WEtherType
	m.EtherType = packet.EtherTypeIPv4
	m.Proto = p
	return m
}

// WithTpSrc narrows the match to one transport source port.
func (m Match) WithTpSrc(p uint16) Match {
	m.Wildcards &^= WTpSrc
	m.TpSrc = p
	return m
}

// WithTpDst narrows the match to one transport destination port.
func (m Match) WithTpDst(p uint16) Match {
	m.Wildcards &^= WTpDst
	m.TpDst = p
	return m
}

// prefixMatches reports whether addr falls within want/maskLen.
func prefixMatches(want, addr packet.IPv4Address, maskLen uint8) bool {
	if maskLen >= 32 {
		return want == addr
	}
	if maskLen == 0 {
		return true
	}
	w := uint32(want[0])<<24 | uint32(want[1])<<16 | uint32(want[2])<<8 | uint32(want[3])
	a := uint32(addr[0])<<24 | uint32(addr[1])<<16 | uint32(addr[2])<<8 | uint32(addr[3])
	mask := ^uint32(0) << (32 - maskLen)
	return w&mask == a&mask
}

// Matches reports whether the decoded packet arriving on inPort
// satisfies this match.
func (m Match) Matches(p *packet.Packet, inPort uint16) bool {
	if m.Wildcards&WInPort == 0 && m.InPort != inPort {
		return false
	}
	eth := p.Ethernet()
	if m.Wildcards&WEthSrc == 0 && (eth == nil || eth.SrcMAC != m.EthSrc) {
		return false
	}
	if m.Wildcards&WEthDst == 0 && (eth == nil || eth.DstMAC != m.EthDst) {
		return false
	}
	if m.Wildcards&WEtherType == 0 && (eth == nil || eth.EtherType != m.EtherType) {
		return false
	}
	ip := p.IPv4()
	if m.Wildcards&WSrcIP == 0 && (ip == nil || !prefixMatches(m.SrcIP, ip.SrcIP, m.SrcMask)) {
		return false
	}
	if m.Wildcards&WDstIP == 0 && (ip == nil || !prefixMatches(m.DstIP, ip.DstIP, m.DstMask)) {
		return false
	}
	if m.Wildcards&WProto == 0 && (ip == nil || ip.Protocol != m.Proto) {
		return false
	}
	if m.Wildcards&(WTpSrc|WTpDst) != WTpSrc|WTpDst {
		var src, dst uint16
		var ok bool
		if t := p.TCP(); t != nil {
			src, dst, ok = t.SrcPort, t.DstPort, true
		} else if u := p.UDP(); u != nil {
			src, dst, ok = u.SrcPort, u.DstPort, true
		}
		if m.Wildcards&WTpSrc == 0 && (!ok || src != m.TpSrc) {
			return false
		}
		if m.Wildcards&WTpDst == 0 && (!ok || dst != m.TpDst) {
			return false
		}
	}
	return true
}

// String renders the concrete (non-wildcarded) fields.
func (m Match) String() string {
	if m.Wildcards == WAll {
		return "any"
	}
	var parts []string
	if m.Wildcards&WInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.Wildcards&WEthSrc == 0 {
		parts = append(parts, "eth_src="+m.EthSrc.String())
	}
	if m.Wildcards&WEthDst == 0 {
		parts = append(parts, "eth_dst="+m.EthDst.String())
	}
	if m.Wildcards&WEtherType == 0 {
		parts = append(parts, "eth_type="+m.EtherType.String())
	}
	if m.Wildcards&WSrcIP == 0 {
		parts = append(parts, fmt.Sprintf("src=%s/%d", m.SrcIP, m.SrcMask))
	}
	if m.Wildcards&WDstIP == 0 {
		parts = append(parts, fmt.Sprintf("dst=%s/%d", m.DstIP, m.DstMask))
	}
	if m.Wildcards&WProto == 0 {
		parts = append(parts, "proto="+m.Proto.String())
	}
	if m.Wildcards&WTpSrc == 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TpSrc))
	}
	if m.Wildcards&WTpDst == 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TpDst))
	}
	return strings.Join(parts, ",")
}
