package learn

import (
	"fmt"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/envsim"
)

// Testbed is the deeply instrumented setup §4.2 proposes for building
// empirical device models: one live emulated device, the environment
// it acts on, and credentials good enough to actuate it.
type Testbed struct {
	// Client reaches the device over the fabric.
	Client *device.Client
	// Device is the unit under instrumentation.
	Device *device.Device
	// Env is the physical world; the extractor steps it to observe
	// effects.
	Env *envsim.Environment
	// Disc maps environment variables to the discrete levels the
	// abstract model uses.
	Disc *envsim.Discretizer
	// StateKey is the device state field that defines the FSM state
	// (e.g. "power" for a plug, "window" for an actuator).
	StateKey string
	// User/Pass authenticate actuation commands.
	User, Pass string
	// SettleTicks is how many environment steps to run after each
	// actuation before observing (default 3).
	SettleTicks int
}

// ExtractModel actuates the device through the candidate commands,
// observing state transitions and environment effects, and
// synthesizes an abstract Model — automating the model-library
// population the paper leaves as future work.
//
// The extractor sweeps the command list repeatedly until a sweep
// discovers nothing new, so toggle-style devices get both directions
// of every transition.
func ExtractModel(tb *Testbed, class string, commands []string) (*Model, error) {
	if tb.SettleTicks <= 0 {
		tb.SettleTicks = 3
	}
	settle := func() {
		for i := 0; i < tb.SettleTicks; i++ {
			tb.Env.Step()
		}
	}
	// Baseline: the environment with the device in its initial
	// state. Effects are observed as deviations from this baseline.
	settle()
	baseline := tb.Disc.Discretize(tb.Env.Snapshot())
	initial := tb.Device.Get(tb.StateKey)

	m := &Model{
		Class:       class,
		Initial:     initial,
		Transitions: make(map[string]map[string]string),
		Effects:     make(map[string][]Effect),
	}
	states := map[string]bool{initial: true}
	effectSeen := map[string]map[string]string{} // state → var → level

	recordEffects := func(state string) {
		now := tb.Disc.Discretize(tb.Env.Snapshot())
		for varName, level := range now {
			if baseline[varName] != level {
				if effectSeen[state] == nil {
					effectSeen[state] = map[string]string{}
				}
				effectSeen[state][varName] = level
			}
		}
	}

	const maxSweeps = 8
	for sweep := 0; sweep < maxSweeps; sweep++ {
		discovered := false
		for _, cmd := range commands {
			from := tb.Device.Get(tb.StateKey)
			resp, err := tb.Client.Call(tb.Device.IP(), device.Request{
				Cmd: cmd, User: tb.User, Pass: tb.Pass,
			})
			if err != nil {
				return nil, fmt.Errorf("learn: extracting %s/%s: %w", class, cmd, err)
			}
			if !resp.OK {
				continue // command not applicable; skip
			}
			settle()
			to := tb.Device.Get(tb.StateKey)
			if !states[to] {
				states[to] = true
				discovered = true
			}
			if m.Transitions[cmd] == nil {
				m.Transitions[cmd] = make(map[string]string)
			}
			if prev, ok := m.Transitions[cmd][from]; !ok || prev != to {
				if !ok {
					discovered = true
				}
				m.Transitions[cmd][from] = to
			}
			recordEffects(to)
		}
		if !discovered {
			break
		}
	}

	for s := range states {
		m.States = append(m.States, s)
	}
	for state, vars := range effectSeen {
		for varName, level := range vars {
			m.Effects[state] = append(m.Effects[state], Effect{Var: varName, Level: level})
		}
	}
	// Drain in-flight device events before the caller reuses the
	// fabric: an explicit quiescence barrier, not a guessed sleep.
	if tb.Client != nil && tb.Client.Stack != nil {
		if n := tb.Client.Stack.Network(); n != nil {
			n.Quiesce(time.Second)
		}
	}
	return m, m.Validate()
}
