package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/packet"
)

// StreamHandler accepts an inbound stream on a listening port. It runs
// on its own goroutine.
type StreamHandler func(st *Stream)

// streamState tracks the connection lifecycle.
type streamState int32

const (
	stateSynSent streamState = iota
	stateSynReceived
	stateEstablished
	stateClosed
)

// isn seeds initial sequence numbers; a process-wide counter keeps
// them unique and deterministic.
var isn atomic.Uint32

// Stream is a reliable, ordered, message-oriented connection between
// two stacks (a simplified TCP: each Send is one segment, acknowledged
// and retransmitted as a unit).
type Stream struct {
	stack *Stack
	key   connKey

	state atomic.Int32

	mu        sync.Mutex
	sendSeq   uint32 // next sequence number to use for outgoing data
	recvNext  uint32 // next expected incoming sequence number
	ackWaiter map[uint32]chan struct{}
	oooBuf    map[uint32][]byte // out-of-order segments

	handlerMu     sync.Mutex
	onMessage     func([]byte)
	onClose       func(error)
	closeNotified bool
	handlerReady  chan struct{}
	readyOnce     sync.Once

	// dispatch preserves per-stream message order while keeping
	// handlers off the stack's port goroutine.
	dispatch chan []byte

	established chan struct{}
	closeOnce   sync.Once
	closeErr    error
	done        chan struct{}
}

func newStream(st *Stack, key connKey, state streamState, sendSeq, recvNext uint32) *Stream {
	s := &Stream{
		stack:        st,
		key:          key,
		sendSeq:      sendSeq,
		recvNext:     recvNext,
		ackWaiter:    make(map[uint32]chan struct{}),
		oooBuf:       make(map[uint32][]byte),
		dispatch:     make(chan []byte, 64),
		handlerReady: make(chan struct{}),
		established:  make(chan struct{}),
		done:         make(chan struct{}),
	}
	s.state.Store(int32(state))
	go s.dispatchLoop()
	return s
}

// dispatchLoop delivers received messages to the handler in order,
// waiting for a handler to be registered before consuming the first
// message so early traffic is never lost.
func (s *Stream) dispatchLoop() {
	select {
	case <-s.handlerReady:
	case <-s.done:
		return
	}
	for {
		select {
		case msg := <-s.dispatch:
			s.handlerMu.Lock()
			h := s.onMessage
			s.handlerMu.Unlock()
			if h != nil {
				h(msg)
			}
		case <-s.done:
			// Drain anything already queued, then exit.
			for {
				select {
				case msg := <-s.dispatch:
					s.handlerMu.Lock()
					h := s.onMessage
					s.handlerMu.Unlock()
					if h != nil {
						h(msg)
					}
				default:
					return
				}
			}
		}
	}
}

// OnMessage registers the receive callback. Messages arriving before
// registration are queued (up to the dispatch buffer) and delivered
// in order once registered.
func (s *Stream) OnMessage(h func([]byte)) {
	s.handlerMu.Lock()
	s.onMessage = h
	s.handlerMu.Unlock()
	s.readyOnce.Do(func() { close(s.handlerReady) })
}

// OnClose registers a teardown callback invoked once with the close
// reason (nil for graceful FIN). If the stream is already closed, the
// callback fires immediately.
func (s *Stream) OnClose(h func(error)) {
	s.handlerMu.Lock()
	defer s.handlerMu.Unlock()
	s.onClose = h
	select {
	case <-s.done:
		if !s.closeNotified {
			s.closeNotified = true
			go h(s.closeErr)
		}
	default:
	}
}

// RemoteIP returns the peer's address.
func (s *Stream) RemoteIP() packet.IPv4Address { return s.key.remoteIP }

// RemotePort returns the peer's port.
func (s *Stream) RemotePort() uint16 { return s.key.remotePort }

// LocalPort returns the local port.
func (s *Stream) LocalPort() uint16 { return s.key.localPort }

// Send transmits one message reliably, blocking until the peer
// acknowledges it or retransmissions are exhausted.
func (s *Stream) Send(msg []byte) error {
	if streamState(s.state.Load()) != stateEstablished {
		return ErrClosed
	}
	s.mu.Lock()
	seq := s.sendSeq
	s.sendSeq++
	ch := make(chan struct{})
	s.ackWaiter[seq+1] = ch
	s.mu.Unlock()

	payload := make([]byte, len(msg))
	copy(payload, msg)

	interval := s.stack.RetransmitInterval
	tries := s.stack.MaxRetransmits
	for attempt := 0; attempt <= tries; attempt++ {
		s.sendSegment(packet.TCPPsh|packet.TCPAck, seq, s.loadRecvNext(), payload)
		select {
		case <-ch:
			return nil
		case <-s.done:
			return s.closeReason()
		case <-time.After(interval):
		}
	}
	s.mu.Lock()
	delete(s.ackWaiter, seq+1)
	s.mu.Unlock()
	return fmt.Errorf("%w: message seq %d unacknowledged after %d attempts", ErrTimeout, seq, tries+1)
}

func (s *Stream) loadRecvNext() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recvNext
}

// Close performs a FIN teardown (best-effort) and releases resources.
func (s *Stream) Close() {
	if streamState(s.state.Load()) == stateEstablished {
		s.sendSegment(packet.TCPFin|packet.TCPAck, s.loadSendSeq(), s.loadRecvNext(), nil)
	}
	s.teardown(nil)
}

func (s *Stream) loadSendSeq() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sendSeq
}

// teardown closes the stream exactly once with the given reason.
func (s *Stream) teardown(reason error) {
	s.closeOnce.Do(func() {
		s.closeErr = reason
		s.state.Store(int32(stateClosed))
		close(s.done)
		s.stack.removeStream(s.key)
		s.handlerMu.Lock()
		h := s.onClose
		if h != nil && !s.closeNotified {
			s.closeNotified = true
		} else {
			h = nil
		}
		s.handlerMu.Unlock()
		if h != nil {
			go h(reason)
		}
	})
}

func (s *Stream) closeReason() error {
	if s.closeErr != nil {
		return s.closeErr
	}
	return ErrClosed
}

// sendSegment emits one TCP segment for this connection.
func (s *Stream) sendSegment(flags packet.TCPFlags, seq, ack uint32, payload []byte) {
	s.stack.sendTCPSegment(s.key.remoteIP, s.key.localPort, s.key.remotePort, flags, seq, ack, payload)
}

// --- Stack-side stream plumbing ---

// sendTCPSegment serializes and transmits one segment.
func (st *Stack) sendTCPSegment(dstIP packet.IPv4Address, srcPort, dstPort uint16, flags packet.TCPFlags, seq, ack uint32, payload []byte) {
	_ = st.resolveAndSend(dstIP, func(dstMAC packet.MACAddress) ([]byte, error) {
		tcp := &packet.TCP{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Ack: ack, Flags: flags}
		tcp.SetNetworkForChecksum(st.ip, dstIP)
		b := packet.NewSerializeBuffer()
		layers := []packet.SerializableLayer{
			&packet.Ethernet{SrcMAC: st.mac, DstMAC: dstMAC, EtherType: packet.EtherTypeIPv4},
			&packet.IPv4{SrcIP: st.ip, DstIP: dstIP, Protocol: packet.IPProtocolTCP},
			tcp,
		}
		if len(payload) > 0 {
			layers = append(layers, packet.NewPayload(payload))
		}
		if err := packet.SerializeLayers(b, layers...); err != nil {
			return nil, err
		}
		out := make([]byte, b.Len())
		copy(out, b.Bytes())
		return out, nil
	})
}

// Listen binds a stream handler to a local port.
func (st *Stack) Listen(port uint16, h StreamHandler) error {
	st.streamMu.Lock()
	defer st.streamMu.Unlock()
	if _, dup := st.listeners[port]; dup {
		return fmt.Errorf("%w: tcp/%d on %s", ErrPortInUse, port, st.name)
	}
	st.listeners[port] = h
	return nil
}

// Unlisten removes a listener.
func (st *Stack) Unlisten(port uint16) {
	st.streamMu.Lock()
	defer st.streamMu.Unlock()
	delete(st.listeners, port)
}

// Dial opens a stream to dstIP:dstPort, blocking until the handshake
// completes or timeout elapses.
func (st *Stack) Dial(dstIP packet.IPv4Address, dstPort uint16, timeout time.Duration) (*Stream, error) {
	localPort := st.allocPort()
	key := connKey{localPort: localPort, remoteIP: dstIP, remotePort: dstPort}
	seq := isn.Add(1000)
	s := newStream(st, key, stateSynSent, seq+1, 0)

	st.streamMu.Lock()
	if _, dup := st.conns[key]; dup {
		st.streamMu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrPortInUse, key)
	}
	st.conns[key] = s
	st.streamMu.Unlock()

	deadline := time.Now().Add(timeout)
	interval := st.RetransmitInterval
	for {
		st.sendTCPSegment(dstIP, localPort, dstPort, packet.TCPSyn, seq, 0, nil)
		select {
		case <-s.established:
			return s, nil
		case <-s.done:
			return nil, s.closeReason()
		case <-time.After(interval):
			if time.Now().After(deadline) {
				s.teardown(ErrTimeout)
				return nil, fmt.Errorf("%w: dialing %s:%d", ErrTimeout, dstIP, dstPort)
			}
		}
	}
}

// removeStream drops the connection from the demux table.
func (st *Stack) removeStream(key connKey) {
	st.streamMu.Lock()
	defer st.streamMu.Unlock()
	if cur, ok := st.conns[key]; ok && streamState(cur.state.Load()) == stateClosed {
		delete(st.conns, key)
	}
}

// handleTCP demultiplexes an inbound segment.
func (st *Stack) handleTCP(ip *packet.IPv4, tcp *packet.TCP) {
	key := connKey{localPort: tcp.DstPort, remoteIP: ip.SrcIP, remotePort: tcp.SrcPort}
	st.streamMu.Lock()
	s, exists := st.conns[key]
	st.streamMu.Unlock()

	if !exists {
		if tcp.Flags.Has(packet.TCPSyn) && !tcp.Flags.Has(packet.TCPAck) {
			st.acceptSyn(key, tcp)
			return
		}
		if !tcp.Flags.Has(packet.TCPRst) {
			// Nothing here: refuse.
			st.sendTCPSegment(ip.SrcIP, tcp.DstPort, tcp.SrcPort, packet.TCPRst, 0, tcp.Seq+1, nil)
		}
		return
	}
	s.handleSegment(tcp)
}

// acceptSyn creates the passive side of a connection if a listener is
// bound.
func (st *Stack) acceptSyn(key connKey, tcp *packet.TCP) {
	st.streamMu.Lock()
	h, listening := st.listeners[key.localPort]
	if !listening {
		st.streamMu.Unlock()
		st.sendTCPSegment(key.remoteIP, key.localPort, key.remotePort, packet.TCPRst, 0, tcp.Seq+1, nil)
		return
	}
	seq := isn.Add(1000)
	s := newStream(st, key, stateSynReceived, seq+1, tcp.Seq+1)
	st.conns[key] = s
	st.streamMu.Unlock()

	s.sendSegment(packet.TCPSyn|packet.TCPAck, seq, tcp.Seq+1, nil)
	// The handler runs once the three-way handshake completes; see
	// handleSegment's transition to established.
	go func() {
		select {
		case <-s.established:
			h(s)
		case <-s.done:
		}
	}()
}

// handleSegment advances the stream state machine. Runs on the stack's
// port goroutine; everything here is quick and non-blocking.
func (s *Stream) handleSegment(tcp *packet.TCP) {
	if tcp.Flags.Has(packet.TCPRst) {
		s.teardown(ErrReset)
		return
	}
	state := streamState(s.state.Load())
	switch state {
	case stateSynSent:
		if tcp.Flags.Has(packet.TCPSyn | packet.TCPAck) {
			s.mu.Lock()
			s.recvNext = tcp.Seq + 1
			s.mu.Unlock()
			s.state.Store(int32(stateEstablished))
			s.sendSegment(packet.TCPAck, s.loadSendSeq(), tcp.Seq+1, nil)
			close(s.established)
		}
	case stateSynReceived:
		if tcp.Flags.Has(packet.TCPAck) && !tcp.Flags.Has(packet.TCPSyn) {
			s.state.Store(int32(stateEstablished))
			close(s.established)
			// The ACK completing the handshake may already carry data.
			if len(tcp.LayerPayload()) > 0 {
				s.acceptData(tcp)
			}
		} else if tcp.Flags.Has(packet.TCPSyn) {
			// Retransmitted SYN: re-send SYN|ACK.
			s.sendSegment(packet.TCPSyn|packet.TCPAck, s.loadSendSeq()-1, tcp.Seq+1, nil)
		}
	case stateEstablished:
		if tcp.Flags.Has(packet.TCPFin) {
			s.sendSegment(packet.TCPAck, s.loadSendSeq(), tcp.Seq+1, nil)
			s.teardown(nil)
			return
		}
		if tcp.Flags.Has(packet.TCPAck) {
			// Cumulative ack: an ack for N confirms every message up
			// to N, so a lost intermediate ACK can't strand a waiter.
			s.mu.Lock()
			for want, ch := range s.ackWaiter {
				if !seqBefore(tcp.Ack, want) {
					close(ch)
					delete(s.ackWaiter, want)
				}
			}
			s.mu.Unlock()
		}
		if len(tcp.LayerPayload()) > 0 {
			s.acceptData(tcp)
		}
	case stateClosed:
		if !tcp.Flags.Has(packet.TCPRst) {
			s.sendSegment(packet.TCPRst, 0, tcp.Seq+1, nil)
		}
	}
}

// acceptData handles an in-order/out-of-order/duplicate data segment:
// exactly-once, in-order delivery to the dispatcher.
func (s *Stream) acceptData(tcp *packet.TCP) {
	payload := tcp.LayerPayload()
	s.mu.Lock()
	switch {
	case tcp.Seq == s.recvNext:
		s.deliverLocked(payload)
		// Drain any buffered successors.
		for {
			next, ok := s.oooBuf[s.recvNext]
			if !ok {
				break
			}
			delete(s.oooBuf, s.recvNext)
			s.deliverLocked(next)
		}
	case seqBefore(tcp.Seq, s.recvNext):
		// Duplicate: re-ack below, do not deliver again.
	default:
		// Future segment: buffer (bounded).
		if len(s.oooBuf) < 1024 {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			s.oooBuf[tcp.Seq] = cp
		}
	}
	ackNum := s.recvNext
	s.mu.Unlock()
	s.sendSegment(packet.TCPAck, s.loadSendSeq(), ackNum, nil)
}

// deliverLocked queues one message for ordered dispatch; caller holds
// s.mu.
func (s *Stream) deliverLocked(payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.recvNext++
	select {
	case s.dispatch <- cp:
	default:
		// Dispatcher overwhelmed: the message is acked but dropped
		// before the application handler — app-level loss under
		// extreme overload, the price of a bounded queue that can
		// never deadlock the port goroutine.
	}
}

// seqBefore reports a < b in sequence space (wraparound-aware).
func seqBefore(a, b uint32) bool { return int32(a-b) < 0 }
