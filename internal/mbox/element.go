// Package mbox implements the µmbox platform of §5.2: micro
// network-security functions built as Click-style element pipelines,
// deployed as bump-in-the-wire nodes on the simulated fabric, with a
// manager that models the rapid instantiation and live
// reconfiguration the paper argues micro-VMs enable.
package mbox

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/journal"
	"iotsec/internal/packet"
	"iotsec/internal/telemetry"
)

// Direction distinguishes which way a frame is crossing the µmbox.
type Direction int

// Traffic directions relative to the protected device.
const (
	// ToDevice flows from the network toward the protected device.
	ToDevice Direction = iota
	// FromDevice flows from the protected device outward.
	FromDevice
)

// Verdict is an element's decision about a frame.
type Verdict int

// Verdicts.
const (
	// Forward passes the (possibly rewritten) frame to the next
	// element.
	Forward Verdict = iota
	// Drop discards the frame.
	Drop
	// Consumed means the element handled the frame itself (e.g.,
	// responded on behalf of the device); nothing is forwarded.
	Consumed
)

// Context carries one frame through the pipeline. Elements may replace
// Frame (rewrites) — the decoded packet is refreshed between elements
// only if Reparse is set.
type Context struct {
	// Frame is the raw bytes; elements may replace it.
	Frame []byte
	// Packet is the decoded view of Frame on pipeline entry.
	Packet *packet.Packet
	// Dir is the traffic direction.
	Dir Direction
	// Reparse asks the pipeline to re-decode Frame before the next
	// element (set it after rewriting).
	Reparse bool
	// Inject sends an extra frame back out of the ingress side
	// (e.g., a forged rejection toward the client). May be nil in
	// unit tests.
	Inject func(frame []byte)
}

// Element is one packet-processing stage.
type Element interface {
	// Name identifies the element for stats and logs.
	Name() string
	// Process inspects (and may rewrite) the frame.
	Process(ctx *Context) Verdict
}

// elementStats counts one element's decisions.
type elementStats struct {
	processed atomic.Uint64
	dropped   atomic.Uint64
	consumed  atomic.Uint64
	panics    atomic.Uint64
}

// ElementStats is a snapshot of an element's counters.
type ElementStats struct {
	Name      string
	Processed uint64
	Dropped   uint64
	Consumed  uint64
	Panics    uint64
}

// FailMode selects what a pipeline does with the in-flight frame when
// an element panics on it: a panicking security function must never
// take the gateway down, so the pipeline recovers and applies one of
// the paper's two degradation stances instead.
type FailMode int32

// Fail modes.
const (
	// FailClosed drops the frame (default: a broken security function
	// must not let traffic through uninspected).
	FailClosed FailMode = iota
	// FailStatic forwards the frame unmodified (availability-first:
	// keep the device usable while the element misbehaves).
	FailStatic
)

// String renders the mode.
func (m FailMode) String() string {
	if m == FailStatic {
		return "static"
	}
	return "closed"
}

// stage is one precomputed pipeline step: the element plus its
// per-instance counters and the pre-resolved telemetry vec children.
// Stages are built once per (re)configuration so the per-packet path
// is element dispatch plus straight atomic increments.
type stage struct {
	elem  Element
	stats *elementStats

	mProcessed *telemetry.Counter
	mDropped   *telemetry.Counter
	mConsumed  *telemetry.Counter
	mPanics    *telemetry.Counter
}

// Pipeline is an ordered element chain supporting live reconfiguration:
// the active chain lives behind an atomic pointer, so the forwarding
// path never takes a lock and reconfiguration is a single pointer swap
// (no packet is ever half-processed by a mixed chain).
type Pipeline struct {
	chain atomic.Pointer[[]stage]

	mu    sync.Mutex // guards stats map and chain rebuilds
	stats map[string]*elementStats

	reconfigs  atomic.Uint64
	instrument atomic.Bool
	failMode   atomic.Int32
}

// NewPipeline builds a pipeline from the given stages with telemetry
// instrumentation enabled.
func NewPipeline(elements ...Element) *Pipeline {
	p := &Pipeline{stats: make(map[string]*elementStats)}
	p.instrument.Store(true)
	p.mu.Lock()
	p.install(elements)
	p.mu.Unlock()
	return p
}

// Instrument toggles hot-path telemetry (element counters and latency
// sampling). On by default; benchmarks disable it to measure the bare
// pipeline.
func (p *Pipeline) Instrument(on bool) { p.instrument.Store(on) }

func (p *Pipeline) ensureStats(name string) *elementStats {
	if s, ok := p.stats[name]; ok {
		return s
	}
	s := &elementStats{}
	p.stats[name] = s
	return s
}

// install rebuilds and publishes the stage chain. Caller holds p.mu.
func (p *Pipeline) install(elements []Element) {
	chain := make([]stage, len(elements))
	for i, e := range elements {
		name := e.Name()
		chain[i] = stage{
			elem:       e,
			stats:      p.ensureStats(name),
			mProcessed: mElemProcessed.With(name),
			mDropped:   mElemDropped.With(name),
			mConsumed:  mElemConsumed.With(name),
			mPanics:    mElemPanics.With(name),
		}
	}
	p.chain.Store(&chain)
}

// Process runs the frame through the chain.
func (p *Pipeline) Process(ctx *Context) Verdict {
	chain := *p.chain.Load()
	instr := p.instrument.Load()
	var start time.Time
	sampled := false
	// Sampling piggybacks on the first stage's processed counter — a
	// plain load instead of one more contended RMW per packet. Under
	// concurrency several goroutines may observe the same value and
	// all sample; that only nudges the effective rate, which is fine
	// for a latency histogram.
	if instr && len(chain) > 0 && chain[0].stats.processed.Load()%latencySampleEvery == 0 {
		start = time.Now()
		sampled = true
	}
	verdict := Forward
	for i := range chain {
		st := &chain[i]
		if ctx.Reparse {
			ctx.Packet = packet.Decode(ctx.Frame, packet.LayerTypeEthernet)
			ctx.Reparse = false
		}
		v := p.runStage(st, ctx)
		st.stats.processed.Add(1)
		if instr {
			st.mProcessed.Inc()
		}
		switch v {
		case Drop:
			st.stats.dropped.Add(1)
			if instr {
				st.mDropped.Inc()
			}
		case Consumed:
			st.stats.consumed.Add(1)
			if instr {
				st.mConsumed.Inc()
			}
		}
		if v != Forward {
			verdict = v
			break
		}
	}
	if sampled {
		mPipelineSeconds.Observe(time.Since(start).Seconds())
	}
	return verdict
}

// runStage executes one element with fault containment: a panic in
// an element is recovered, counted (per element), journaled, and
// converted into the pipeline's fail-mode verdict — fail-closed drops
// the frame, fail-static forwards it — instead of unwinding the
// gateway's forwarding goroutine.
func (p *Pipeline) runStage(st *stage, ctx *Context) (v Verdict) {
	defer func() {
		if r := recover(); r != nil {
			st.stats.panics.Add(1)
			st.mPanics.Inc()
			mode := FailMode(p.failMode.Load())
			journal.RecordTrace(0, journal.TypeMboxPanic, journal.Critical, "",
				fmt.Sprintf("element %s panicked: %v (fail-%s applied)", st.elem.Name(), r, mode))
			if mode == FailStatic {
				v = Forward
			} else {
				v = Drop
			}
		}
	}()
	return st.elem.Process(ctx)
}

// SetFailMode selects the panic-containment stance (default
// FailClosed).
func (p *Pipeline) SetFailMode(m FailMode) { p.failMode.Store(int32(m)) }

// FailMode reports the panic-containment stance.
func (p *Pipeline) FailMode() FailMode { return FailMode(p.failMode.Load()) }

// Elements lists the current stage names in order.
func (p *Pipeline) Elements() []string {
	chain := *p.chain.Load()
	out := make([]string, len(chain))
	for i := range chain {
		out[i] = chain[i].elem.Name()
	}
	return out
}

// Replace atomically installs a new element chain (live
// reconfiguration: no packet is ever half-processed by a mixed chain).
func (p *Pipeline) Replace(elements ...Element) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.install(elements)
	p.reconfigs.Add(1)
}

// Insert adds an element at position i (clamped).
func (p *Pipeline) Insert(i int, e Element) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.chain.Load()
	if i < 0 {
		i = 0
	}
	if i > len(old) {
		i = len(old)
	}
	elements := make([]Element, 0, len(old)+1)
	for _, st := range old[:i] {
		elements = append(elements, st.elem)
	}
	elements = append(elements, e)
	for _, st := range old[i:] {
		elements = append(elements, st.elem)
	}
	p.install(elements)
	p.reconfigs.Add(1)
}

// Remove deletes the first element with the given name, reporting
// whether one was found.
func (p *Pipeline) Remove(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.chain.Load()
	for i := range old {
		if old[i].elem.Name() == name {
			elements := make([]Element, 0, len(old)-1)
			for j := range old {
				if j != i {
					elements = append(elements, old[j].elem)
				}
			}
			p.install(elements)
			p.reconfigs.Add(1)
			return true
		}
	}
	return false
}

// Reconfigs counts live reconfigurations.
func (p *Pipeline) Reconfigs() uint64 { return p.reconfigs.Load() }

// Stats snapshots all element counters.
func (p *Pipeline) Stats() []ElementStats {
	chain := *p.chain.Load()
	out := make([]ElementStats, 0, len(chain))
	for i := range chain {
		s := chain[i].stats
		out = append(out, ElementStats{
			Name:      chain[i].elem.Name(),
			Processed: s.processed.Load(),
			Dropped:   s.dropped.Load(),
			Consumed:  s.consumed.Load(),
			Panics:    s.panics.Load(),
		})
	}
	return out
}
