package controller

import (
	"fmt"
	"log"
	"sync"
	"time"

	"iotsec/internal/openflow"
	"iotsec/internal/packet"
	"iotsec/internal/telemetry"
)

// SteeredDevice describes one protected device on a steered switch:
// where the device hangs and where its µmbox's two legs connect.
type SteeredDevice struct {
	Name string
	MAC  packet.MACAddress
	// DevicePort is the switch port the device connects to.
	DevicePort uint16
	// MboxNorthPort / MboxSouthPort are the switch ports wired to the
	// µmbox's network-side and device-side legs.
	MboxNorthPort uint16
	MboxSouthPort uint16
}

// Steering is the Figure 2 tunnel fabric: an SDN application that
// programs switches (over the real southbound protocol) so every
// frame to or from a protected device traverses its µmbox, while
// plain hosts talk directly.
//
// Per protected device D with ports (P_dev, A=north, B=south):
//
//	prio 220: in_port=B            -> output P_dev   (processed, toward device)
//	prio 220: in_port=P_dev        -> output B       (device-origin, into µmbox)
//	prio 200: in_port=A            -> output {host ports}  (processed, outward)
//	prio 150: eth_dst=D.MAC        -> output A       (device-bound, into µmbox)
//	prio  50: (default)            -> output {host ports} + {A for broadcast}
type Steering struct {
	mu      sync.Mutex
	devices []SteeredDevice
	// pending switches connect before AddDevice in some orders; we
	// reprogram on every change.
	endpoint *openflow.ControllerEndpoint
	switches map[uint64][]uint16 // dpid → ports
	logger   *log.Logger
}

// NewSteering builds the application and its southbound endpoint.
// Call Listen, point switch agents at the address, then AddDevice.
func NewSteering(logger *log.Logger) *Steering {
	if logger == nil {
		logger = log.New(discardWriter{}, "", 0)
	}
	s := &Steering{switches: make(map[uint64][]uint16), logger: logger}
	s.endpoint = openflow.NewControllerEndpoint(s, logger)
	return s
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// Listen starts the southbound listener, returning the bound address.
func (s *Steering) Listen(addr string) (string, error) {
	return s.endpoint.Listen(addr)
}

// Close tears down the southbound endpoint.
func (s *Steering) Close() error { return s.endpoint.Close() }

// Endpoint exposes the raw southbound endpoint (for stats requests in
// experiments).
func (s *Steering) Endpoint() *openflow.ControllerEndpoint { return s.endpoint }

// AddDevice registers a protected device and reprograms all connected
// switches.
func (s *Steering) AddDevice(d SteeredDevice) {
	s.mu.Lock()
	s.devices = append(s.devices, d)
	dpids := make([]uint64, 0, len(s.switches))
	for dpid := range s.switches {
		dpids = append(dpids, dpid)
	}
	s.mu.Unlock()
	for _, dpid := range dpids {
		s.program(dpid)
	}
}

// SwitchConnected implements openflow.SwitchHandler. Programming is
// asynchronous: this callback runs on the switch's receive goroutine,
// which must stay free to deliver the barrier replies program waits
// for.
func (s *Steering) SwitchConnected(dpid uint64, ports []uint16) {
	s.mu.Lock()
	s.switches[dpid] = ports
	s.mu.Unlock()
	go s.program(dpid)
}

// SwitchDisconnected implements openflow.SwitchHandler.
func (s *Steering) SwitchDisconnected(dpid uint64) {
	s.mu.Lock()
	delete(s.switches, dpid)
	s.mu.Unlock()
}

// HandlePacketIn implements openflow.SwitchHandler: with proactive
// rules installed nothing should punt; log for diagnosis.
func (s *Steering) HandlePacketIn(pi *openflow.PacketIn) {
	s.logger.Printf("steering: unexpected packet-in from dpid %d port %d (%d bytes)",
		pi.DatapathID, pi.InPort, len(pi.Data))
}

// HandleFlowRemoved implements openflow.SwitchHandler.
func (s *Steering) HandleFlowRemoved(fr *openflow.FlowRemoved) {}

// hostPorts lists switch ports that belong to neither devices nor
// µmbox legs.
func hostPorts(ports []uint16, devices []SteeredDevice) []uint16 {
	special := map[uint16]bool{}
	for _, d := range devices {
		special[d.DevicePort] = true
		special[d.MboxNorthPort] = true
		special[d.MboxSouthPort] = true
	}
	var hosts []uint16
	for _, p := range ports {
		if !special[p] {
			hosts = append(hosts, p)
		}
	}
	return hosts
}

// program pushes the full steering rule set to one switch, fencing
// with a barrier so enforcement is in place before program returns.
func (s *Steering) program(dpid uint64) {
	s.mu.Lock()
	ports := s.switches[dpid]
	devices := append([]SteeredDevice(nil), s.devices...)
	s.mu.Unlock()
	if ports == nil {
		return
	}
	defer telemetry.Time(mProgramSeconds)()
	hosts := hostPorts(ports, devices)

	send := func(fm *openflow.FlowMod) {
		mFlowMods.Inc()
		if err := s.endpoint.SendFlowMod(dpid, fm); err != nil {
			s.logger.Printf("steering: flow-mod to %d: %v", dpid, err)
		}
	}
	// Start from a clean table.
	send(&openflow.FlowMod{Command: openflow.FlowDelete, Match: openflow.MatchAll()})

	outputsTo := func(ports []uint16) []openflow.Action {
		acts := make([]openflow.Action, len(ports))
		for i, p := range ports {
			acts[i] = openflow.Output(p)
		}
		return acts
	}

	for _, d := range devices {
		// Processed traffic exiting the µmbox toward the device.
		send(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithInPort(d.MboxSouthPort),
			Priority: 220,
			Actions:  []openflow.Action{openflow.Output(d.DevicePort)},
			Cookie:   dpid,
		})
		// Device-origin traffic enters the µmbox south leg.
		send(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithInPort(d.DevicePort),
			Priority: 220,
			Actions:  []openflow.Action{openflow.Output(d.MboxSouthPort)},
			Cookie:   dpid,
		})
		// Processed device-origin traffic exits toward the hosts and
		// toward other protected devices' tunnels (device-to-device
		// traffic crosses both µmboxes).
		northActions := outputsTo(hosts)
		for _, other := range devices {
			if other.Name != d.Name {
				northActions = append(northActions, openflow.Output(other.MboxNorthPort))
			}
		}
		send(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithInPort(d.MboxNorthPort),
			Priority: 200,
			Actions:  northActions,
			Cookie:   dpid,
		})
		// Device-bound traffic detours into the µmbox north leg.
		send(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    openflow.MatchAll().WithEthDst(d.MAC),
			Priority: 150,
			Actions:  []openflow.Action{openflow.Output(d.MboxNorthPort)},
			Cookie:   dpid,
		})
	}

	// Default: host-to-host plus broadcast reach into every µmbox
	// north leg (so ARP finds the devices through their tunnels).
	var defaults []openflow.Action
	defaults = append(defaults, outputsTo(hosts)...)
	for _, d := range devices {
		defaults = append(defaults, openflow.Output(d.MboxNorthPort))
	}
	send(&openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    openflow.MatchAll(),
		Priority: 50,
		Actions:  defaults,
		Cookie:   dpid,
	})

	if err := s.endpoint.Barrier(dpid, 2*time.Second); err != nil {
		s.logger.Printf("steering: barrier to %d: %v", dpid, err)
	}
}

// String summarizes the steering state.
func (s *Steering) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("steering: %d devices, %d switches", len(s.devices), len(s.switches))
}
