package attack

import (
	"testing"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/netsim"
	"iotsec/internal/packet"
)

// lab wires devices and an attacker onto one flooding switch.
type lab struct {
	net      *netsim.Network
	sw       *netsim.Switch
	attacker *Attacker
	nextPort uint16
	t        *testing.T
}

func newLab(t *testing.T) *lab {
	l := &lab{
		net:      netsim.NewNetwork(),
		sw:       netsim.NewSwitch("sw", 1),
		nextPort: 1,
		t:        t,
	}
	l.sw.SetMissBehavior(netsim.MissFlood)
	ip := packet.MustParseIPv4("10.0.0.66")
	st := netsim.NewStack("attacker", device.MACFor(ip), ip)
	l.connect(st.Attach(l.net))
	l.attacker = NewAttacker(st)
	t.Cleanup(func() {
		st.Stop()
		l.net.Stop()
	})
	return l
}

func (l *lab) connect(p *netsim.Port) {
	sp := l.sw.AttachPort(l.net, l.nextPort)
	l.nextPort++
	l.net.Connect(p, sp, netsim.LinkOptions{})
}

func (l *lab) add(d *device.Device) {
	p, err := d.Attach(l.net)
	if err != nil {
		l.t.Fatal(err)
	}
	l.connect(p)
	l.t.Cleanup(d.Stop)
}

func TestDefaultCredentialAttack(t *testing.T) {
	l := newLab(t)
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	l.add(cam.Device)
	l.net.Start()

	r := l.attacker.TryDefaultCredentials(cam.IP(), "SNAPSHOT")
	if !r.Success {
		t.Errorf("default-credential attack failed on vulnerable camera: %+v", r)
	}
	// Against a hardened device it fails.
	lock := device.NewSmartLock("lock", packet.MustParseIPv4("10.0.0.11"), "owner", "X9!longrandom")
	l.add(lock.Device)
	r = l.attacker.TryDefaultCredentials(lock.IP(), "UNLOCK")
	if r.Success {
		t.Errorf("default creds worked on hardened lock: %+v", r)
	}
}

func TestOpenAccessAndBackdoorAttacks(t *testing.T) {
	l := newLab(t)
	tl := device.NewTrafficLight("tl", packet.MustParseIPv4("10.0.0.12"))
	plug := device.NewSmartPlug("plug", packet.MustParseIPv4("10.0.0.13"), device.Appliance{Name: "x"})
	l.add(tl.Device)
	l.add(plug.Device)
	l.net.Start()

	if r := l.attacker.TryOpenAccess(tl.IP(), "SET", "green"); !r.Success {
		t.Errorf("open access failed: %+v", r)
	}
	if r := l.attacker.TryBackdoor(plug.IP(), "ON", device.PlugBackdoorToken); !r.Success {
		t.Errorf("backdoor failed: %+v", r)
	}
	if r := l.attacker.TryBackdoor(plug.IP(), "ON", "wrong-token"); r.Success {
		t.Errorf("wrong token succeeded: %+v", r)
	}
}

func TestFirmwareKeyExtractionAndReplay(t *testing.T) {
	l := newLab(t)
	const key = "rsa-SHARED-1"
	c1 := device.NewCCTV("cctv1", packet.MustParseIPv4("10.0.0.20"), key)
	c2 := device.NewCCTV("cctv2", packet.MustParseIPv4("10.0.0.21"), key)
	l.add(c1.Device)
	l.add(c2.Device)
	l.net.Start()

	r, got := l.attacker.ExtractFirmwareKey(c1.IP())
	if !r.Success || got != key {
		t.Fatalf("extraction = %+v key=%q", r, got)
	}
	if r := l.attacker.ReplayKey(c2.IP(), got); !r.Success {
		t.Errorf("replay on sibling failed: %+v", r)
	}
}

func TestPINBruteForce(t *testing.T) {
	l := newLab(t)
	win := device.NewWindowActuator("win", packet.MustParseIPv4("10.0.0.22"))
	l.add(win.Device)
	l.net.Start()

	r := l.attacker.BruteForcePIN(win.IP(), "OPEN", "admin", 50)
	if !r.Success {
		t.Errorf("brute force failed (PIN is %s): %+v", device.WindowPassword, r)
	}
	if win.Get("window") != "open" {
		t.Error("window not opened")
	}
}

func TestDNSAmplificationAttack(t *testing.T) {
	l := newLab(t)
	plug := device.NewSmartPlug("plug", packet.MustParseIPv4("10.0.0.30"), device.Appliance{Name: "x"})
	l.add(plug.Device)
	if err := plug.StartDNSResolver(20); err != nil {
		t.Fatal(err)
	}

	victimIP := packet.MustParseIPv4("10.0.0.99")
	victimStack := netsim.NewStack("victim", device.MACFor(victimIP), victimIP)
	l.connect(victimStack.Attach(l.net))
	t.Cleanup(victimStack.Stop)
	victim, err := NewVictim(victimStack, 7777)
	if err != nil {
		t.Fatal(err)
	}
	l.net.Start()

	res, err := AmplifyDNS(l.attacker.Stack, plug.IP(), victimIP, 7777, 50)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	res.Finalize(victim)
	if res.ReflectedFrames == 0 {
		t.Fatal("no reflected traffic reached the victim")
	}
	if res.Factor < 5 {
		t.Errorf("amplification factor = %.1f, want substantial", res.Factor)
	}
}
