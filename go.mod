module iotsec

go 1.22
