package ids

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// AnomalyKind classifies a behavioral deviation.
type AnomalyKind string

// Anomaly kinds.
const (
	AnomalyRate       AnomalyKind = "rate"       // traffic rate above baseline
	AnomalyNewPeer    AnomalyKind = "new-peer"   // talking to an unseen endpoint
	AnomalyNewPort    AnomalyKind = "new-port"   // using an unseen service port
	AnomalyTransition AnomalyKind = "transition" // improbable command sequence
	AnomalyContext    AnomalyKind = "context"    // action disallowed in current context
	AnomalyProfile    AnomalyKind = "profile"    // traffic outside the enforced SKU profile
)

// Anomaly is one detected deviation from a device's learned profile.
type Anomaly struct {
	Device string
	Kind   AnomalyKind
	Detail string
	Score  float64 // higher = more anomalous
	When   time.Time
}

// Profile is a per-device behavioral baseline learned during a
// training window and enforced afterwards — the paper's "normal
// profile" (§4). It tracks message rate, peer set, port set, and a
// first-order Markov model over management commands.
type Profile struct {
	Device string

	mu       sync.Mutex
	training bool

	// rate baseline
	windowStart time.Time
	windowCount int
	baselineEMA float64 // messages/second, exponential moving average
	rateSamples int

	peers map[string]bool
	ports map[uint16]bool

	// Markov transitions: counts[prev][next]
	lastCmd string
	counts  map[string]map[string]int
	totals  map[string]int

	// RateFactor flags rates above factor×baseline (default 4).
	RateFactor float64
	// MinTransitionProb flags transitions rarer than this (default
	// 0.02) once enough evidence exists.
	MinTransitionProb float64
	// MinEvidence is the per-prev-command observation count before
	// transition anomalies are reported (default 20).
	MinEvidence int
}

// NewProfile creates a profile in training mode.
func NewProfile(deviceName string) *Profile {
	return &Profile{
		Device:            deviceName,
		training:          true,
		peers:             make(map[string]bool),
		ports:             make(map[uint16]bool),
		counts:            make(map[string]map[string]int),
		totals:            make(map[string]int),
		RateFactor:        4,
		MinTransitionProb: 0.02,
		MinEvidence:       20,
	}
}

// EndTraining freezes the baseline; subsequent observations are
// checked instead of learned.
func (p *Profile) EndTraining() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.training = false
	p.closeRateWindowLocked(time.Now())
}

// Training reports the profile's mode.
func (p *Profile) Training() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.training
}

// closeRateWindowLocked folds the current window into the EMA.
func (p *Profile) closeRateWindowLocked(now time.Time) {
	if p.windowStart.IsZero() {
		p.windowStart = now
		return
	}
	elapsed := now.Sub(p.windowStart).Seconds()
	if elapsed <= 0 {
		return
	}
	rate := float64(p.windowCount) / elapsed
	if p.rateSamples == 0 {
		p.baselineEMA = rate
	} else {
		p.baselineEMA = 0.7*p.baselineEMA + 0.3*rate
	}
	p.rateSamples++
	p.windowStart = now
	p.windowCount = 0
}

// ObserveMessage records one management message from peer to the
// device's port and returns any anomalies (empty while training).
func (p *Profile) ObserveMessage(peer string, port uint16, cmd string, now time.Time) []Anomaly {
	p.mu.Lock()
	defer p.mu.Unlock()

	var anomalies []Anomaly
	report := func(kind AnomalyKind, detail string, score float64) {
		mAnomalies.With(string(kind)).Inc()
		anomalies = append(anomalies, Anomaly{
			Device: p.Device, Kind: kind, Detail: detail, Score: score, When: now,
		})
	}

	// Rate: close the window every second.
	if p.windowStart.IsZero() {
		p.windowStart = now
	}
	p.windowCount++
	if now.Sub(p.windowStart) >= time.Second {
		if !p.training && p.rateSamples > 0 {
			elapsed := now.Sub(p.windowStart).Seconds()
			rate := float64(p.windowCount) / elapsed
			if base := math.Max(p.baselineEMA, 0.5); rate > base*p.RateFactor {
				report(AnomalyRate, fmt.Sprintf("rate %.1f/s vs baseline %.1f/s", rate, base), rate/base)
			}
		}
		p.closeRateWindowLocked(now)
	}

	if p.training {
		p.peers[peer] = true
		p.ports[port] = true
		p.learnTransitionLocked(cmd)
		return nil
	}

	if !p.peers[peer] {
		report(AnomalyNewPeer, "unseen peer "+peer, 1)
	}
	if !p.ports[port] {
		report(AnomalyNewPort, fmt.Sprintf("unseen port %d", port), 1)
	}
	if prob, evidence, known := p.transitionProbLocked(cmd); known &&
		evidence >= p.MinEvidence && prob < p.MinTransitionProb {
		report(AnomalyTransition,
			fmt.Sprintf("transition %s->%s p=%.3f", p.lastCmd, cmd, prob), 1-prob)
	}
	p.lastCmd = cmd
	return anomalies
}

// learnTransitionLocked updates the Markov model.
func (p *Profile) learnTransitionLocked(cmd string) {
	if p.lastCmd != "" {
		m := p.counts[p.lastCmd]
		if m == nil {
			m = make(map[string]int)
			p.counts[p.lastCmd] = m
		}
		m[cmd]++
		p.totals[p.lastCmd]++
	}
	p.lastCmd = cmd
}

// transitionProbLocked returns P(cmd | lastCmd) with add-one
// smoothing, the evidence count for lastCmd, and whether lastCmd was
// ever seen as a predecessor.
func (p *Profile) transitionProbLocked(cmd string) (prob float64, evidence int, known bool) {
	if p.lastCmd == "" {
		return 0, 0, false
	}
	total, seen := p.totals[p.lastCmd]
	if !seen {
		return 0, 0, false
	}
	succ := len(p.counts[p.lastCmd]) + 1
	count := p.counts[p.lastCmd][cmd]
	return float64(count+1) / float64(total+succ), total, true
}

// Baseline reports the learned message rate (messages/second).
func (p *Profile) Baseline() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.baselineEMA
}

// KnownPeers lists learned peers, sorted.
func (p *Profile) KnownPeers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.peers))
	for k := range p.peers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
