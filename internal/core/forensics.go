package core

import (
	"iotsec/internal/forensics"
	"iotsec/internal/journal"
)

// EnableForensics attaches an incident capturer to the process-wide
// journal on behalf of this platform: opening events (anomalies,
// profile violations, rogue quarantines, SLO burns, failovers) pin
// their full causal chains into opt.Store before ring eviction, with
// device SKUs resolved from the platform so exports are replayable.
// Idempotent per platform: a second call returns the existing
// capturer.
func (p *Platform) EnableForensics(opt forensics.Options) *forensics.Capturer {
	p.mu.Lock()
	if p.forensicsCap != nil {
		c := p.forensicsCap
		p.mu.Unlock()
		return c
	}
	p.mu.Unlock()
	if opt.SKUOf == nil {
		opt.SKUOf = func(device string) string {
			if m, ok := p.Device(device); ok {
				return m.Device.Profile.SKU
			}
			return ""
		}
	}
	c := forensics.NewCapturer(journal.Default, opt)
	p.mu.Lock()
	if p.forensicsCap != nil {
		// Lost the race to another enabler: keep theirs.
		existing := p.forensicsCap
		p.mu.Unlock()
		c.Close()
		return existing
	}
	p.forensicsCap = c
	p.mu.Unlock()
	return c
}

// Forensics returns the attached incident capturer (nil when
// forensics is not enabled).
func (p *Platform) Forensics() *forensics.Capturer {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forensicsCap
}
