package openflow

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/packet"
)

// FlowEntry is one installed rule: a classifier, a priority, the
// actions to apply, and optional expiry.
type FlowEntry struct {
	Match    Match
	Priority uint16
	Actions  []Action
	// IdleTimeout evicts the entry after this long without a hit
	// (zero = never).
	IdleTimeout time.Duration
	// HardTimeout evicts the entry this long after installation
	// (zero = never).
	HardTimeout time.Duration
	// Cookie is an opaque controller tag used for bulk deletion.
	Cookie uint64

	installed time.Time
	lastHit   time.Time
	packets   uint64
	bytes     uint64
}

// Stats reports the entry's hit counters.
func (e *FlowEntry) Stats() (packets, bytes uint64) { return e.packets, e.bytes }

// String summarizes the rule.
func (e *FlowEntry) String() string {
	acts := make([]string, len(e.Actions))
	for i, a := range e.Actions {
		acts[i] = a.String()
	}
	actStr := "drop"
	if len(acts) > 0 {
		actStr = strings.Join(acts, ",")
	}
	return fmt.Sprintf("prio=%d %s -> %s", e.Priority, e.Match, actStr)
}

// flowNode is the stored form of an entry. The embedded FlowEntry spec
// is immutable after insert; the hit counters live in atomics so Lookup
// can update them while holding only the read lock. Nodes are always
// handled by pointer (the atomics make them non-copyable).
type flowNode struct {
	FlowEntry
	// seq is the install sequence number: the priority tie-break goes
	// to the lower (earlier) seq. A replacement inherits its
	// predecessor's seq so it keeps its slot in the ordering.
	seq uint64
	// idx is the node's position in FlowTable.nodes, maintained across
	// compaction so Insert can replace in place without a scan.
	idx int

	hitPackets atomic.Uint64
	hitBytes   atomic.Uint64
	// lastHitNS is the unix-nano time of the last hit. Only updated
	// for entries with an idle timeout — everything else would pay a
	// time.Now() per packet for a value nobody reads.
	lastHitNS atomic.Int64
}

// snapshot copies the spec and folds the live counters into the plain
// FlowEntry view handed to callers.
func (n *flowNode) snapshot() FlowEntry {
	e := n.FlowEntry
	e.packets = n.hitPackets.Load()
	e.bytes = n.hitBytes.Load()
	e.lastHit = time.Unix(0, n.lastHitNS.Load())
	return e
}

// tupleID identifies one tuple-space class: all matches sharing a
// wildcard set and prefix-mask pair live in the same tuple and can be
// looked up with a single hash probe. Masks are normalized to zero when
// the corresponding field is wildcarded so equivalent matches collapse
// into one tuple.
type tupleID struct {
	wildcards uint32
	srcMask   uint8
	dstMask   uint8
}

func clampMask(m uint8) uint8 {
	if m > 32 {
		return 32
	}
	return m
}

func tupleIDFor(m Match) tupleID {
	id := tupleID{wildcards: m.Wildcards & WAll}
	if id.wildcards&WSrcIP == 0 {
		id.srcMask = clampMask(m.SrcMask)
	}
	if id.wildcards&WDstIP == 0 {
		id.dstMask = clampMask(m.DstMask)
	}
	return id
}

// tupleKey is the exact-match hash key within one tuple: every
// non-wildcarded field, with IPs masked to the tuple's prefix length.
// Under a fixed tupleID the key fully determines the match predicate,
// so a hash hit needs no verify pass.
type tupleKey struct {
	inPort    uint16
	ethSrc    packet.MACAddress
	ethDst    packet.MACAddress
	etherType packet.EtherType
	srcIP     packet.IPv4Address
	dstIP     packet.IPv4Address
	proto     packet.IPProtocol
	tpSrc     uint16
	tpDst     uint16
}

func maskIP(ip packet.IPv4Address, maskLen uint8) packet.IPv4Address {
	if maskLen >= 32 {
		return ip
	}
	if maskLen == 0 {
		return packet.IPv4Address{}
	}
	v := uint32(ip[0])<<24 | uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3])
	v &= ^uint32(0) << (32 - maskLen)
	return packet.IPv4Address{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// tuple is one tuple-space class: a hash from masked field values to
// the entries with exactly that predicate, bucket-ordered by
// (priority desc, seq asc) so bucket[0] is the class winner.
type tuple struct {
	id      tupleID
	buckets map[tupleKey][]*flowNode
	// Layer requirements: a packet lacking a required layer cannot
	// match any entry in this tuple (mirrors Match.Matches, which
	// fails concrete fields against absent layers).
	needEth   bool
	needIP    bool
	needPorts bool
}

func newTuple(id tupleID) *tuple {
	const wEth = WEthSrc | WEthDst | WEtherType
	const wIP = WSrcIP | WDstIP | WProto
	const wTp = WTpSrc | WTpDst
	return &tuple{
		id:        id,
		buckets:   make(map[tupleKey][]*flowNode),
		needEth:   id.wildcards&wEth != wEth,
		needIP:    id.wildcards&wIP != wIP,
		needPorts: id.wildcards&wTp != wTp,
	}
}

// keyForMatch builds the hash key for an entry's match under this
// tuple's masks.
func (tp *tuple) keyForMatch(m Match) tupleKey {
	var k tupleKey
	w := tp.id.wildcards
	if w&WInPort == 0 {
		k.inPort = m.InPort
	}
	if w&WEthSrc == 0 {
		k.ethSrc = m.EthSrc
	}
	if w&WEthDst == 0 {
		k.ethDst = m.EthDst
	}
	if w&WEtherType == 0 {
		k.etherType = m.EtherType
	}
	if w&WSrcIP == 0 {
		k.srcIP = maskIP(m.SrcIP, tp.id.srcMask)
	}
	if w&WDstIP == 0 {
		k.dstIP = maskIP(m.DstIP, tp.id.dstMask)
	}
	if w&WProto == 0 {
		k.proto = m.Proto
	}
	if w&WTpSrc == 0 {
		k.tpSrc = m.TpSrc
	}
	if w&WTpDst == 0 {
		k.tpDst = m.TpDst
	}
	return k
}

// pktFields is the per-lookup flattened view of a packet: every field
// the index can key on, extracted once instead of once per entry.
type pktFields struct {
	inPort    uint16
	ethSrc    packet.MACAddress
	ethDst    packet.MACAddress
	etherType packet.EtherType
	srcIP     packet.IPv4Address
	dstIP     packet.IPv4Address
	proto     packet.IPProtocol
	tpSrc     uint16
	tpDst     uint16
	hasEth    bool
	hasIP     bool
	hasPorts  bool
}

func extractFields(p *packet.Packet, inPort uint16) pktFields {
	f := pktFields{inPort: inPort}
	if eth := p.Ethernet(); eth != nil {
		f.hasEth = true
		f.ethSrc, f.ethDst, f.etherType = eth.SrcMAC, eth.DstMAC, eth.EtherType
	}
	if ip := p.IPv4(); ip != nil {
		f.hasIP = true
		f.srcIP, f.dstIP, f.proto = ip.SrcIP, ip.DstIP, ip.Protocol
	}
	if t := p.TCP(); t != nil {
		f.hasPorts = true
		f.tpSrc, f.tpDst = t.SrcPort, t.DstPort
	} else if u := p.UDP(); u != nil {
		f.hasPorts = true
		f.tpSrc, f.tpDst = u.SrcPort, u.DstPort
	}
	return f
}

// keyForPacket builds the packet's hash key under this tuple, or
// ok=false when the packet lacks a layer the tuple's concrete fields
// require.
func (tp *tuple) keyForPacket(f *pktFields) (tupleKey, bool) {
	if (tp.needEth && !f.hasEth) || (tp.needIP && !f.hasIP) || (tp.needPorts && !f.hasPorts) {
		return tupleKey{}, false
	}
	var k tupleKey
	w := tp.id.wildcards
	if w&WInPort == 0 {
		k.inPort = f.inPort
	}
	if w&WEthSrc == 0 {
		k.ethSrc = f.ethSrc
	}
	if w&WEthDst == 0 {
		k.ethDst = f.ethDst
	}
	if w&WEtherType == 0 {
		k.etherType = f.etherType
	}
	if w&WSrcIP == 0 {
		k.srcIP = maskIP(f.srcIP, tp.id.srcMask)
	}
	if w&WDstIP == 0 {
		k.dstIP = maskIP(f.dstIP, tp.id.dstMask)
	}
	if w&WProto == 0 {
		k.proto = f.proto
	}
	if w&WTpSrc == 0 {
		k.tpSrc = f.tpSrc
	}
	if w&WTpDst == 0 {
		k.tpDst = f.tpDst
	}
	return k, true
}

// FlowTable is a priority-ordered, thread-safe rule table. Lookup
// returns the highest-priority matching entry; ties break toward the
// earlier-installed entry.
//
// Entries are indexed tuple-space style: one hash table per distinct
// (wildcard set, prefix masks) class, so a lookup costs one probe per
// class — a handful — instead of a scan over every entry. Lookups run
// under the read lock; hit counters are atomics so concurrent lookups
// never serialize on the write lock.
type FlowTable struct {
	mu     sync.RWMutex
	nodes  []*flowNode // install order; nodes[i].idx == i
	tuples []*tuple
	byID   map[tupleID]*tuple
	// installSeq numbers inserts for the priority tie-break.
	installSeq uint64
	// gen is the structure generation: bumped on every insert, delete
	// and expiry (not on hits). Entries() uses it to cache its sorted
	// view; external callers can use Generation() the same way.
	gen atomic.Uint64
	// sorted caches the (priority desc, seq asc) node order as of
	// sortGen; rebuilt lazily when gen moves.
	sorted  []*flowNode
	sortGen uint64

	missCount atomic.Uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{byID: make(map[tupleID]*tuple)}
}

// Insert installs the entry, replacing any existing entry with an
// identical match and priority. Per OpenFlow modify semantics a
// replacement preserves the hit counters of the entry it displaces;
// timeouts restart from the replacement.
func (t *FlowTable) Insert(e FlowEntry) {
	now := time.Now()
	e.installed = now
	e.lastHit = now
	e.packets, e.bytes = 0, 0

	t.mu.Lock()
	defer t.mu.Unlock()

	id := tupleIDFor(e.Match)
	tp := t.byID[id]
	if tp == nil {
		tp = newTuple(id)
		t.byID[id] = tp
		t.tuples = append(t.tuples, tp)
	}
	key := tp.keyForMatch(e.Match)
	bucket := tp.buckets[key]

	n := &flowNode{FlowEntry: e}
	n.lastHitNS.Store(now.UnixNano())

	for i, old := range bucket {
		if old.Priority == e.Priority && old.Match == e.Match {
			n.seq = old.seq
			n.idx = old.idx
			n.hitPackets.Store(old.hitPackets.Load())
			n.hitBytes.Store(old.hitBytes.Load())
			bucket[i] = n
			t.nodes[n.idx] = n
			t.gen.Add(1)
			return
		}
	}

	n.seq = t.installSeq
	t.installSeq++
	n.idx = len(t.nodes)
	t.nodes = append(t.nodes, n)

	// Keep the bucket ordered (priority desc, seq asc): scan to the
	// first lower-priority node. seq grows monotonically, so appending
	// after equal priorities preserves the tie-break.
	pos := len(bucket)
	for i, x := range bucket {
		if x.Priority < n.Priority {
			pos = i
			break
		}
	}
	bucket = append(bucket, nil)
	copy(bucket[pos+1:], bucket[pos:])
	bucket[pos] = n
	tp.buckets[key] = bucket
	t.gen.Add(1)
}

// matchSubsumes reports whether every packet matching sub also matches
// the filter fields of f (used for OpenFlow-style delete filters: a
// filter with more wildcards deletes more entries).
func matchSubsumes(filter, sub Match) bool {
	if filter.Wildcards == WAll {
		return true
	}
	if filter.Wildcards&WInPort == 0 && (sub.Wildcards&WInPort != 0 || sub.InPort != filter.InPort) {
		return false
	}
	if filter.Wildcards&WEthSrc == 0 && (sub.Wildcards&WEthSrc != 0 || sub.EthSrc != filter.EthSrc) {
		return false
	}
	if filter.Wildcards&WEthDst == 0 && (sub.Wildcards&WEthDst != 0 || sub.EthDst != filter.EthDst) {
		return false
	}
	if filter.Wildcards&WEtherType == 0 && (sub.Wildcards&WEtherType != 0 || sub.EtherType != filter.EtherType) {
		return false
	}
	if filter.Wildcards&WSrcIP == 0 && (sub.Wildcards&WSrcIP != 0 || sub.SrcMask < filter.SrcMask || !prefixMatches(filter.SrcIP, sub.SrcIP, filter.SrcMask)) {
		return false
	}
	if filter.Wildcards&WDstIP == 0 && (sub.Wildcards&WDstIP != 0 || sub.DstMask < filter.DstMask || !prefixMatches(filter.DstIP, sub.DstIP, filter.DstMask)) {
		return false
	}
	if filter.Wildcards&WProto == 0 && (sub.Wildcards&WProto != 0 || sub.Proto != filter.Proto) {
		return false
	}
	if filter.Wildcards&WTpSrc == 0 && (sub.Wildcards&WTpSrc != 0 || sub.TpSrc != filter.TpSrc) {
		return false
	}
	if filter.Wildcards&WTpDst == 0 && (sub.Wildcards&WTpDst != 0 || sub.TpDst != filter.TpDst) {
		return false
	}
	return true
}

// removeFromBucketLocked unlinks the node from its tuple's hash bucket.
func (t *FlowTable) removeFromBucketLocked(n *flowNode) {
	tp := t.byID[tupleIDFor(n.Match)]
	if tp == nil {
		return
	}
	key := tp.keyForMatch(n.Match)
	b := tp.buckets[key]
	for i, x := range b {
		if x == n {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = nil
			b = b[:len(b)-1]
			break
		}
	}
	if len(b) == 0 {
		delete(tp.buckets, key)
	} else {
		tp.buckets[key] = b
	}
}

// compactLocked filters t.nodes with the given predicate (true =
// remove), unlinking removed nodes from the index and niling the
// compacted tail so evicted entries are not pinned against GC.
func (t *FlowTable) compactLocked(remove func(*flowNode) bool) int {
	kept := t.nodes[:0]
	removed := 0
	for _, n := range t.nodes {
		if remove(n) {
			t.removeFromBucketLocked(n)
			removed++
		} else {
			n.idx = len(kept)
			kept = append(kept, n)
		}
	}
	for i := len(kept); i < len(t.nodes); i++ {
		t.nodes[i] = nil
	}
	t.nodes = kept
	if removed > 0 {
		t.gen.Add(1)
	}
	return removed
}

// Delete removes entries whose match is subsumed by the filter,
// returning how many were removed.
func (t *FlowTable) Delete(filter Match) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compactLocked(func(n *flowNode) bool {
		return matchSubsumes(filter, n.Match)
	})
}

// DeleteByCookie removes entries tagged with the cookie.
func (t *FlowTable) DeleteByCookie(cookie uint64) int {
	if cookie == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compactLocked(func(n *flowNode) bool {
		return n.Cookie == cookie
	})
}

// Lookup returns a copy of the highest-priority entry matching the
// packet, updating its counters. ok is false on a table miss. Lookups
// hold only the read lock, so the data plane's per-port goroutines
// proceed in parallel; counters are atomics.
func (t *FlowTable) Lookup(p *packet.Packet, inPort uint16, size int) (FlowEntry, bool) {
	f := extractFields(p, inPort)

	t.mu.RLock()
	var best *flowNode
	for _, tp := range t.tuples {
		if len(tp.buckets) == 0 {
			continue
		}
		key, ok := tp.keyForPacket(&f)
		if !ok {
			continue
		}
		b := tp.buckets[key]
		if len(b) == 0 {
			continue
		}
		n := b[0]
		if best == nil || n.Priority > best.Priority ||
			(n.Priority == best.Priority && n.seq < best.seq) {
			best = n
		}
	}
	if best == nil {
		t.mu.RUnlock()
		t.missCount.Add(1)
		return FlowEntry{}, false
	}
	best.hitPackets.Add(1)
	best.hitBytes.Add(uint64(size))
	if best.IdleTimeout > 0 {
		best.lastHitNS.Store(time.Now().UnixNano())
	}
	e := best.snapshot()
	t.mu.RUnlock()
	return e, true
}

// lookupLinear is the pre-index reference: scan every entry, keep the
// (priority desc, install-order asc) winner. Retained as the oracle for
// the indexed-vs-linear equivalence tests; not used on the data path.
func (t *FlowTable) lookupLinear(p *packet.Packet, inPort uint16) (FlowEntry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best *flowNode
	for _, n := range t.nodes {
		if !n.Match.Matches(p, inPort) {
			continue
		}
		if best == nil || n.Priority > best.Priority ||
			(n.Priority == best.Priority && n.seq < best.seq) {
			best = n
		}
	}
	if best == nil {
		return FlowEntry{}, false
	}
	return best.snapshot(), true
}

// Expire removes entries whose idle or hard timeout has passed as of
// now, returning the expired entries (copies) so the switch can emit
// FLOW_REMOVED notifications.
func (t *FlowTable) Expire(now time.Time) []FlowEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var expired []FlowEntry
	t.compactLocked(func(n *flowNode) bool {
		idleDead := n.IdleTimeout > 0 && now.Sub(time.Unix(0, n.lastHitNS.Load())) >= n.IdleTimeout
		hardDead := n.HardTimeout > 0 && now.Sub(n.installed) >= n.HardTimeout
		if idleDead || hardDead {
			expired = append(expired, n.snapshot())
			return true
		}
		return false
	})
	return expired
}

// Len reports the number of installed entries.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// Misses reports how many lookups found no entry.
func (t *FlowTable) Misses() uint64 { return t.missCount.Load() }

// Generation reports the table's structure generation, which advances
// on every insert, delete and expiry (but not on lookup hits). Callers
// caching an Entries() snapshot can skip re-reading an unchanged table.
func (t *FlowTable) Generation() uint64 { return t.gen.Load() }

// Entries returns copies of all entries in priority order. The sorted
// order is cached against Generation(), so repeated calls on an
// unchanged table only re-read counters.
func (t *FlowTable) Entries() []FlowEntry {
	t.mu.RLock()
	if t.sortGen == t.gen.Load() {
		out := t.snapshotSortedLocked()
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sortGen != t.gen.Load() {
		t.sorted = make([]*flowNode, len(t.nodes))
		copy(t.sorted, t.nodes)
		sort.Slice(t.sorted, func(i, j int) bool {
			if t.sorted[i].Priority != t.sorted[j].Priority {
				return t.sorted[i].Priority > t.sorted[j].Priority
			}
			return t.sorted[i].seq < t.sorted[j].seq
		})
		t.sortGen = t.gen.Load()
	}
	return t.snapshotSortedLocked()
}

func (t *FlowTable) snapshotSortedLocked() []FlowEntry {
	out := make([]FlowEntry, len(t.sorted))
	for i, n := range t.sorted {
		out[i] = n.snapshot()
	}
	return out
}
