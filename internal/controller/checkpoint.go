package controller

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Checkpoint is one partition's compact snapshot of critical security
// state — exactly the state §5.1 says cannot ride on weak consistency:
// the posture FSM inputs (view variables), the postures already
// enforced, the quarantine set, and the installed-profile generation.
// Recovery rebuilds a replacement controller from the latest
// checkpoint plus a forensic-journal replay of everything committed
// after Seq.
type Checkpoint struct {
	// Group is the partition the snapshot belongs to.
	Group int `json:"group"`
	// TakenAt is the supervisor-clock snapshot time.
	TakenAt time.Time `json:"taken_at"`
	// Seq is the forensic journal's append count at snapshot time,
	// captured BEFORE the view variables: any view-change journaled at
	// Seq or earlier is guaranteed to be reflected in Vars, so replaying
	// events with Seq' > Seq loses nothing (overlap re-applies
	// idempotently).
	Seq uint64 `json:"journal_seq"`
	// Version is the local view's store version at snapshot time.
	Version uint64 `json:"view_version"`
	// Vars holds the view variables ("dev:<name>"/"env:<name>" → value).
	Vars map[string]string `json:"vars"`
	// Postures holds the posture keys already pushed to enforcement
	// (device → policy.Posture.Key()), so a restored controller only
	// re-pushes deltas.
	Postures map[string]string `json:"postures"`
	// Quarantined lists devices under standing quarantine, sorted.
	// Recovery re-pushes these FIRST (fail-closed ordering).
	Quarantined []string `json:"quarantined,omitempty"`
	// ProfileGen is the installed-profile generation the enforcement
	// plane reported at snapshot time.
	ProfileGen uint64 `json:"profile_generation"`
}

// CheckpointLog is the bounded per-partition snapshot log the
// supervisor appends to on every checkpoint pass. Only the most recent
// keep checkpoints per partition are retained (recovery only ever
// needs the latest; the short history is for operators and artifacts).
type CheckpointLog struct {
	mu      sync.Mutex
	keep    int
	byGroup map[int][]Checkpoint // oldest first
}

// NewCheckpointLog builds a log retaining keep checkpoints per
// partition (values < 1 default to 4).
func NewCheckpointLog(keep int) *CheckpointLog {
	if keep < 1 {
		keep = 4
	}
	return &CheckpointLog{keep: keep, byGroup: make(map[int][]Checkpoint)}
}

// Append stores one checkpoint, evicting the group's oldest beyond the
// retention cap.
func (l *CheckpointLog) Append(c Checkpoint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cks := append(l.byGroup[c.Group], c)
	if len(cks) > l.keep {
		cks = cks[len(cks)-l.keep:]
	}
	l.byGroup[c.Group] = cks
}

// Latest returns a group's most recent checkpoint.
func (l *CheckpointLog) Latest(group int) (Checkpoint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cks := l.byGroup[group]
	if len(cks) == 0 {
		return Checkpoint{}, false
	}
	return cks[len(cks)-1], true
}

// Snapshot returns every retained checkpoint ordered by group then
// age (oldest first) — the failover-snapshot.json artifact body.
func (l *CheckpointLog) Snapshot() []Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	groups := make([]int, 0, len(l.byGroup))
	for g := range l.byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	var out []Checkpoint
	for _, g := range groups {
		out = append(out, l.byGroup[g]...)
	}
	return out
}

// MarshalJSON renders the log as its checkpoint list.
func (l *CheckpointLog) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Snapshot())
}
