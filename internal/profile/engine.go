package profile

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iotsec/internal/netsim"
	"iotsec/internal/openflow"
	"iotsec/internal/packet"
	"iotsec/internal/telemetry"
)

// Violation kinds.
const (
	// ViolationAddressHop: a device sourced traffic from an address
	// other than its registered one — the identity-pinning tripwire.
	ViolationAddressHop = "address-hop"
	// ViolationService: a transport conversation outside the
	// allowlist.
	ViolationService = "unauthorized-service"
	// ViolationRate: the device exceeded its learned rate envelope.
	ViolationRate = "rate-envelope"
)

// Violation is one detected deviation of a device from its profile.
type Violation struct {
	Device string    `json:"device"`
	SKU    string    `json:"sku"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
	When   time.Time `json:"when"`
}

// Options configures an Engine.
type Options struct {
	// OnViolation fires once per distinct violation tuple per device
	// (re-armed when the device's profile changes). Called without
	// engine locks held.
	OnViolation func(Violation)
	// OnRogue fires once per unknown source MAC seen while lockdown
	// is enabled.
	OnRogue func(mac packet.MACAddress, srcNode string)
	// Lockdown treats any frame from an unregistered MAC as a rogue
	// device join.
	Lockdown bool
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// enforcedState is the per-device enforcement ledger.
type enforcedState struct {
	id       Identity
	prof     *Profile
	reported map[string]bool // violation dedupe, reset on profile change
	epoch    int64           // rate-envelope accounting second
	frames   float64
	flagged  bool
}

// EngineStats is a snapshot of engine counters.
type EngineStats struct {
	FramesSeen      uint64 `json:"frames_seen"`
	ViolationFrames uint64 `json:"violation_frames"`
	Violations      uint64 `json:"violations"`
	Rogues          uint64 `json:"rogues"`
	Profiles        int    `json:"profiles"`
	Enforced        int    `json:"enforced"`
	Learning        bool   `json:"learning"`
}

// Engine is the live half of the profile subsystem: it taps the
// fabric, feeds the Learner during training windows, and checks every
// device-originated frame of an enforced device against its SKU
// profile. Detection is independent of enforcement — the tap sees
// frames on the device's access link even when the switch later drops
// them — so a violating device is flagged whether or not its traffic
// escapes.
type Engine struct {
	opts    Options
	learner *Learner

	// active short-circuits the tap when there is nothing to do.
	active atomic.Bool

	mu         sync.Mutex
	ids        map[string]Identity                // device name → identity
	deviceMACs map[packet.MACAddress]string       // registered device MACs
	hostMACs   map[packet.MACAddress]bool         // known benign non-device MACs
	profiles   map[string]*Profile                // accepted, by SKU
	enforced   map[string]*enforcedState          // by device name (== node name)
	rogues     map[packet.MACAddress]bool         // reported rogue MACs
	violations []Violation                        // bounded recent ring
	lockdown   bool
	learning   bool

	framesSeen      atomic.Uint64
	violationFrames atomic.Uint64
	violationsTotal atomic.Uint64
	roguesTotal     atomic.Uint64
}

// violationRingLimit bounds the retained violation history.
const violationRingLimit = 256

// NewEngine creates an engine.
func NewEngine(opts Options) *Engine {
	e := &Engine{
		opts:       opts,
		learner:    NewLearner(),
		ids:        make(map[string]Identity),
		deviceMACs: make(map[packet.MACAddress]string),
		hostMACs:   make(map[packet.MACAddress]bool),
		profiles:   make(map[string]*Profile),
		enforced:   make(map[string]*enforcedState),
		rogues:     make(map[packet.MACAddress]bool),
		lockdown:   opts.Lockdown,
	}
	e.refreshActive()
	return e
}

func (e *Engine) now() time.Time {
	if e.opts.Clock != nil {
		return e.opts.Clock()
	}
	return time.Now()
}

// refreshActive recomputes the tap fast-path flag; callers hold e.mu
// or are in a constructor.
func (e *Engine) refreshActive() {
	e.active.Store(e.learning || e.lockdown || len(e.enforced) > 0)
}

// Learner exposes the training-window learner (tuning knobs, counts).
func (e *Engine) Learner() *Learner { return e.learner }

// Register declares a device identity: its name (== netsim node
// name), SKU, MAC and registered address.
func (e *Engine) Register(id Identity) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ids[id.Name] = id
	e.deviceMACs[id.MAC] = id.Name
	if st, ok := e.enforced[id.Name]; ok {
		st.id = id
	}
}

// RegisterHostMAC marks a non-device MAC (gateway, operator laptop)
// as known, so lockdown does not flag it.
func (e *Engine) RegisterHostMAC(mac packet.MACAddress) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hostMACs[mac] = true
}

// Identities snapshots registered identities sorted by name.
func (e *Engine) Identities() []Identity {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Identity, 0, len(e.ids))
	for _, id := range e.ids {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetLockdown toggles unknown-MAC rogue detection.
func (e *Engine) SetLockdown(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lockdown = on
	e.refreshActive()
}

// StartLearning opens a training window: every tapped frame is
// buffered for distillation. Windows are closed by FinishLearning
// (callers own the timing).
func (e *Engine) StartLearning() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.learner.Reset()
	e.learning = true
	e.refreshActive()
}

// Learning reports whether a training window is open.
func (e *Engine) Learning() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.learning
}

// FinishLearning closes the window and distills one profile per SKU
// from the buffered frames, folding each into the accepted set. The
// distilled profiles are returned (keyed by SKU).
func (e *Engine) FinishLearning(version int) map[string]*Profile {
	e.mu.Lock()
	if !e.learning {
		e.mu.Unlock()
		return nil
	}
	e.learning = false
	ids := make([]Identity, 0, len(e.ids))
	for _, id := range e.ids {
		ids = append(ids, id)
	}
	e.refreshActive()
	e.mu.Unlock()

	profiles := e.learner.Distill(ids, version)
	e.learner.Reset()
	for _, p := range profiles {
		e.AcceptProfile(p)
		mLearned.Inc()
	}
	return profiles
}

// AcceptProfile folds a profile (locally learned or crowd-fetched)
// into the accepted set. A higher version replaces the standing
// profile (firmware-drift re-learning); the same version merges into
// it; a lower version is ignored. Returns the effective profile and
// whether it changed — callers re-push enforcement when it did.
func (e *Engine) AcceptProfile(p *Profile) (*Profile, bool) {
	if p == nil || p.Validate() != nil {
		return nil, false
	}
	in := p.Clone()
	in.normalize()
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.profiles[in.SKU]
	changed := false
	switch {
	case !ok || in.Version > cur.Version:
		e.profiles[in.SKU] = in
		cur = in
		changed = true
	case in.Version < cur.Version:
		// Stale replay; keep the newer standing profile.
	default:
		before := len(cur.Services)
		rate := cur.MaxRate
		_ = cur.Merge(in)
		changed = len(cur.Services) != before || cur.MaxRate != rate
	}
	if changed {
		mInstalled.Inc()
		for _, st := range e.enforced {
			if st.id.SKU == cur.SKU {
				st.prof = cur
				st.reported = make(map[string]bool)
			}
		}
	}
	return cur.Clone(), changed
}

// Profile returns the accepted profile for a SKU.
func (e *Engine) Profile(sku string) (*Profile, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.profiles[sku]
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Profiles snapshots accepted profiles sorted by SKU.
func (e *Engine) Profiles() []*Profile {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Profile, 0, len(e.profiles))
	for _, p := range e.profiles {
		out = append(out, p.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SKU < out[j].SKU })
	return out
}

// Enforce marks a registered device as profile-enforced and compiles
// its SKU profile into identity-pinned flow rules for the caller to
// install. It is the caller's job (core) to push the mods through
// steering; the engine begins live violation checking immediately.
func (e *Engine) Enforce(name string) ([]*openflow.FlowMod, *Profile, error) {
	e.mu.Lock()
	id, ok := e.ids[name]
	if !ok {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("profile: enforce: unknown device %q", name)
	}
	prof, ok := e.profiles[id.SKU]
	if !ok {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("profile: enforce %q: no profile for SKU %q", name, id.SKU)
	}
	st := e.enforced[name]
	if st == nil {
		st = &enforcedState{id: id, reported: make(map[string]bool)}
		e.enforced[name] = st
		mEnforced.Inc()
	}
	st.id = id
	st.prof = prof
	e.refreshActive()
	snapshot := prof.Clone()
	e.mu.Unlock()
	return Compile(snapshot, id), snapshot, nil
}

// Unenforce stops checking a device.
func (e *Engine) Unenforce(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.enforced[name]; !ok {
		return false
	}
	delete(e.enforced, name)
	mEnforced.Dec()
	e.refreshActive()
	return true
}

// EnforcedDevices lists enforced device names, sorted.
func (e *Engine) EnforcedDevices() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.enforced))
	for name := range e.enforced {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Violations snapshots the recent violation history (oldest first).
func (e *Engine) Violations() []Violation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Violation, len(e.violations))
	copy(out, e.violations)
	return out
}

// Rogues lists reported rogue MACs, sorted.
func (e *Engine) Rogues() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.rogues))
	for mac := range e.rogues {
		out = append(out, mac.String())
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	profiles, enforced, learning := len(e.profiles), len(e.enforced), e.learning
	e.mu.Unlock()
	return EngineStats{
		FramesSeen:      e.framesSeen.Load(),
		ViolationFrames: e.violationFrames.Load(),
		Violations:      e.violationsTotal.Load(),
		Rogues:          e.roguesTotal.Load(),
		Profiles:        profiles,
		Enforced:        enforced,
		Learning:        learning,
	}
}

// Health implements the component health contract: the engine is
// degraded while an active containment event (violations or rogues)
// is on the books, healthy otherwise.
func (e *Engine) Health() (telemetry.HealthState, string) {
	s := e.Stats()
	detail := fmt.Sprintf("%d profiles, %d enforced, %d violations, %d rogues",
		s.Profiles, s.Enforced, s.Violations, s.Rogues)
	if s.Violations > 0 || s.Rogues > 0 {
		return telemetry.HealthDegraded, detail
	}
	return telemetry.HealthHealthy, detail
}

// Tap returns the function to register with netsim.Network.AddTap.
func (e *Engine) Tap() netsim.Tap {
	return func(src, dst *netsim.Port, frame netsim.Frame) {
		e.Observe(src.Owner().NodeName(), dst.Owner().NodeName(), frame)
	}
}

// Observe processes one frame hop (exported for tests that synthesize
// captures without a network).
func (e *Engine) Observe(srcNode, dstNode string, frame netsim.Frame) {
	if !e.active.Load() {
		return
	}
	now := e.now()
	e.framesSeen.Add(1)

	e.mu.Lock()
	learning := e.learning
	e.mu.Unlock()
	if learning {
		e.learner.Observe(srcNode, dstNode, frame, now)
	}

	// Taps run on the sending port's goroutine, so Observe is
	// concurrent; the pooled decoder's view dies with this frame
	// (checkLocked copies every value it keeps).
	dec := packet.GetDecoder()
	defer packet.PutDecoder(dec)
	pkt := dec.Decode(frame, packet.LayerTypeEthernet)
	eth := pkt.Ethernet()
	if eth == nil {
		return
	}

	var (
		report   *Violation
		rogueMAC packet.MACAddress
		rogue    bool
	)
	e.mu.Lock()
	// Rogue join: an unknown MAC sourcing traffic under lockdown.
	// Report once per MAC; the multi-hop tap dedupes through e.rogues.
	if e.lockdown && !e.rogues[eth.SrcMAC] && !eth.SrcMAC.IsBroadcast() {
		if _, dev := e.deviceMACs[eth.SrcMAC]; !dev && !e.hostMACs[eth.SrcMAC] {
			e.rogues[eth.SrcMAC] = true
			e.roguesTotal.Add(1)
			mRogues.Inc()
			rogueMAC, rogue = eth.SrcMAC, true
		}
	}
	// Profile checks apply only to device-originated frames on the
	// device's own access link (srcNode == device name), so each
	// frame is evaluated exactly once however many hops the tap sees.
	if st := e.enforced[srcNode]; st != nil {
		if v := e.checkLocked(st, pkt, eth, now); v != nil {
			e.violations = append(e.violations, *v)
			if len(e.violations) > violationRingLimit {
				e.violations = e.violations[len(e.violations)-violationRingLimit:]
			}
			e.violationsTotal.Add(1)
			mViolations.Inc()
			report = v
		}
	}
	e.mu.Unlock()

	if rogue && e.opts.OnRogue != nil {
		e.opts.OnRogue(rogueMAC, srcNode)
	}
	if report != nil && e.opts.OnViolation != nil {
		e.opts.OnViolation(*report)
	}
}

// checkLocked evaluates one device-originated frame against the
// device's profile. Returns a violation the first time a distinct
// tuple trips (per profile generation); counts every violating frame.
func (e *Engine) checkLocked(st *enforcedState, pkt *packet.Packet, eth *packet.Ethernet, now time.Time) *Violation {
	mk := func(kind, dedupe, detail string) *Violation {
		e.violationFrames.Add(1)
		if st.reported[dedupe] {
			return nil
		}
		st.reported[dedupe] = true
		return &Violation{
			Device: st.id.Name, SKU: st.id.SKU,
			Kind: kind, Detail: detail, When: now,
		}
	}

	// Rate envelope: coarse per-second accounting.
	if st.prof.MaxRate > 0 {
		if ep := now.Unix(); ep != st.epoch {
			st.epoch, st.frames, st.flagged = ep, 0, false
		}
		st.frames++
		if st.frames > st.prof.MaxRate && !st.flagged {
			st.flagged = true
			return mk(ViolationRate, fmt.Sprintf("rate:%d", st.epoch),
				fmt.Sprintf("%.0f frames/s exceeds envelope %.0f", st.frames, st.prof.MaxRate))
		}
	}

	if eth.EtherType == packet.EtherTypeARP {
		return nil // infrastructure, always authorized
	}
	ip := pkt.IPv4()
	if ip == nil {
		return nil // non-IP noise carries no service tuple
	}
	// Identity pinning: traffic must carry the registered address.
	if ip.SrcIP != st.id.IP {
		return mk(ViolationAddressHop, "hop:"+ip.SrcIP.String(),
			fmt.Sprintf("sourced %s, registered %s", ip.SrcIP, st.id.IP))
	}
	var proto string
	var srcPort, dstPort uint16
	if t := pkt.TCP(); t != nil {
		proto, srcPort, dstPort = "tcp", t.SrcPort, t.DstPort
	} else if u := pkt.UDP(); u != nil {
		proto, srcPort, dstPort = "udp", u.SrcPort, u.DstPort
	} else {
		return nil // ICMP etc.: not modeled, not denied by the checker
	}
	if st.prof.Allows(proto, srcPort, dstPort, ip.DstIP) {
		return nil
	}
	return mk(ViolationService,
		fmt.Sprintf("svc:%s:%d>%s:%d", proto, srcPort, ip.DstIP, dstPort),
		fmt.Sprintf("%s %s:%d > %s:%d outside allowlist", proto, ip.SrcIP, srcPort, ip.DstIP, dstPort))
}
