package packet

import "fmt"

// Packet is the result of decoding raw bytes: an ordered list of layers
// from outermost to innermost. Packets from the package-level Decode
// are fully materialized and safe for concurrent reads; Packets from a
// Decoder alias that Decoder's storage (see the Decoder reuse
// contract).
type Packet struct {
	data   []byte
	layers []Layer
	// lazyRest holds undecoded trailing bytes when a Decoder deferred
	// the DNS sub-parse; materialize consumes it on first access.
	lazyRest []byte
	dec      *Decoder
}

// Decode parses data starting at the given first layer type. Decoding
// never fails outright: bytes that cannot be parsed become a trailing
// DecodeFailure layer, mirroring how a real dataplane must tolerate
// malformed traffic.
//
// Each call dedicates a fresh Decoder to the packet, so the result does
// not alias shared state: it may be retained indefinitely and read
// concurrently. Hot paths that drop the packet before the next frame
// use a pooled Decoder directly and skip the per-packet allocation.
func Decode(data []byte, first LayerType) *Packet {
	d := NewDecoder()
	p := d.Decode(data, first)
	p.materialize()
	return p
}

// decodeReference is the original allocate-per-layer implementation,
// kept verbatim as the oracle for the Decoder equivalence tests.
func decodeReference(data []byte, first LayerType) *Packet {
	p := &Packet{data: data}
	rest := data
	next := first
	for len(rest) > 0 && next != LayerTypeInvalid {
		layer := newLayer(next)
		if layer == nil {
			pl := &Payload{}
			_ = pl.DecodeFromBytes(rest)
			p.layers = append(p.layers, pl)
			return p
		}
		if err := layer.DecodeFromBytes(rest); err != nil {
			fail := &DecodeFailure{Err: fmt.Errorf("decoding %s: %w", next, err)}
			fail.contents = rest
			p.layers = append(p.layers, fail)
			return p
		}
		p.layers = append(p.layers, layer)
		rest = layer.LayerPayload()
		next = layer.NextLayerType()
	}
	return p
}

// newLayer allocates a fresh decoder for the given type, or nil for
// types without a decoder.
func newLayer(t LayerType) DecodingLayer {
	switch t {
	case LayerTypeEthernet:
		return &Ethernet{}
	case LayerTypeARP:
		return &ARP{}
	case LayerTypeIPv4:
		return &IPv4{}
	case LayerTypeTCP:
		return &TCP{}
	case LayerTypeUDP:
		return &UDP{}
	case LayerTypeDNS:
		return &DNS{}
	case LayerTypePayload:
		return &Payload{}
	default:
		return nil
	}
}

// Data returns the raw bytes the packet was decoded from.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers, outermost first.
func (p *Packet) Layers() []Layer {
	p.materialize()
	return p.layers
}

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	// The lazily deferred tail always starts at DNS, so it can only
	// ever contain DNS, a trailing Payload, or a DecodeFailure — for
	// any other type the scan above was already exhaustive.
	if p.lazyRest != nil &&
		(t == LayerTypeDNS || t == LayerTypePayload || t == LayerTypeDecodeFailure) {
		p.materialize()
		for _, l := range p.layers {
			if l.LayerType() == t {
				return l
			}
		}
	}
	return nil
}

// Ethernet returns the Ethernet layer, or nil.
func (p *Packet) Ethernet() *Ethernet {
	if l := p.Layer(LayerTypeEthernet); l != nil {
		return l.(*Ethernet)
	}
	return nil
}

// IPv4 returns the IPv4 layer, or nil.
func (p *Packet) IPv4() *IPv4 {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// TCP returns the TCP layer, or nil.
func (p *Packet) TCP() *TCP {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l.(*TCP)
	}
	return nil
}

// UDP returns the UDP layer, or nil.
func (p *Packet) UDP() *UDP {
	if l := p.Layer(LayerTypeUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// DNS returns the DNS layer, or nil.
func (p *Packet) DNS() *DNS {
	if l := p.Layer(LayerTypeDNS); l != nil {
		return l.(*DNS)
	}
	return nil
}

// ApplicationPayload returns the innermost opaque payload bytes, or nil
// if the packet carries none.
func (p *Packet) ApplicationPayload() []byte {
	if l := p.Layer(LayerTypePayload); l != nil {
		return l.(*Payload).Data
	}
	return nil
}

// ErrorLayer returns the DecodeFailure layer if decoding stopped early.
func (p *Packet) ErrorLayer() *DecodeFailure {
	if l := p.Layer(LayerTypeDecodeFailure); l != nil {
		return l.(*DecodeFailure)
	}
	return nil
}

// String lists the layer summaries.
func (p *Packet) String() string {
	p.materialize()
	s := ""
	for i, l := range p.layers {
		if i > 0 {
			s += " / "
		}
		if str, ok := l.(fmt.Stringer); ok {
			s += str.String()
		} else {
			s += l.LayerType().String()
		}
	}
	return s
}
