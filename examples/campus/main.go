// Campus: a larger deployment exercising the scale machinery — 24
// devices across 8 rooms, interaction-frequency partitioning with
// hierarchical controllers, and the crowdsourced signature repository
// propagating a zero-day signature from the first victim to every
// other deployment running the same SKU.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"iotsec/internal/controller"
	"iotsec/internal/device"
	"iotsec/internal/policy"
	"iotsec/internal/sigrepo"
)

func main() {
	// --- hierarchical control plane over 8 rooms × 3 devices ---
	const rooms = 8
	var devices []string
	var edges []controller.InteractionEdge
	domain := policy.NewDomain()
	for r := 0; r < rooms; r++ {
		cam := fmt.Sprintf("room%d-cam", r)
		plug := fmt.Sprintf("room%d-plug", r)
		sensor := fmt.Sprintf("room%d-sensor", r)
		devices = append(devices, cam, plug, sensor)
		for _, d := range []string{cam, plug, sensor} {
			domain.AddDevice(d, policy.ContextNormal, policy.ContextSuspicious)
			domain.AddEnvVar(d+"_person", "yes", "no")
		}
		// In-room interactions are heavy; cross-room nearly absent.
		edges = append(edges,
			controller.InteractionEdge{A: cam, B: plug, Weight: 100},
			controller.InteractionEdge{A: cam, B: sensor, Weight: 80},
		)
	}
	edges = append(edges, controller.InteractionEdge{A: "room0-cam", B: "room7-plug", Weight: 1})

	fsm := policy.NewFSM(domain)
	envLocality := map[string]int{}
	part := controller.Partition(devices, edges, 3)
	for r := 0; r < rooms; r++ {
		cam := fmt.Sprintf("room%d-cam", r)
		plug := fmt.Sprintf("room%d-plug", r)
		fsm.AddRule(policy.Rule{
			Name:       fmt.Sprintf("room%d-gate", r),
			Conditions: []policy.Condition{policy.EnvIs(cam+"_person", "no")},
			Device:     plug,
			Posture:    policy.Posture{BlockCommands: []string{"ON"}},
			Priority:   5,
		})
		envLocality[cam+"_person"] = part.GroupOf(cam)
	}
	// One global rule: two suspicious cameras anywhere → isolate the
	// uplink-facing plugs.
	fsm.AddRule(policy.Rule{
		Name: "campus-lockdown",
		Conditions: []policy.Condition{
			policy.DeviceIs("room0-cam", policy.ContextSuspicious),
			policy.DeviceIs("room7-cam", policy.ContextSuspicious),
		},
		Device:   "room0-plug",
		Posture:  policy.Posture{Isolate: true},
		Priority: 9,
	})

	postures := 0
	hier := controller.NewHierarchy(fsm, part, envLocality, func(_ context.Context, dev string, p policy.Posture, _ uint64) {
		postures++
	})
	hier.GlobalDelay = 2 * time.Millisecond

	fmt.Printf("campus: %d devices in %d partitions (locality %.1f%%), %d local controllers\n",
		len(devices), len(part.Groups), 100*part.LocalityRatio(), hier.Locals())

	// Simulate a day of events: occupancy changes in every room.
	start := time.Now()
	const rounds = 50
	for i := 0; i < rounds; i++ {
		for r := 0; r < rooms; r++ {
			presence := "yes"
			if (i+r)%2 == 0 {
				presence = "no"
			}
			hier.HandleDeviceEvent(context.Background(), device.Event{
				Device: fmt.Sprintf("room%d-cam", r),
				Kind:   device.EventStateChange,
				Detail: "person=" + presence,
			})
		}
	}
	local, escalated := hier.Metrics()
	fmt.Printf("events: %d handled locally, %d escalated to the global controller (%.1f%%), wall %v\n",
		local, escalated, 100*float64(escalated)/float64(local+escalated), time.Since(start).Round(time.Millisecond))
	fmt.Printf("posture changes applied: %d\n\n", postures)

	// --- crowdsourced signature propagation ---
	repo := sigrepo.NewRepository("campus-salt")
	srv := sigrepo.NewServer(repo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("signature repository on %s\n", addr)

	sku := device.SmartPlugProfile().SKU
	received := make(chan sigrepo.Signature, 1)

	subscriber, err := sigrepo.DialClient(addr, "campus-b")
	if err != nil {
		log.Fatal(err)
	}
	defer subscriber.Close()
	subscriber.SetOnNotify(func(sig sigrepo.Signature, priority bool) {
		received <- sig
	})
	if err := subscriber.Subscribe(sku); err != nil {
		log.Fatal(err)
	}

	// Campus A is hit first and shares the backdoor signature.
	victim, err := sigrepo.DialClient(addr, "campus-a")
	if err != nil {
		log.Fatal(err)
	}
	defer victim.Close()
	sig, err := victim.Publish(sku,
		`block tcp any any -> any 80 (msg:"wemo backdoor token"; content:"`+device.PlugBackdoorToken+`"; sid:9001;)`,
		"observed on our plugs after a break-in attempt from 10.3.7.9")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus-a published %s (quarantined=%v, contributor=%s)\n", sig.ID, sig.Quarantined, sig.Contributor)

	// Three other deployments confirm it.
	for i := 0; i < 3; i++ {
		voter, err := sigrepo.DialClient(addr, fmt.Sprintf("campus-%c", 'c'+i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := voter.Vote(sig.ID, true); err != nil {
			log.Fatal(err)
		}
		voter.Close()
	}

	select {
	case got := <-received:
		fmt.Printf("campus-b received the cleared signature %s for %s —\n  %s\n", got.ID, got.SKU, got.Rule)
		fmt.Println("  (the description was scrubbed of internal addresses:", got.Description, ")")
	case <-time.After(3 * time.Second):
		log.Fatal("signature never propagated")
	}
}
