package mbox

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iotsec/internal/packet"
)

// countElem is a trivially cheap element for race tests.
type countElem struct {
	name string
	hits atomic.Uint64
}

func (c *countElem) Name() string               { return c.name }
func (c *countElem) Process(ctx *Context) Verdict { c.hits.Add(1); return Forward }

// TestPipelineReconfigureUnderTraffic hammers Process from several
// goroutines while the chain is replaced, inserted into and pruned
// concurrently. Run under -race this proves the lock-free forwarding
// path and the copy-on-write reconfiguration never tear.
func TestPipelineReconfigureUnderTraffic(t *testing.T) {
	p := NewPipeline(&countElem{name: "a"}, &countElem{name: "b"})
	frame := buildMgmtFrame(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx := &Context{Frame: frame, Packet: packet.Decode(frame, packet.LayerTypeEthernet)}
				if v := p.Process(ctx); v != Forward {
					t.Errorf("verdict = %v", v)
					return
				}
			}
		}()
	}

	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			p.Replace(&countElem{name: "a"}, &countElem{name: "b"}, &countElem{name: "c"})
		case 1:
			p.Insert(1, &countElem{name: "d"})
		case 2:
			p.Remove("d")
		}
		_ = p.Stats()
		_ = p.Elements()
	}
	// Let the workers land some traffic before tearing down — the
	// reconfiguration loop above can finish before they are even
	// scheduled.
	deadline := time.Now().Add(2 * time.Second)
	for totalProcessed(p) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if p.Reconfigs() != 300 {
		t.Fatalf("reconfigs = %d, want 300", p.Reconfigs())
	}
	if totalProcessed(p) == 0 {
		t.Fatal("no element saw traffic")
	}
}

// totalProcessed sums the per-element processed counters.
func totalProcessed(p *Pipeline) uint64 {
	var total uint64
	for _, st := range p.Stats() {
		total += st.Processed
	}
	return total
}

// buildMgmtFrame assembles a minimal TCP frame the pipeline can parse.
func buildMgmtFrame(t *testing.T) []byte {
	t.Helper()
	src, dst := packet.MustParseIPv4("10.0.0.1"), packet.MustParseIPv4("10.0.0.2")
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 8883, Flags: packet.TCPPsh | packet.TCPAck}
	tcp.SetNetworkForChecksum(src, dst)
	b := packet.NewSerializeBuffer()
	err := packet.SerializeLayers(b,
		&packet.Ethernet{
			SrcMAC:    packet.MACAddress{1, 2, 3, 4, 5, 6},
			DstMAC:    packet.MACAddress{6, 5, 4, 3, 2, 1},
			EtherType: packet.EtherTypeIPv4,
		},
		&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: packet.IPProtocolTCP},
		tcp, packet.NewPayload([]byte("IOT/1 STATUS")),
	)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, b.Len())
	copy(frame, b.Bytes())
	return frame
}
