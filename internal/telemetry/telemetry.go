// Package telemetry is IoTSec's zero-dependency observability
// subsystem: a metrics registry (lock-free counters and gauges,
// sharded histograms, labeled vectors with a copy-on-write index), a
// lightweight tracing facility (context-carried spans with a bounded
// ring-buffer store), and exposition (Prometheus text format, JSON
// snapshots, periodic flush hooks).
//
// Design constraints, in order:
//
//  1. The hot path must stay hot. A counter increment is one
//     uncontended atomic add (< 20ns); a histogram observation is an
//     atomic add into a stack-address-sharded, padded shard. Nothing
//     on the write path takes a lock or allocates.
//  2. Scrapes are concurrent-safe and non-blocking for writers:
//     readers only issue atomic loads; vectors publish their label
//     index with copy-on-write so lookups are a single atomic pointer
//     load.
//  3. stdlib only. No client_golang, no OpenTelemetry.
//
// Metric naming follows the convention
//
//	iotsec_<pkg>_<name>_<unit>
//
// e.g. iotsec_mbox_element_latency_seconds. Counters end in _total.
// Every package that owns a hot path declares its metrics as
// package-level vars in a metrics.go, registered on Default at init.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a metric for exposition.
type Kind string

// Metric kinds (Prometheus TYPE names).
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Labels is an ordered label set rendered as {k1="v1",k2="v2"}.
type Labels []Label

// Label is one key/value pair.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String renders the Prometheus label block (empty for no labels).
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	out := "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return out + "}"
}

func escapeLabel(v string) string {
	// Prometheus label values escape backslash, quote and newline.
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// Sample is one exposable time-series point. Histograms expand into
// several samples (_bucket, _sum, _count) sharing the metric's base
// name via Suffix.
type Sample struct {
	// Suffix is appended to the metric name ("" for plain metrics,
	// "_bucket"/"_sum"/"_count" for histogram components).
	Suffix string
	Labels Labels
	Value  float64
}

// Metric is anything the registry can expose.
type Metric interface {
	// MetricName returns the fully qualified name
	// (iotsec_<pkg>_<name>_<unit>).
	MetricName() string
	// MetricHelp returns the one-line description.
	MetricHelp() string
	// MetricKind returns the exposition TYPE.
	MetricKind() Kind
	// Samples snapshots the current value(s). Implementations must be
	// safe to call concurrently with writers.
	Samples() []Sample
}

// Collector emits free-form samples at scrape time — used for
// instance-scoped state (per-port stats, partition sizes, cluster
// capacity) that is cheaper to walk on demand than to mirror into
// metrics on every change.
type Collector func(emit func(name string, kind Kind, help string, labels Labels, value float64))

// Registry holds metrics and collectors and exposes them. The zero
// value is not usable; call NewRegistry (or use Default).
type Registry struct {
	mu         sync.RWMutex
	metrics    map[string]Metric
	order      []string            // registration order of metric names
	collectors map[string]Collector // by collector ID (replace-on-reregister)
	collOrder  []string

	spans  *SpanStore
	health *HealthRegistry
}

// NewRegistry builds an empty registry with a default span store
// (capacity 1024, sample every trace) and an empty component-health
// aggregator whose gauges ride on every scrape.
func NewRegistry() *Registry {
	r := &Registry{
		metrics:    make(map[string]Metric),
		collectors: make(map[string]Collector),
		spans:      NewSpanStore(1024, 1),
		health:     NewHealthRegistry(),
	}
	r.RegisterCollector("component-health", healthCollector(r.health))
	return r
}

// Default is the process-wide registry that package-level metrics
// register on and that cmd binaries expose.
var Default = NewRegistry()

// Register adds a metric. Registering a second metric under an
// existing name returns the already-registered one when the kinds
// agree (so idempotent package init and tests are safe) and panics on
// a kind mismatch, which is always a programming error.
func (r *Registry) Register(m Metric) Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[m.MetricName()]; ok {
		if prev.MetricKind() != m.MetricKind() {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)",
				m.MetricName(), m.MetricKind(), prev.MetricKind()))
		}
		return prev
	}
	r.metrics[m.MetricName()] = m
	r.order = append(r.order, m.MetricName())
	return m
}

// RegisterCollector installs (or replaces) a scrape-time collector
// under the given ID. Instance-scoped exporters use an instance-unique
// ID so a rebuilt instance cleanly supersedes its predecessor.
func (r *Registry) RegisterCollector(id string, c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.collectors[id]; !ok {
		r.collOrder = append(r.collOrder, id)
	}
	r.collectors[id] = c
}

// UnregisterCollector removes a collector.
func (r *Registry) UnregisterCollector(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.collectors[id]; ok {
		delete(r.collectors, id)
		for i, cid := range r.collOrder {
			if cid == id {
				r.collOrder = append(r.collOrder[:i], r.collOrder[i+1:]...)
				break
			}
		}
	}
}

// Spans returns the registry's span store.
func (r *Registry) Spans() *SpanStore { return r.spans }

// snapshotMetrics lists registered metrics in registration order plus
// collector output, flattened into families.
func (r *Registry) families() []family {
	r.mu.RLock()
	metrics := make([]Metric, 0, len(r.order))
	for _, name := range r.order {
		metrics = append(metrics, r.metrics[name])
	}
	collectors := make([]Collector, 0, len(r.collOrder))
	for _, id := range r.collOrder {
		collectors = append(collectors, r.collectors[id])
	}
	r.mu.RUnlock()

	byName := make(map[string]*family)
	var order []string
	add := func(name string, kind Kind, help string, s Sample) {
		f, ok := byName[name]
		if !ok {
			f = &family{Name: name, Kind: kind, Help: help}
			byName[name] = f
			order = append(order, name)
		}
		f.Samples = append(f.Samples, s)
	}
	for _, m := range metrics {
		for _, s := range m.Samples() {
			add(m.MetricName(), m.MetricKind(), m.MetricHelp(), s)
		}
	}
	for _, c := range collectors {
		c(func(name string, kind Kind, help string, labels Labels, value float64) {
			add(name, kind, help, Sample{Labels: labels, Value: value})
		})
	}
	// Collector samples for the same family must be deterministic for
	// scrape diffing; sort within each family by labels.
	for _, name := range order {
		f := byName[name]
		sort.SliceStable(f.Samples, func(i, j int) bool {
			if f.Samples[i].Suffix != f.Samples[j].Suffix {
				return f.Samples[i].Suffix < f.Samples[j].Suffix
			}
			return f.Samples[i].Labels.String() < f.Samples[j].Labels.String()
		})
	}
	out := make([]family, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// family groups one metric name's samples for exposition.
type family struct {
	Name    string
	Kind    Kind
	Help    string
	Samples []Sample
}

// --- construction helpers (Default registry) ---

// meta carries the identity shared by all metric types.
type meta struct {
	name string
	help string
}

func (m meta) MetricName() string { return m.name }
func (m meta) MetricHelp() string { return m.help }

// NewCounter registers a counter on Default.
func NewCounter(name, help string) *Counter {
	return Default.NewCounter(name, help)
}

// NewGauge registers a gauge on Default.
func NewGauge(name, help string) *Gauge {
	return Default.NewGauge(name, help)
}

// NewCounterVec registers a labeled counter vector on Default.
func NewCounterVec(name, help string, labelKeys ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labelKeys...)
}

// NewGaugeVec registers a labeled gauge vector on Default.
func NewGaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labelKeys...)
}

// NewHistogram registers a histogram on Default.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.NewHistogram(name, help, bounds)
}

// NewHistogramVec registers a labeled histogram vector on Default.
func NewHistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, bounds, labelKeys...)
}

// NewCounter registers a counter on r.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.Register(&Counter{meta: meta{name, help}}).(*Counter)
}

// NewGauge registers a gauge on r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.Register(&Gauge{meta: meta{name, help}}).(*Gauge)
}

// NewCounterVec registers a labeled counter vector on r.
func (r *Registry) NewCounterVec(name, help string, labelKeys ...string) *CounterVec {
	v := &CounterVec{meta: meta{name, help}, keys: labelKeys}
	v.idx.Store(&map[string]*Counter{})
	return r.Register(v).(*CounterVec)
}

// NewGaugeVec registers a labeled gauge vector on r.
func (r *Registry) NewGaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	v := &GaugeVec{meta: meta{name, help}, keys: labelKeys}
	v.idx.Store(&map[string]*Gauge{})
	return r.Register(v).(*GaugeVec)
}

// NewHistogram registers a histogram on r.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.Register(newHistogram(meta{name, help}, bounds)).(*Histogram)
}

// NewHistogramVec registers a labeled histogram vector on r.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	v := &HistogramVec{meta: meta{name, help}, keys: labelKeys, bounds: bounds}
	v.idx.Store(&map[string]*Histogram{})
	return r.Register(v).(*HistogramVec)
}

// Timer measures one operation into a histogram:
//
//	defer telemetry.Time(h)()
func Time(h *Histogram) func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// compile-time interface checks
var (
	_ Metric = (*Counter)(nil)
	_ Metric = (*Gauge)(nil)
	_ Metric = (*CounterVec)(nil)
	_ Metric = (*GaugeVec)(nil)
	_ Metric = (*Histogram)(nil)
	_ Metric = (*HistogramVec)(nil)
)

// atomicFloat64 adds float64s with CAS (used only off the per-sample
// fast path or behind shards).
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := floatBits(floatFrom(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return floatFrom(f.bits.Load()) }
