// Package controller implements the IoTSec control plane (§5.1): a
// context monitor that folds device events, anomaly alerts and
// environment readings into a global system-state view; a versioned
// store giving the strong consistency critical security state needs;
// interaction-frequency partitioning; and the hierarchical
// local/global controller split that keeps frequent interactions off
// the global coordination path.
package controller

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"iotsec/internal/device"
	"iotsec/internal/ids"
	"iotsec/internal/journal"
	"iotsec/internal/policy"
	"iotsec/internal/telemetry"
)

// ViewChange describes one state-variable update.
type ViewChange struct {
	// Var uses the policy convention: "dev:<name>" or "env:<name>".
	Var string
	// Value is the new context/level.
	Value string
	// Version is the store version that carried the change.
	Version uint64
	// Reason explains the transition (event kind, alert sid, ...).
	Reason string
	When   time.Time
	// TraceID is the causal chain that carried the change (0 when the
	// mutation arrived outside any trace).
	TraceID uint64
}

// ViewObserver is notified of committed changes in order, under the
// context (and therefore trace) that carried the mutation. Must not
// block.
type ViewObserver func(ctx context.Context, c ViewChange)

// View is the context monitor: the authoritative, versioned global
// system state Sk. All mutations flow through the embedded versioned
// store, so observers see a single total order — the consistency §5.1
// demands for critical security state.
type View struct {
	store *Store

	mu        sync.RWMutex
	contexts  map[string]policy.SecurityContext
	env       map[string]string
	observers []ViewObserver

	// escalation policy knobs
	// BruteForceThreshold flips a device to suspicious after this
	// many consecutive auth failures (default 5).
	BruteForceThreshold int
	failures            map[string]int
}

// NewView builds an empty view.
func NewView() *View {
	v := &View{
		store:               NewStore(),
		contexts:            make(map[string]policy.SecurityContext),
		env:                 make(map[string]string),
		BruteForceThreshold: 5,
		failures:            make(map[string]int),
	}
	return v
}

// Observe registers a change observer.
func (v *View) Observe(o ViewObserver) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.observers = append(v.observers, o)
}

// SetDeviceContext transitions a device's security context. ctx
// carries the causal trace of whatever triggered the transition.
func (v *View) SetDeviceContext(ctx context.Context, deviceName string, sc policy.SecurityContext, reason string) {
	v.apply(ctx, "dev:"+deviceName, string(sc), reason)
}

// SetEnv commits an environment level.
func (v *View) SetEnv(ctx context.Context, envVar, level, reason string) {
	v.apply(ctx, "env:"+envVar, level, reason)
}

// apply commits a change through the store and notifies observers.
func (v *View) apply(ctx context.Context, varName, value, reason string) {
	v.mu.Lock()
	// Idempotence: unchanged values do not spam observers.
	var old string
	if name, ok := strings.CutPrefix(varName, "dev:"); ok {
		old = string(v.contexts[name])
	} else if name, ok := strings.CutPrefix(varName, "env:"); ok {
		old = v.env[name]
	}
	if old == value {
		v.mu.Unlock()
		return
	}
	version := v.store.Put(varName, value)
	if name, ok := strings.CutPrefix(varName, "dev:"); ok {
		v.contexts[name] = policy.SecurityContext(value)
	} else if name, ok := strings.CutPrefix(varName, "env:"); ok {
		v.env[name] = value
	}
	observers := append([]ViewObserver(nil), v.observers...)
	v.mu.Unlock()

	mViewChanges.Inc()
	change := ViewChange{
		Var: varName, Value: value, Version: version, Reason: reason,
		When: time.Now(), TraceID: telemetry.TraceID(ctx),
	}
	device := ""
	if name, ok := strings.CutPrefix(varName, "dev:"); ok {
		device = name
	}
	journal.Record(ctx, journal.TypeViewChange, journal.Debug, device,
		fmt.Sprintf("v%d %s = %s (%s)", version, varName, value, reason))
	for _, o := range observers {
		o(ctx, change)
	}
}

// DeviceContext reads a device's context (normal when unknown).
func (v *View) DeviceContext(deviceName string) policy.SecurityContext {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.contexts[deviceName]; ok {
		return c
	}
	return policy.ContextNormal
}

// Env reads an environment level.
func (v *View) Env(envVar string) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.env[envVar]
}

// Vars snapshots every committed variable in store convention
// ("dev:<name>" / "env:<name>" → value) — the checkpointable state.
func (v *View) Vars() map[string]string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]string, len(v.contexts)+len(v.env))
	for dev, sc := range v.contexts {
		out["dev:"+dev] = string(sc)
	}
	for name, val := range v.env {
		out["env:"+name] = val
	}
	return out
}

// Restore bulk-loads variables into the view WITHOUT notifying
// observers — recovery seeding from a checkpoint, where the caller
// runs one explicit reconcile afterwards instead of paying one
// reconcile per restored variable. Unchanged values are skipped
// (idempotent, so checkpoint + journal-replay overlap is harmless);
// variables are applied in sorted order so a rebuilt store assigns
// versions deterministically. Returns the store version after the
// load.
func (v *View) Restore(vars map[string]string) uint64 {
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, varName := range keys {
		value := vars[varName]
		if name, ok := strings.CutPrefix(varName, "dev:"); ok {
			if string(v.contexts[name]) == value {
				continue
			}
			v.store.Put(varName, value)
			v.contexts[name] = policy.SecurityContext(value)
		} else if name, ok := strings.CutPrefix(varName, "env:"); ok {
			if v.env[name] == value {
				continue
			}
			v.store.Put(varName, value)
			v.env[name] = value
		}
	}
	return v.store.Version()
}

// State materializes the current policy.State.
func (v *View) State() policy.State {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := policy.NewState()
	for dev, ctx := range v.contexts {
		s.Contexts[dev] = ctx
	}
	for k, val := range v.env {
		s.Env[k] = val
	}
	return s
}

// Version reports the store's current version.
func (v *View) Version() uint64 { return v.store.Version() }

// HandleDeviceEvent folds a device event into the view, applying the
// standard escalation rules:
//
//   - backdoor access → suspicious immediately (Figure 3's trigger)
//   - ≥ BruteForceThreshold consecutive auth failures → suspicious
//   - device state changes surface as env variables
//     "<device>_<attr>" so policies can condition on them
func (v *View) HandleDeviceEvent(ctx context.Context, e device.Event) {
	switch e.Kind {
	case device.EventBackdoorAccess:
		v.SetDeviceContext(ctx, e.Device, policy.ContextSuspicious, "backdoor access: "+e.Detail)
	case device.EventAuthFailure:
		v.mu.Lock()
		v.failures[e.Device]++
		n := v.failures[e.Device]
		threshold := v.BruteForceThreshold
		v.mu.Unlock()
		if n >= threshold {
			v.SetDeviceContext(ctx, e.Device, policy.ContextSuspicious,
				fmt.Sprintf("brute force: %d consecutive auth failures", n))
		}
	case device.EventAuthSuccess:
		v.mu.Lock()
		v.failures[e.Device] = 0
		v.mu.Unlock()
	case device.EventStateChange, device.EventSensor:
		if attr, val, ok := strings.Cut(e.Detail, "="); ok {
			v.SetEnv(ctx, e.Device+"_"+attr, val, "device report")
		}
	}
}

// HandleAlert folds an IDS alert into the view: any signature match
// against a device marks it suspicious; block-action matches mark it
// compromised.
func (v *View) HandleAlert(ctx context.Context, deviceName string, a ids.Alert) {
	sc := policy.ContextSuspicious
	if a.Action == ids.ActionBlock {
		sc = policy.ContextCompromised
	}
	v.SetDeviceContext(ctx, deviceName, sc, fmt.Sprintf("ids sid=%d %s", a.SID, a.Msg))
}

// HandleAnomaly folds an anomaly detection into the view.
func (v *View) HandleAnomaly(ctx context.Context, a ids.Anomaly) {
	v.SetDeviceContext(ctx, a.Device, policy.ContextSuspicious,
		fmt.Sprintf("anomaly %s: %s", a.Kind, a.Detail))
}
