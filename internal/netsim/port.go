// Package netsim provides a virtual switched network: nodes attach
// through ports, ports are wired together by links with configurable
// latency and loss, and frames are delivered asynchronously on
// per-port goroutines. On top of the raw fabric it offers an SDN
// switch node (programmable via the openflow package) and a miniature
// host stack (ARP, UDP, reliable message streams) that the emulated
// IoT devices, µmboxes and attackers all share.
package netsim

import (
	"sync"
	"sync/atomic"
)

// Frame is a raw L2 frame on the virtual wire.
type Frame []byte

// Node is anything that can terminate ports: a switch, a host, a
// middlebox instance.
type Node interface {
	// NodeName returns a unique, human-readable identifier.
	NodeName() string
	// HandleFrame processes a frame arriving on one of the node's
	// ports. It runs on the port's delivery goroutine.
	HandleFrame(ingress *Port, frame Frame)
}

// PortStats counts traffic through one port.
type PortStats struct {
	TxFrames, TxBytes     uint64
	RxFrames, RxBytes     uint64
	DropsQueue, DropsLoss uint64
}

// Port is a node's attachment point. A port delivers received frames
// to its owner via a dedicated goroutine, so nodes never block each
// other.
type Port struct {
	// ID is the port number within its owner (1-based, OpenFlow
	// style).
	ID    uint16
	owner Node
	// link is set when the port is wired; atomic because wiring may
	// happen while the fabric is live.
	link atomic.Pointer[Link]

	// act, when set, is the owning network's in-flight accounting used
	// by Network.Quiesce (nil for ports built outside a Network).
	act *activity

	inbox chan Frame
	stats struct {
		txFrames, txBytes     atomic.Uint64
		rxFrames, rxBytes     atomic.Uint64
		dropsQueue, dropsLoss atomic.Uint64
	}

	closeOnce sync.Once
	closed    chan struct{}
}

// newPort allocates a port with the given queue depth.
func newPort(owner Node, id uint16, queueLen int) *Port {
	if queueLen <= 0 {
		queueLen = 256
	}
	return &Port{
		ID:     id,
		owner:  owner,
		inbox:  make(chan Frame, queueLen),
		closed: make(chan struct{}),
	}
}

// Owner returns the node this port belongs to.
func (p *Port) Owner() Node { return p.owner }

// Peer returns the port at the other end of the link, or nil if
// unwired.
func (p *Port) Peer() *Port {
	l := p.link.Load()
	if l == nil {
		return nil
	}
	if l.a == p {
		return l.b
	}
	return l.a
}

// Send transmits a frame out of this port toward the link peer. The
// frame buffer must not be modified by the caller afterwards. Frames
// sent on an unwired or closed port are silently dropped, as on real
// hardware.
func (p *Port) Send(frame Frame) {
	p.stats.txFrames.Add(1)
	p.stats.txBytes.Add(uint64(len(frame)))
	l := p.link.Load()
	if l == nil {
		return
	}
	peer := l.b
	if peer == p {
		peer = l.a
	}
	l.deliver(p, peer, frame)
}

// enqueue places a frame in the inbox, dropping on overflow. The
// frame is accounted as in-flight until the owner handles it (or it
// is dropped), so Network.Quiesce sees queued work.
func (p *Port) enqueue(frame Frame) {
	if p.act != nil {
		p.act.add(1)
	}
	select {
	case <-p.closed:
		if p.act != nil {
			p.act.add(-1)
		}
	case p.inbox <- frame:
		return
	default:
		if p.act != nil {
			p.act.add(-1)
		}
		p.stats.dropsQueue.Add(1)
		mQueueDrops.Inc()
	}
}

// run pumps the inbox into the owner until the port closes.
func (p *Port) run() {
	mPortsOpen.Inc()
	defer mPortsOpen.Dec()
	for {
		select {
		case <-p.closed:
			// Frames already queued will never be delivered; release
			// their in-flight accounting.
			for {
				select {
				case <-p.inbox:
					if p.act != nil {
						p.act.add(-1)
					}
				default:
					return
				}
			}
		case f := <-p.inbox:
			p.stats.rxFrames.Add(1)
			p.stats.rxBytes.Add(uint64(len(f)))
			p.owner.HandleFrame(p, f)
			if p.act != nil {
				p.act.add(-1)
			}
		}
	}
}

// close stops delivery.
func (p *Port) close() {
	p.closeOnce.Do(func() { close(p.closed) })
}

// Stats snapshots the port counters.
func (p *Port) Stats() PortStats {
	return PortStats{
		TxFrames:   p.stats.txFrames.Load(),
		TxBytes:    p.stats.txBytes.Load(),
		RxFrames:   p.stats.rxFrames.Load(),
		RxBytes:    p.stats.rxBytes.Load(),
		DropsQueue: p.stats.dropsQueue.Load(),
		DropsLoss:  p.stats.dropsLoss.Load(),
	}
}
