package sigrepo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// snapshotState is the on-disk form of a repository.
type snapshotState struct {
	NextID     int                        `json:"next_id"`
	Signatures []Signature                `json:"signatures"`
	Votes      map[string]map[string]bool `json:"votes"`
	Reputation map[string]float64         `json:"reputation"`
}

// ExportJSON writes the repository's full state (signatures including
// quarantine status and scores, votes, contributor reputations).
func (r *Repository) ExportJSON(w io.Writer) error {
	r.mu.Lock()
	state := snapshotState{
		NextID: r.nextID,
		Votes:  make(map[string]map[string]bool, len(r.votes)),
	}
	for _, s := range r.byID {
		state.Signatures = append(state.Signatures, *s)
	}
	for id, votes := range r.votes {
		if _, live := r.byID[id]; !live {
			continue
		}
		cp := make(map[string]bool, len(votes))
		for k, v := range votes {
			cp[k] = v
		}
		state.Votes[id] = cp
	}
	r.mu.Unlock()

	r.rep.mu.Lock()
	state.Reputation = make(map[string]float64, len(r.rep.score))
	for k, v := range r.rep.score {
		state.Reputation[k] = v
	}
	r.rep.mu.Unlock()

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(state)
}

// ImportJSON replaces the repository's state with a previously
// exported snapshot. Subscriptions are not part of the state (they
// belong to live connections).
func (r *Repository) ImportJSON(rd io.Reader) error {
	var state snapshotState
	if err := json.NewDecoder(rd).Decode(&state); err != nil {
		return fmt.Errorf("sigrepo: import: %w", err)
	}
	r.mu.Lock()
	r.nextID = state.NextID
	r.bySKU = make(map[string][]*Signature)
	r.byID = make(map[string]*Signature)
	r.votes = make(map[string]map[string]bool)
	for i := range state.Signatures {
		s := state.Signatures[i]
		cp := s
		r.byID[s.ID] = &cp
		r.bySKU[s.SKU] = append(r.bySKU[s.SKU], &cp)
		r.contrib[s.Contributor] = true
	}
	for id, votes := range state.Votes {
		if _, live := r.byID[id]; !live {
			continue
		}
		cp := make(map[string]bool, len(votes))
		for k, v := range votes {
			cp[k] = v
		}
		r.votes[id] = cp
	}
	// Signatures without recorded votes still need a vote map.
	for id := range r.byID {
		if r.votes[id] == nil {
			r.votes[id] = make(map[string]bool)
		}
	}
	r.mu.Unlock()

	r.rep.mu.Lock()
	r.rep.score = make(map[string]float64, len(state.Reputation))
	for k, v := range state.Reputation {
		r.rep.score[k] = v
	}
	r.rep.mu.Unlock()
	return nil
}

// SaveFile / LoadFile are path conveniences for the daemon.
func (r *Repository) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.ExportJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores state from a snapshot file.
func (r *Repository) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.ImportJSON(f)
}
