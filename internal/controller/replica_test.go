package controller

import (
	"testing"
	"time"
)

func TestReplicaLagVisibility(t *testing.T) {
	r := NewReplica(100 * time.Millisecond)
	base := time.Now()
	r.Offer(Update{Key: "occupancy", Value: "away", Version: 1}, base)

	// Before the lag elapses the update is invisible.
	r.AdvanceTo(base.Add(50 * time.Millisecond))
	if _, _, ok := r.Get("occupancy"); ok {
		t.Fatal("update visible before lag")
	}
	if r.Staleness() != 1 {
		t.Errorf("staleness = %d", r.Staleness())
	}
	// After the lag it appears.
	r.AdvanceTo(base.Add(100 * time.Millisecond))
	v, ver, ok := r.Get("occupancy")
	if !ok || v != "away" || ver != 1 {
		t.Errorf("get = %q v%d %v", v, ver, ok)
	}
}

func TestReplicaVersionOrderingUnderReordering(t *testing.T) {
	r := NewReplica(10 * time.Millisecond)
	base := time.Now()
	// Offers arrive out of order (network reordering); the replica
	// must still end with the highest version.
	r.Offer(Update{Key: "k", Value: "new", Version: 5}, base)
	r.Offer(Update{Key: "k", Value: "old", Version: 3}, base)
	r.AdvanceTo(base.Add(time.Second))
	v, ver, _ := r.Get("k")
	if v != "new" || ver != 5 {
		t.Errorf("replica regressed: %q v%d", v, ver)
	}
	// A later-arriving stale version never overwrites.
	r.Offer(Update{Key: "k", Value: "ancient", Version: 2}, base)
	r.AdvanceTo(base.Add(2 * time.Second))
	if v, _, _ := r.Get("k"); v != "new" {
		t.Errorf("stale overwrite: %q", v)
	}
}

func TestReplicaFollowStoreLive(t *testing.T) {
	s := NewStore()
	r := NewReplica(5 * time.Millisecond)
	stop := r.FollowStore(s)
	defer stop()

	s.Put("x", "1")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _, ok := r.Get("x"); ok && v == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never converged")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
