package core

import (
	"testing"

	"iotsec/internal/device"
	"iotsec/internal/packet"
	"iotsec/internal/policy"
)

func TestAdminInterface(t *testing.T) {
	d := policy.NewDomain()
	d.AddDevice("cam", policy.ContextNormal, policy.ContextCompromised)
	f := policy.NewFSM(d)
	f.AddRule(policy.Rule{
		Name:       "quarantine",
		Conditions: []policy.Condition{policy.DeviceIs("cam", policy.ContextCompromised)},
		Device:     "cam",
		Posture:    policy.Posture{Isolate: true},
		Priority:   10,
	})
	p, err := New(Options{Policy: f})
	if err != nil {
		t.Fatal(err)
	}
	cam := device.NewCamera("cam", packet.MustParseIPv4("10.0.0.10"))
	if _, err := p.AddDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	admin, addr, err := p.ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	// status
	resp, err := AdminCall(addr, AdminRequest{Op: "status"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Devices) != 1 || resp.Devices[0].Name != "cam" {
		t.Fatalf("devices = %+v", resp.Devices)
	}
	if resp.Devices[0].Context != "normal" {
		t.Errorf("context = %s", resp.Devices[0].Context)
	}
	if resp.Boots != 1 {
		t.Errorf("boots = %d", resp.Boots)
	}

	// env + set-env
	resp, err = AdminCall(addr, AdminRequest{Op: "env"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Env["temperature"]; !ok {
		t.Errorf("env = %v", resp.Env)
	}
	if _, err := AdminCall(addr, AdminRequest{Op: "set-env", Var: "occupancy", Value: "0"}); err != nil {
		t.Fatal(err)
	}
	if p.Env.Get("occupancy") != 0 {
		t.Error("set-env had no effect")
	}

	// set-context drives real enforcement.
	if _, err := AdminCall(addr, AdminRequest{Op: "set-context", Device: "cam", Value: "compromised"}); err != nil {
		t.Fatal(err)
	}
	resp, err = AdminCall(addr, AdminRequest{Op: "status"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Devices[0].Context != "compromised" || resp.Devices[0].Posture != "ISOLATE" {
		t.Errorf("after set-context: %+v", resp.Devices[0])
	}

	// error paths
	if _, err := AdminCall(addr, AdminRequest{Op: "set-context", Device: "cam", Value: "bogus"}); err == nil {
		t.Error("bogus context accepted")
	}
	if _, err := AdminCall(addr, AdminRequest{Op: "nonsense"}); err == nil {
		t.Error("unknown op accepted")
	}
}
