package mbox

import (
	"sync"

	"iotsec/internal/device"
)

// PasswordProxy is the Figure 4 µmbox: it "patches" a device whose
// factory credentials cannot be changed. Clients must present the
// administrator-chosen credentials; the proxy rewrites accepted
// requests to carry the device's factory credentials (so the device
// accepts them) and tears down unauthorized sessions with a forged
// RST. The hardcoded password still exists on the device — but nothing
// carrying it from the network ever reaches the device unless it came
// through the proxy's check.
type PasswordProxy struct {
	mu sync.RWMutex
	// required is what clients must present.
	requiredUser, requiredPass string
	// factory is what the device actually accepts.
	factoryUser, factoryPass string

	accepted, rejected uint64
}

// NewPasswordProxy builds the proxy.
//
// requiredUser/requiredPass: the new administrator-chosen credentials.
// factoryUser/factoryPass: the device's unremovable factory account.
func NewPasswordProxy(requiredUser, requiredPass, factoryUser, factoryPass string) *PasswordProxy {
	return &PasswordProxy{
		requiredUser: requiredUser, requiredPass: requiredPass,
		factoryUser: factoryUser, factoryPass: factoryPass,
	}
}

// Name implements Element.
func (p *PasswordProxy) Name() string { return "password-proxy" }

// SetCredentials rotates the administrator credentials live.
func (p *PasswordProxy) SetCredentials(user, pass string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requiredUser, p.requiredPass = user, pass
}

// Counters reports accepted and rejected requests.
func (p *PasswordProxy) Counters() (accepted, rejected uint64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.accepted, p.rejected
}

// Process implements Element.
func (p *PasswordProxy) Process(ctx *Context) Verdict {
	if ctx.Dir != ToDevice {
		return Forward
	}
	tcp := ctx.Packet.TCP()
	if tcp == nil || tcp.DstPort != device.MgmtPort || len(tcp.LayerPayload()) == 0 {
		return Forward // handshake segments, ACKs, other ports
	}
	req, err := device.ParseRequest(tcp.LayerPayload())
	if err != nil {
		return Forward // not management protocol; other elements decide
	}

	p.mu.RLock()
	okCreds := req.User == p.requiredUser && req.Pass == p.requiredPass
	factoryUser, factoryPass := p.factoryUser, p.factoryPass
	p.mu.RUnlock()

	if !okCreds {
		p.mu.Lock()
		p.rejected++
		p.mu.Unlock()
		// Kill the session so the client sees an immediate refusal
		// rather than a timeout.
		if rst, err := forgeRST(ctx.Packet); err == nil && ctx.Inject != nil {
			ctx.Inject(rst)
		}
		return Drop
	}

	// Authorized: translate to the factory credentials the device
	// still demands.
	req.User, req.Pass = factoryUser, factoryPass
	frame, err := rewriteTCPPayload(ctx.Packet, req.Encode())
	if err != nil {
		return Drop
	}
	p.mu.Lock()
	p.accepted++
	p.mu.Unlock()
	ctx.Frame = frame
	ctx.Reparse = true
	return Forward
}

// ContextGate is the Figure 5 µmbox: it blocks specific management
// commands to a device unless the controller-supplied context
// predicate approves. The controller wires Allowed to its global view
// (e.g., "person in the room"), updating the gate as the world
// changes.
type ContextGate struct {
	mu sync.RWMutex
	// guarded maps command → whether it is currently allowed; the
	// predicate answers for guarded commands.
	guarded map[string]bool
	// Allowed decides whether a guarded command may pass right now.
	allowed func(cmd string) bool
	// OnBlock is notified of enforcement actions; may be nil.
	OnBlock func(cmd string)

	blocked uint64
}

// NewContextGate guards the given commands with the predicate.
func NewContextGate(allowed func(cmd string) bool, guardedCmds ...string) *ContextGate {
	g := &ContextGate{guarded: make(map[string]bool), allowed: allowed}
	for _, c := range guardedCmds {
		g.guarded[c] = true
	}
	return g
}

// Name implements Element.
func (g *ContextGate) Name() string { return "context-gate" }

// SetPredicate swaps the context predicate live.
func (g *ContextGate) SetPredicate(allowed func(cmd string) bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.allowed = allowed
}

// Blocked reports enforcement count.
func (g *ContextGate) Blocked() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.blocked
}

// Process implements Element.
func (g *ContextGate) Process(ctx *Context) Verdict {
	if ctx.Dir != ToDevice {
		return Forward
	}
	tcp := ctx.Packet.TCP()
	if tcp == nil || tcp.DstPort != device.MgmtPort || len(tcp.LayerPayload()) == 0 {
		return Forward
	}
	req, err := device.ParseRequest(tcp.LayerPayload())
	if err != nil {
		return Forward
	}
	g.mu.RLock()
	isGuarded := g.guarded[req.Cmd]
	allowed := g.allowed
	onBlock := g.OnBlock
	g.mu.RUnlock()
	if !isGuarded || (allowed != nil && allowed(req.Cmd)) {
		return Forward
	}
	g.mu.Lock()
	g.blocked++
	g.mu.Unlock()
	if onBlock != nil {
		onBlock(req.Cmd)
	}
	if rst, err := forgeRST(ctx.Packet); err == nil && ctx.Inject != nil {
		ctx.Inject(rst)
	}
	return Drop
}
