package ids

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"iotsec/internal/packet"
)

func TestParseRuleFull(t *testing.T) {
	r, err := ParseRule(`alert tcp any any -> 10.0.0.0/24 80 (msg:"admin login attempt"; content:"admin"; nocase; content:"login"; sid:1001;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Action != ActionAlert || r.Proto != ProtoTCP {
		t.Errorf("head = %s %s", r.Action, r.Proto)
	}
	if !r.SrcIP.Any || !r.SrcPort.Any {
		t.Error("src should be any/any")
	}
	if r.DstIP.Any || r.DstIP.Prefix != 24 || r.DstPort.Port != 80 {
		t.Errorf("dst = %+v %+v", r.DstIP, r.DstPort)
	}
	if r.Msg != "admin login attempt" || r.SID != 1001 {
		t.Errorf("options: msg=%q sid=%d", r.Msg, r.SID)
	}
	if len(r.Contents) != 2 || !r.Contents[0].NoCase || r.Contents[1].NoCase {
		t.Errorf("contents = %+v", r.Contents)
	}
	// nocase contents stored lowercased
	if string(r.Contents[0].Pattern) != "admin" {
		t.Errorf("pattern = %q", r.Contents[0].Pattern)
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"alert tcp any any => any 80 (sid:1;)",   // bad direction
		"alert icmp any any -> any 80 (sid:1;)",  // unsupported proto
		"drop tcp any any -> any 80 (sid:1;)",    // unknown action
		"alert tcp 300.0.0.1 any -> any 80 ()",   // bad IP
		"alert tcp any 99999 -> any 80 (sid:1;)", // bad port
		"alert tcp any any -> any 80 (nocase;)",  // nocase before content
		"alert tcp any any -> any 80 (frob:1;)",  // unknown option
	}
	for _, line := range bad {
		if _, err := ParseRule(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
	// Comments and blanks are skipped, not errors.
	for _, line := range []string{"", "   ", "# comment"} {
		r, err := ParseRule(line)
		if err != nil || r != nil {
			t.Errorf("line %q: %v %v", line, r, err)
		}
	}
}

func TestParseRulesAndStringRoundTrip(t *testing.T) {
	text := `
# IoT default-credential probes
alert tcp any any -> any 80 (msg:"default creds"; content:"admin:admin"; sid:1;)
block udp any any -> any 53 (msg:"dns any query"; content:"example"; sid:2;)
`
	rules, err := ParseRules(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	// String() output must reparse to the same rule.
	for _, r := range rules {
		again, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", r.String(), err)
		}
		if again.String() != r.String() {
			t.Errorf("unstable canonical form: %q vs %q", again.String(), r.String())
		}
	}
}

func TestQuotedSemicolonInContent(t *testing.T) {
	r, err := ParseRule(`alert tcp any any -> any 80 (msg:"semi;colon"; content:"a;b"; sid:3;)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Msg != "semi;colon" || string(r.Contents[0].Pattern) != "a;b" {
		t.Errorf("parsed %+v", r)
	}
}

func TestAhoCorasickAgainstNaiveProperty(t *testing.T) {
	patterns := [][]byte{
		[]byte("admin"), []byte("dmin"), []byte("backdoor"),
		[]byte("a"), []byte("aa"), []byte("aba"),
	}
	ac := newAhoCorasick(patterns)
	f := func(payload []byte) bool {
		hits := make(map[int]bool)
		ac.scan(payload, hits)
		for i, pat := range patterns {
			if hits[i] != containsNaive(payload, pat) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAhoCorasickOverlappingPatterns(t *testing.T) {
	patterns := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	ac := newAhoCorasick(patterns)
	hits := make(map[int]bool)
	ac.scan([]byte("ushers"), hits)
	// "ushers" contains "she", "he", "hers".
	want := map[int]bool{0: true, 1: true, 3: true}
	for i := range patterns {
		if hits[i] != want[i] {
			t.Errorf("pattern %q: hit=%v want=%v", patterns[i], hits[i], want[i])
		}
	}
}

// buildPacket makes an eth/ip/tcp or udp packet with payload.
func buildPacket(t *testing.T, proto packet.IPProtocol, srcIP, dstIP string, srcPort, dstPort uint16, payload string) *packet.Packet {
	t.Helper()
	src, dst := packet.MustParseIPv4(srcIP), packet.MustParseIPv4(dstIP)
	b := packet.NewSerializeBuffer()
	var transport packet.SerializableLayer
	if proto == packet.IPProtocolTCP {
		tcp := &packet.TCP{SrcPort: srcPort, DstPort: dstPort, Flags: packet.TCPPsh | packet.TCPAck}
		tcp.SetNetworkForChecksum(src, dst)
		transport = tcp
	} else {
		udp := &packet.UDP{SrcPort: srcPort, DstPort: dstPort}
		udp.SetNetworkForChecksum(src, dst)
		transport = udp
	}
	err := packet.SerializeLayers(b,
		&packet.Ethernet{SrcMAC: packet.MACAddress{2, 0, 0, 0, 0, 1}, DstMAC: packet.MACAddress{2, 0, 0, 0, 0, 2}, EtherType: packet.EtherTypeIPv4},
		&packet.IPv4{SrcIP: src, DstIP: dst, Protocol: proto},
		transport,
		packet.NewPayload([]byte(payload)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return packet.Decode(b.Bytes(), packet.LayerTypeEthernet)
}

func TestEngineMatchScenarios(t *testing.T) {
	rules, err := ParseRules(`
alert tcp any any -> any 80 (msg:"default creds"; content:"admin:admin"; sid:1;)
alert tcp any any -> any 80 (msg:"case insensitive"; content:"BACKDOOR"; nocase; sid:2;)
block udp any any -> 10.0.0.5 53 (msg:"dns to plug"; sid:3;)
alert tcp 10.0.9.0/24 any -> any any (msg:"from attacker net"; content:"x"; sid:4;)
alert tcp any any -> any 80 (msg:"two contents"; content:"foo"; content:"bar"; sid:5;)
`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	if e.RuleCount() != 5 {
		t.Fatalf("rule count = %d", e.RuleCount())
	}

	cases := []struct {
		name    string
		pkt     *packet.Packet
		sids    []int
		blocked bool
	}{
		{
			name: "default creds hit",
			pkt:  buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 999, 80, "auth: admin:admin"),
			sids: []int{1},
		},
		{
			name: "nocase hit",
			pkt:  buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 999, 80, "open BackDoor now"),
			sids: []int{2},
		},
		{
			name:    "contentless udp block",
			pkt:     buildPacket(t, packet.IPProtocolUDP, "10.0.0.1", "10.0.0.5", 999, 53, "anything"),
			sids:    []int{3},
			blocked: true,
		},
		{
			name: "wrong dst port misses",
			pkt:  buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 999, 81, "admin:admin"),
			sids: nil,
		},
		{
			name: "src prefix match",
			pkt:  buildPacket(t, packet.IPProtocolTCP, "10.0.9.77", "10.0.0.2", 999, 12345, "xyz"),
			sids: []int{4},
		},
		{
			name: "two contents need both",
			pkt:  buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 999, 80, "foo only"),
			sids: nil,
		},
		{
			name: "two contents both present",
			pkt:  buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 999, 80, "foo and bar"),
			sids: []int{5},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			blocked, alerts := e.Verdict(c.pkt)
			var sids []int
			for _, a := range alerts {
				sids = append(sids, a.SID)
			}
			if !equalIntSets(sids, c.sids) {
				t.Errorf("sids = %v, want %v", sids, c.sids)
			}
			if blocked != c.blocked {
				t.Errorf("blocked = %v, want %v", blocked, c.blocked)
			}
		})
	}
}

func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]int)
	for _, x := range a {
		set[x]++
	}
	for _, x := range b {
		set[x]--
		if set[x] < 0 {
			return false
		}
	}
	return true
}

func TestEngineBidirectionalRule(t *testing.T) {
	rules, err := ParseRules(`alert tcp 10.0.0.1 any <> 10.0.0.2 any (msg:"pair"; content:"z"; sid:9;)`)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	fwd := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 2, "z")
	rev := buildPacket(t, packet.IPProtocolTCP, "10.0.0.2", "10.0.0.1", 2, 1, "z")
	other := buildPacket(t, packet.IPProtocolTCP, "10.0.0.3", "10.0.0.2", 1, 2, "z")
	if len(e.Match(fwd)) != 1 {
		t.Error("forward direction missed")
	}
	if len(e.Match(rev)) != 1 {
		t.Error("reverse direction missed")
	}
	if len(e.Match(other)) != 0 {
		t.Error("unrelated pair matched")
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	e := NewEngine(nil)
	p := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 2, "x")
	e.Match(p)
	e.Match(p)
	scanned, matched := e.Stats()
	if scanned != 2 || matched != 0 {
		t.Errorf("stats = %d %d", scanned, matched)
	}
}

// --- anomaly profile tests ---

func TestProfileRateAnomaly(t *testing.T) {
	p := NewProfile("cam1")
	base := time.Now()
	// Train at ~2 msg/s for 30 seconds.
	tick := base
	for i := 0; i < 60; i++ {
		p.ObserveMessage("hub", 80, "STATUS", tick)
		tick = tick.Add(500 * time.Millisecond)
	}
	p.EndTraining()
	if b := p.Baseline(); b < 1 || b > 3 {
		t.Fatalf("baseline = %.2f, want ~2", b)
	}
	// Burst at 100 msg/s: must flag.
	var flagged bool
	for i := 0; i < 300; i++ {
		for _, a := range p.ObserveMessage("hub", 80, "STATUS", tick) {
			if a.Kind == AnomalyRate {
				flagged = true
			}
		}
		tick = tick.Add(10 * time.Millisecond)
	}
	if !flagged {
		t.Error("rate burst not flagged")
	}
}

func TestProfileNewPeerAndPort(t *testing.T) {
	p := NewProfile("cam1")
	now := time.Now()
	p.ObserveMessage("hub", 80, "STATUS", now)
	p.EndTraining()
	anomalies := p.ObserveMessage("attacker", 23, "STATUS", now.Add(time.Second))
	kinds := map[AnomalyKind]bool{}
	for _, a := range anomalies {
		kinds[a.Kind] = true
	}
	if !kinds[AnomalyNewPeer] || !kinds[AnomalyNewPort] {
		t.Errorf("anomalies = %v", anomalies)
	}
	// Known peer+port stays quiet.
	if got := p.ObserveMessage("hub", 80, "STATUS", now.Add(2*time.Second)); len(got) != 0 {
		t.Errorf("false positives: %v", got)
	}
}

func TestProfileTransitionAnomaly(t *testing.T) {
	p := NewProfile("lock1")
	now := time.Now()
	// Normal pattern: STATUS, STATUS, ..., LOCK occasionally after
	// STATUS. UNLOCK never follows RELAY-ish commands.
	for i := 0; i < 200; i++ {
		p.ObserveMessage("hub", 80, "STATUS", now)
		if i%10 == 0 {
			p.ObserveMessage("hub", 80, "LOCK", now)
		}
	}
	p.EndTraining()
	// STATUS -> UNLOCK was never seen: improbable transition.
	p.ObserveMessage("hub", 80, "STATUS", now)
	anomalies := p.ObserveMessage("hub", 80, "UNLOCK", now)
	var flagged bool
	for _, a := range anomalies {
		if a.Kind == AnomalyTransition {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("unseen transition not flagged: %v", anomalies)
	}
	// Frequent transition STATUS->STATUS stays quiet.
	if got := p.ObserveMessage("hub", 80, "STATUS", now); hasKind(got, AnomalyTransition) {
		t.Errorf("common transition flagged: %v", got)
	}
}

func hasKind(as []Anomaly, k AnomalyKind) bool {
	for _, a := range as {
		if a.Kind == k {
			return true
		}
	}
	return false
}

func TestEngineLargePayloadScaling(t *testing.T) {
	// Smoke test: a big ruleset against a big payload terminates
	// quickly and correctly.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(`alert tcp any any -> any 80 (msg:"r`)
		sb.WriteString(strings.Repeat("x", i%7))
		sb.WriteString(`"; content:"pattern`)
		sb.WriteString(string(rune('a' + i%26)))
		sb.WriteString(`"; sid:`)
		sb.WriteString(strings.Repeat("9", 1+i%3))
		sb.WriteString(`;)` + "\n")
	}
	rules, err := ParseRules(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	payload := strings.Repeat("patterna filler ", 1000) + "patternz"
	p := buildPacket(t, packet.IPProtocolTCP, "10.0.0.1", "10.0.0.2", 1, 80, payload)
	alerts := e.Match(p)
	if len(alerts) == 0 {
		t.Error("no alerts on matching payload")
	}
	got := map[string]bool{}
	for _, a := range alerts {
		for _, c := range a.Rule.Contents {
			got[string(c.Pattern)] = true
		}
	}
	if !got["patterna"] || !got["patternz"] {
		t.Errorf("expected patterna and patternz hits, got %v", got)
	}
	if bytes.Contains([]byte(payload), []byte("patternb")) {
		t.Error("test payload unexpectedly contains patternb")
	}
}
