// Package experiment contains the reproduction drivers: one per paper
// table and figure (T1, T2, F1–F5) plus the design-choice ablations
// (A1–A5) DESIGN.md calls out. Each driver builds its scenario from
// the real system components, runs it, and returns a printable table
// whose rows mirror what the paper reports.
package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result in paper-style rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row (values stringified).
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprint(v)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// yesNo renders attack outcomes.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// blockedAllowed renders enforcement outcomes.
func blockedAllowed(blocked bool) string {
	if blocked {
		return "BLOCKED"
	}
	return "allowed"
}
